//! The bytecode tier: checked schemas compiled to a cached, pre-resolved
//! program executed by a tight dispatch loop.
//!
//! The interpreter ([`crate::parse::PadsParser`]) re-derives per-record
//! facts that never change for a given schema: it looks base types up in
//! the registry `HashMap` on every field, charset-encodes every literal
//! and every enum variant into a fresh `Vec<u8>` per record, re-evaluates
//! constant argument expressions, and re-interns parameter names. The
//! generated (`pads-codegen`) parsers erase all of that at rustc time but
//! need a compile step — useless for descriptions that arrive at runtime
//! (ROADMAP item 2, the paper's 300 M-calls/day hot-loading scenario).
//!
//! This module is the middle tier: a single-pass compiler from the checked
//! [`Schema`] to a flat [`VmProgram`] (one [`CDef`] per `TypeId`, with
//! pre-resolved `Arc<dyn BaseType>` handles, pre-encoded literal bytes,
//! pre-evaluated constant arguments, pre-interned [`Name`]s and
//! precomputed default values) plus an executor that mirrors the
//! interpreter *function for function* — same record framing, recovery
//! policies, error budgets, observer events and descriptor shapes, proven
//! byte-identical by the `vm_equiv` test suite.
//!
//! The compiler also applies the elisions `pads-codegen` already proved
//! out, using the same analysis facts:
//!
//! * consecutive `Char`/`Str` literals fuse into one peek-validate-commit
//!   byte-run match ([`CMember::LitRun`]), falling back to per-literal
//!   matching on mismatch so error attribution is unchanged;
//! * arrays with proven progress (`lint::progress`) drop the zero-width
//!   loop guard, exactly when codegen does;
//! * enum variants match against pre-encoded byte strings (the
//!   interpreter allocates one `Vec` per variant per record).
//!
//! Programs are `Send + Sync` and cached process-wide in a bounded
//! [`KeyedCache`] keyed by (schema structure, charset, registry
//! identity), so many parsers — including the sharded `records_par`
//! workers — share one compilation. See `docs/VM.md`.

use std::sync::{Arc, Mutex, OnceLock};

use pads_check::ir::{Schema, TypeId, TypeKind, TyUse};
use pads_check::lint;
use pads_runtime::cache::KeyedCache;
use pads_runtime::{
    BaseType, Charset, Cursor, ErrorCode, Loc, Mask, Name, ParseDesc, ParseState, Pos, Prim,
    Registry, SparseElts,
};
use pads_runtime::pd::PdKind;
use pads_syntax::ast::{BinOp, CaseLabel, Expr, Literal, Stmt, UnOp};

use crate::eval::{self, Env, Ev};
use crate::parse::has_syntax_error;
use crate::value::Value;

/// Capacity of the process-wide compiled-program cache. Each entry is one
/// (schema, charset, registry) combination; a hot-loading daemon cycling
/// through more live schemas than this recompiles on re-entry (compilation
/// is a one-time cost per schema, microseconds — not per record).
pub const PROGRAM_CACHE_CAPACITY: usize = 64;

// ---- compiled form --------------------------------------------------------

/// A schema compiled for one charset: everything per-record-invariant is
/// resolved, encoded, evaluated and interned ahead of time.
///
/// `Send + Sync`: names are `Arc<str>`-backed, base-type handles are
/// `Arc<dyn BaseType>`, and regex literals are stored as pattern strings
/// (compiled through each cursor's own cache), so one program serves every
/// worker of a sharded parse.
pub struct VmProgram {
    charset: Charset,
    defs: Vec<CDef>,
}

impl VmProgram {
    /// The charset the program's literals were encoded for. Executing
    /// against a cursor with a different charset would change byte-level
    /// matching, so the dispatcher falls back to the interpreter when
    /// they disagree.
    pub fn charset(&self) -> Charset {
        self.charset
    }

    /// Number of compiled definitions (one per schema `TypeId`).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the program has no definitions.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

/// One compiled type definition.
struct CDef {
    /// Type name, borrowed by observer enter/exit events.
    name: String,
    is_record: bool,
    /// Interned value-parameter names, by declaration index.
    params: Box<[Name]>,
    /// `Pwhere` clause (structs and arrays).
    where_clause: Option<CWhere>,
    kind: CKind,
    /// The default (masked-out / error-recovery) value of this type,
    /// precomputed; handing it out is a clone of an existing tree, not a
    /// registry walk.
    default: Value,
}

enum CKind {
    Struct {
        members: Box<[CMember]>,
        /// Field count, for exact `Vec` capacity in the executor.
        n_fields: usize,
    },
    Union {
        branches: Box<[CBranch]>,
        switch: Option<Expr>,
    },
    Array(Box<CArray>),
    Enum {
        variants: Box<[CVariant]>,
    },
    Typedef {
        base: CTy,
        var: Option<Name>,
        pred: Option<CPred>,
    },
}

/// A constraint expression, compiled. Most constraints in real
/// descriptions reference only the value they guard (`100 <= x && x <
/// 600`, `unauthorized == '-'`), so the compiler lowers that subset to a
/// closed [`PExpr`] evaluated directly against the parsed value — no
/// environment construction, no name lookups, no `Ev` clones per record.
/// Everything else falls back to the interpreter's evaluator over a
/// scoped [`Env`], so semantics never fork.
enum CPred {
    Fast(PExpr),
    Generic(Expr),
}

/// A `Pwhere` clause, compiled. The paper's Sirius description guards its
/// event sequences with the adjacent-pairs idiom
/// `Pforall (i Pin [0..length-2] : elts[i].f OP elts[i+1].f)`; the
/// compiler recognises exactly that shape and lowers it to a direct
/// windowed sweep over the element slice ([`CWhere::Sorted`]), skipping
/// the per-index environment churn of the generic `Pforall` evaluator.
enum CWhere {
    Sorted { field: Name, op: BinOp },
    Generic(Expr),
}

/// A compiled predicate expression: literals, the bound variable, earlier
/// sibling fields, field projections, and operators. Comparison and
/// projection leaves delegate to [`eval::binary`] and
/// [`eval::project_field`] — the same functions the interpreter uses — so
/// the two engines cannot disagree on numeric coercion, union-branch
/// transparency, or string semantics. Enum variant references and pure
/// `Pfun` calls are resolved at compile time (variants to their global
/// index, calls by inlining the function body), eliminating the
/// per-record environment swap of the generic `Expr::Call` path.
#[derive(Clone)]
enum PExpr {
    Const(Value),
    Var,
    /// An earlier sibling field, by index into the struct's parsed-fields
    /// vector (constraints run after their field is pushed, so every
    /// index below the current field is bound).
    Sibling(usize),
    /// Field projection `e.name` ([`eval::project_field`] semantics).
    Proj(Box<PExpr>, Name),
    Cmp(BinOp, Box<PExpr>, Box<PExpr>),
    And(Box<PExpr>, Box<PExpr>),
    Or(Box<PExpr>, Box<PExpr>),
    Not(Box<PExpr>),
    /// Conditional `c ? t : e` (also the compiled form of inlined
    /// `if (c) return t; …` function bodies).
    If(Box<PExpr>, Box<PExpr>, Box<PExpr>),
}

struct CArray {
    elem: CTy,
    sep: Option<CLit>,
    term: Option<CLit>,
    ended: Option<Expr>,
    size: Option<CSize>,
    /// Record elements resynchronise at the record boundary themselves, so
    /// the array survives syntax errors inside them.
    elem_recovers: bool,
    /// Zero-width loop guard elided: `lint::progress` proved every
    /// successful element consumes input (same condition codegen uses).
    guard_elided: bool,
}

enum CSize {
    /// Constant size expression, evaluated at compile time.
    Const(usize),
    /// Constant expression that does not evaluate to an unsigned size
    /// (the interpreter records `EvalError` and sizes the array 0).
    ConstBad,
    Dyn(Expr),
}

struct CVariant {
    /// Variant text pre-encoded for the program charset.
    bytes: Box<[u8]>,
    name: Name,
}

struct CBranch {
    name: Name,
    case: Option<CCase>,
    ty: CTy,
    constraint: Option<CPred>,
}

enum CCase {
    /// Constant case label, evaluated at compile time.
    Const(Value),
    Dyn(Expr),
    Default,
}

enum CMember {
    Lit(CLit),
    /// Consecutive `Char`/`Str` literals fused into one byte-run: matched
    /// with a single peek-validate-commit; on mismatch the run replays
    /// per-literal so the failing literal's error code and location are
    /// identical to the interpreter's.
    LitRun {
        bytes: Box<[u8]>,
        parts: Box<[CLit]>,
    },
    Field(CField),
}

struct CField {
    name: Name,
    ty: CTy,
    constraint: Option<CPred>,
}

enum CLit {
    /// A `Char` or `Str` literal pre-encoded for the program charset.
    Bytes(Box<[u8]>),
    /// Regex pattern, compiled through the executing cursor's own cache
    /// (compiled regexes are `Rc`-shared per parser, not per program).
    Regex(String),
    Eor,
    Eof,
}

enum CTy {
    Opt(Box<CTy>),
    Base {
        /// Pre-resolved handle: no registry lookup per record.
        bt: Arc<dyn BaseType>,
        args: CArgs,
        /// `bt.default_value(&[])`, precomputed for argument-evaluation
        /// failures and masked-out parses.
        default: Prim,
    },
    /// The registry had no such base type at compile time; executing it
    /// reports `InternalError`, exactly as the interpreter's lookup miss.
    MissingBase,
    Named {
        id: TypeId,
        args: CArgs,
    },
}

enum CArgs {
    None,
    /// All-constant argument list, evaluated once at compile time (the
    /// interpreter's `const_prim` fast path re-allocates this `Vec` —
    /// including cloning string arguments — on every record).
    Const(Box<[Prim]>),
    Dyn(Box<[Expr]>),
}

// ---- compiler -------------------------------------------------------------

/// Compiles `schema` for `charset`, resolving base types against
/// `registry`. Compilation never fails: a checked schema cannot produce a
/// malformed program, and defensive cases (unknown base type) compile to
/// ops that report the same `InternalError` the interpreter would.
pub fn compile(schema: &Schema, registry: &Registry, charset: Charset) -> VmProgram {
    let firsts = lint::firstset::Facts::compute(schema);
    let defs = schema
        .types
        .iter()
        .enumerate()
        .map(|(id, def)| compile_def(schema, registry, charset, &firsts, id, def))
        .collect();
    VmProgram { charset, defs }
}

fn compile_def(
    schema: &Schema,
    registry: &Registry,
    charset: Charset,
    firsts: &lint::firstset::Facts,
    id: TypeId,
    def: &pads_check::ir::TypeDef,
) -> CDef {
    use pads_check::ir::MemberIr;
    let pnames: Vec<Name> = def.params.iter().map(|p| Name::shared(&p.name)).collect();
    let kind = match &def.kind {
        TypeKind::Struct { members } => {
            let compiled = compile_members(schema, registry, charset, members, &pnames);
            let n_fields =
                members.iter().filter(|m| matches!(m, MemberIr::Field(_))).count();
            CKind::Struct { members: compiled, n_fields }
        }
        TypeKind::Union { switch, branches } => CKind::Union {
            switch: switch.clone(),
            branches: branches
                .iter()
                .map(|b| CBranch {
                    name: Name::shared(&b.field.name),
                    case: b.case.as_ref().map(compile_case),
                    ty: compile_tyuse(registry, &b.field.ty),
                    constraint: b
                        .field
                        .constraint
                        .as_ref()
                        .map(|c| compile_pred(schema, c, &b.field.name, &[], &pnames)),
                })
                .collect(),
        },
        TypeKind::Array { elem, sep, term, ended, size } => {
            let elem_recovers =
                matches!(elem, TyUse::Named { id, .. } if schema.def(*id).is_record);
            let size_c = size.as_ref().map(|e| match const_prim(e) {
                Some(p) => match p.as_u64() {
                    Some(n) => CSize::Const(n as usize),
                    None => CSize::ConstBad,
                },
                None => CSize::Dyn(e.clone()),
            });
            // Same elision condition as `pads-codegen`: the guard only
            // exists for unsized arrays, and proven progress makes it
            // unreachable unless the element recovers (which can leave
            // the cursor parked at a record boundary).
            let proven = lint::progress::array_progress(schema, firsts, id)
                == lint::progress::Progress::Proven;
            CKind::Array(Box::new(CArray {
                elem: compile_tyuse(registry, elem),
                sep: sep.as_ref().map(|l| compile_lit(charset, l)),
                term: term.as_ref().map(|l| compile_lit(charset, l)),
                ended: ended.clone(),
                size: size_c,
                elem_recovers,
                guard_elided: size.is_none() && proven && !elem_recovers,
            }))
        }
        TypeKind::Enum { variants } => CKind::Enum {
            variants: variants
                .iter()
                .map(|v| CVariant {
                    bytes: v.bytes().map(|b| charset.encode(b)).collect(),
                    name: Name::shared(v),
                })
                .collect(),
        },
        TypeKind::Typedef { base, var, pred } => CKind::Typedef {
            base: compile_tyuse(registry, base),
            var: var.as_ref().map(|v| Name::shared(v)),
            pred: match (var, pred) {
                (Some(v), Some(p)) => Some(compile_pred(schema, p, v, &[], &pnames)),
                (_, p) => p.as_ref().map(|p| CPred::Generic(p.clone())),
            },
        },
    };
    // Only array `Pwhere` clauses are candidates for the sorted-sweep
    // lowering; struct clauses reference arbitrary fields and stay generic.
    let is_array = matches!(def.kind, TypeKind::Array { .. });
    CDef {
        name: def.name.clone(),
        is_record: def.is_record,
        params: pnames.into_boxed_slice(),
        where_clause: def.where_clause.as_ref().map(|w| compile_where(w, is_array)),
        kind,
        default: default_def(schema, registry, id, 0),
    }
}

/// Name-resolution scope for predicate compilation. Mirrors the generic
/// evaluator's environment exactly: in constraint position the bound
/// variable is innermost, then sibling fields (later shadows earlier),
/// then def parameters, then global enum variants; inside an inlined
/// `Pfun` body only the function's parameters and globals are visible.
enum PScope<'s> {
    Caller {
        /// The bound variable (the field/branch/typedef value under check).
        var: &'s str,
        /// Names of sibling fields already parsed, in declaration order.
        siblings: &'s [Name],
        /// Def value-parameter names; referencing one forces the generic
        /// path (parameters live outside the compiled fields vector).
        params: &'s [Name],
    },
    Func {
        /// The inlined function's parameters.
        params: &'s [pads_syntax::ast::Param],
        /// Pre-compiled (caller-scope) argument expressions, by position.
        args: &'s [PExpr],
    },
}

/// Inline-expansion bound for nested `Pfun` calls. Any chain this deep
/// (or any recursion) falls back to the generic evaluator, whose own
/// `MAX_CALL_DEPTH` governs runtime behaviour.
const MAX_INLINE_DEPTH: u32 = 8;

/// Compiles a constraint over a single bound variable: [`CPred::Fast`]
/// when every name resolves at compile time (the variable, earlier
/// sibling fields, enum variants, inlinable `Pfun` calls), otherwise the
/// generic evaluator.
fn compile_pred(schema: &Schema, e: &Expr, var: &str, siblings: &[Name], params: &[Name]) -> CPred {
    let scope = PScope::Caller { var, siblings, params };
    match compile_pexpr(schema, &scope, e, 0) {
        Some(p) => CPred::Fast(p),
        None => CPred::Generic(e.clone()),
    }
}

fn compile_pexpr(schema: &Schema, scope: &PScope<'_>, e: &Expr, depth: u32) -> Option<PExpr> {
    Some(match e {
        Expr::Int(v) => PExpr::Const(Value::Prim(Prim::Int(*v))),
        Expr::Float(v) => PExpr::Const(Value::Prim(Prim::Float(*v))),
        Expr::Char(c) => PExpr::Const(Value::Prim(Prim::Char(*c))),
        Expr::Str(s) => PExpr::Const(Value::Prim(Prim::String(s.clone()))),
        Expr::Bool(b) => PExpr::Const(Value::Prim(Prim::Bool(*b))),
        Expr::Ident(n) => match scope {
            PScope::Caller { var, siblings, params } => {
                if n == var {
                    PExpr::Var
                } else if let Some(i) = siblings.iter().rposition(|s| s.as_str() == n) {
                    PExpr::Sibling(i)
                } else if params.iter().any(|p| p.as_str() == n) {
                    // Def parameters live outside the fields vector; the
                    // generic path binds them.
                    return None;
                } else if let Some((_, idx)) = schema.enum_variants.get(n) {
                    PExpr::Const(Value::Prim(Prim::Uint(*idx as u64)))
                } else {
                    // Unbound: stay generic so the runtime EvalError (and
                    // any future binding forms) come from one place.
                    return None;
                }
            }
            PScope::Func { params, args } => {
                // Function bodies see only their parameters and globals
                // (the evaluator swaps the environment on entry).
                if let Some(i) = params.iter().rposition(|p| p.name == *n) {
                    args.get(i)?.clone()
                } else if let Some((_, idx)) = schema.enum_variants.get(n) {
                    PExpr::Const(Value::Prim(Prim::Uint(*idx as u64)))
                } else {
                    return None;
                }
            }
        },
        Expr::Field(base, name) => PExpr::Proj(
            Box::new(compile_pexpr(schema, scope, base, depth)?),
            Name::shared(name),
        ),
        Expr::Call(name, call_args) => {
            if depth >= MAX_INLINE_DEPTH {
                return None;
            }
            let func = schema.funcs.get(name)?;
            if func.params.len() != call_args.len() {
                return None;
            }
            let cargs = call_args
                .iter()
                .map(|a| compile_pexpr(schema, scope, a, depth))
                .collect::<Option<Vec<_>>>()?;
            // The generic evaluator binds every argument before entering
            // the body, so an argument whose evaluation can fail must
            // fail even when the body never reads it. Inlining duplicates
            // or elides argument sites, so only infallible argument forms
            // (plain bindings and constants) are eligible.
            if !cargs.iter().all(pexpr_infallible) {
                return None;
            }
            let body: Vec<&Stmt> = func.body.iter().collect();
            let fscope = PScope::Func { params: &func.params, args: &cargs };
            return compile_stmts(schema, &fscope, &body, depth + 1);
        }
        Expr::Unary(UnOp::Not, a) => {
            PExpr::Not(Box::new(compile_pexpr(schema, scope, a, depth)?))
        }
        Expr::Binary(BinOp::And, a, b) => PExpr::And(
            Box::new(compile_pexpr(schema, scope, a, depth)?),
            Box::new(compile_pexpr(schema, scope, b, depth)?),
        ),
        Expr::Binary(BinOp::Or, a, b) => PExpr::Or(
            Box::new(compile_pexpr(schema, scope, a, depth)?),
            Box::new(compile_pexpr(schema, scope, b, depth)?),
        ),
        Expr::Binary(op, a, b) => PExpr::Cmp(
            *op,
            Box::new(compile_pexpr(schema, scope, a, depth)?),
            Box::new(compile_pexpr(schema, scope, b, depth)?),
        ),
        Expr::Ternary(c, t, e2) => PExpr::If(
            Box::new(compile_pexpr(schema, scope, c, depth)?),
            Box::new(compile_pexpr(schema, scope, t, depth)?),
            Box::new(compile_pexpr(schema, scope, e2, depth)?),
        ),
        _ => return None,
    })
}

/// Whether a compiled expression can never fail at runtime — the forms
/// safe to duplicate or drop when inlining a function call.
fn pexpr_infallible(p: &PExpr) -> bool {
    matches!(p, PExpr::Const(_) | PExpr::Var | PExpr::Sibling(_))
}

/// Compiles a `Pfun` statement list to an expression with `exec_stmts`
/// semantics: `return e` yields `e` (later statements are dead),
/// `if (c) …` branches into then/else each continued by the remaining
/// statements, and a list that can fall off the end has no value — the
/// compile fails and the call stays generic (runtime `EvalError`).
fn compile_stmts(
    schema: &Schema,
    scope: &PScope<'_>,
    stmts: &[&Stmt],
    depth: u32,
) -> Option<PExpr> {
    let (first, rest) = stmts.split_first()?;
    match first {
        Stmt::Return(e) => compile_pexpr(schema, scope, e, depth),
        Stmt::If { cond, then_body, else_body } => {
            let c = compile_pexpr(schema, scope, cond, depth)?;
            let then_chain: Vec<&Stmt> = then_body.iter().chain(rest.iter().copied()).collect();
            let else_chain: Vec<&Stmt> = else_body.iter().chain(rest.iter().copied()).collect();
            let t = compile_stmts(schema, scope, &then_chain, depth)?;
            let e = compile_stmts(schema, scope, &else_chain, depth)?;
            Some(PExpr::If(Box::new(c), Box::new(t), Box::new(e)))
        }
    }
}

/// Compiles a `Pwhere` clause, lowering the adjacent-pairs `Pforall`
/// idiom on arrays to a windowed sweep.
fn compile_where(w: &Expr, is_array: bool) -> CWhere {
    if is_array {
        if let Some((field, op)) = sorted_pattern(w) {
            return CWhere::Sorted { field, op };
        }
    }
    CWhere::Generic(w.clone())
}

/// Recognises `Pforall (i Pin [0..length-2] : elts[i].f OP elts[i+1].f)`
/// (a comparison operator, the same field on both sides).
fn sorted_pattern(w: &Expr) -> Option<(Name, BinOp)> {
    let Expr::Forall { var, lo, hi, body } = w else {
        return None;
    };
    if !matches!(**lo, Expr::Int(0)) {
        return None;
    }
    let Expr::Binary(BinOp::Sub, len, two) = &**hi else {
        return None;
    };
    if !matches!(&**len, Expr::Ident(n) if n == "length") || !matches!(**two, Expr::Int(2)) {
        return None;
    }
    let Expr::Binary(op, a, b) = &**body else {
        return None;
    };
    if !matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne) {
        return None;
    }
    let (fa, ia) = elts_field_at(a)?;
    let (fb, ib) = elts_field_at(b)?;
    // Left side indexes `elts[i]`, right side `elts[i+1]`, same field.
    if fa != fb || ia != IndexShape::Var(var.as_str()) || ib != IndexShape::VarPlusOne(var.as_str())
    {
        return None;
    }
    Some((Name::shared(fa), *op))
}

#[derive(PartialEq)]
enum IndexShape<'a> {
    Var(&'a str),
    VarPlusOne(&'a str),
    Other,
}

/// Decomposes `elts[<idx>].<field>` into the field name and index shape.
fn elts_field_at<'e>(e: &'e Expr) -> Option<(&'e str, IndexShape<'e>)> {
    let Expr::Field(base, field) = e else {
        return None;
    };
    let Expr::Index(arr, idx) = &**base else {
        return None;
    };
    if !matches!(&**arr, Expr::Ident(n) if n == "elts") {
        return None;
    }
    let shape = match &**idx {
        Expr::Ident(i) => IndexShape::Var(i),
        Expr::Binary(BinOp::Add, v, one)
            if matches!(&**v, Expr::Ident(_)) && matches!(**one, Expr::Int(1)) =>
        {
            match &**v {
                Expr::Ident(i) => IndexShape::VarPlusOne(i),
                _ => IndexShape::Other,
            }
        }
        _ => IndexShape::Other,
    };
    Some((field, shape))
}

fn compile_case(c: &CaseLabel) -> CCase {
    match c {
        CaseLabel::Default => CCase::Default,
        CaseLabel::Expr(e) => match const_prim(e) {
            Some(p) => CCase::Const(Value::Prim(p)),
            None => CCase::Dyn(e.clone()),
        },
    }
}

fn compile_members(
    schema: &Schema,
    registry: &Registry,
    charset: Charset,
    members: &[pads_check::ir::MemberIr],
    params: &[Name],
) -> Box<[CMember]> {
    use pads_check::ir::MemberIr;
    let mut out: Vec<CMember> = Vec::with_capacity(members.len());
    // Names of fields compiled so far: a field constraint may reference
    // any earlier sibling (the checker scopes them in), and the compiled
    // form addresses those by position in the executor's fields vector.
    let mut siblings: Vec<Name> = Vec::new();
    // Pending fusable-literal run (consecutive Char/Str literals).
    let mut run: Vec<CLit> = Vec::new();
    let flush = |out: &mut Vec<CMember>, run: &mut Vec<CLit>| {
        match run.len() {
            0 => {}
            1 => {
                if let Some(l) = run.pop() {
                    out.push(CMember::Lit(l));
                }
            }
            _ => {
                let bytes: Vec<u8> = run
                    .iter()
                    .flat_map(|l| match l {
                        CLit::Bytes(b) => b.iter().copied(),
                        // Only Bytes literals enter a run.
                        _ => [].iter().copied(),
                    })
                    .collect();
                out.push(CMember::LitRun {
                    bytes: bytes.into_boxed_slice(),
                    parts: std::mem::take(run).into_boxed_slice(),
                });
            }
        }
    };
    for m in members {
        match m {
            MemberIr::Lit(lit) => {
                let c = compile_lit(charset, lit);
                if matches!(c, CLit::Bytes(_)) {
                    run.push(c);
                } else {
                    flush(&mut out, &mut run);
                    out.push(CMember::Lit(c));
                }
            }
            MemberIr::Field(f) => {
                flush(&mut out, &mut run);
                out.push(CMember::Field(CField {
                    name: Name::shared(&f.name),
                    ty: compile_tyuse(registry, &f.ty),
                    constraint: f
                        .constraint
                        .as_ref()
                        .map(|c| compile_pred(schema, c, &f.name, &siblings, params)),
                }));
                siblings.push(Name::shared(&f.name));
            }
        }
    }
    flush(&mut out, &mut run);
    out.into_boxed_slice()
}

fn compile_lit(charset: Charset, lit: &Literal) -> CLit {
    match lit {
        Literal::Char(c) => CLit::Bytes(Box::new([charset.encode(*c)])),
        Literal::Str(s) => CLit::Bytes(s.bytes().map(|b| charset.encode(b)).collect()),
        Literal::Regex(pat) => CLit::Regex(pat.clone()),
        Literal::Eor => CLit::Eor,
        Literal::Eof => CLit::Eof,
    }
}

fn compile_tyuse(registry: &Registry, ty: &TyUse) -> CTy {
    match ty {
        TyUse::Opt(inner) => CTy::Opt(Box::new(compile_tyuse(registry, inner))),
        TyUse::Base { name, args } => match registry.get(name) {
            Some(bt) => CTy::Base {
                bt: Arc::clone(bt),
                args: compile_args(args),
                default: bt.default_value(&[]),
            },
            None => CTy::MissingBase,
        },
        TyUse::Named { id, args } => CTy::Named { id: *id, args: compile_args(args) },
    }
}

fn compile_args(args: &[Expr]) -> CArgs {
    if args.is_empty() {
        return CArgs::None;
    }
    match args.iter().map(const_prim).collect::<Option<Vec<_>>>() {
        Some(prims) => CArgs::Const(prims.into_boxed_slice()),
        None => CArgs::Dyn(args.to_vec().into_boxed_slice()),
    }
}

/// Evaluates literal expressions without an environment (the compile-time
/// twin of the interpreter's per-record fast path).
fn const_prim(e: &Expr) -> Option<Prim> {
    match e {
        Expr::Int(v) => Some(Prim::Int(*v)),
        Expr::Char(c) => Some(Prim::Char(*c)),
        Expr::Str(s) => Some(Prim::String(s.clone())),
        Expr::Bool(b) => Some(Prim::Bool(*b)),
        Expr::Float(v) => Some(Prim::Float(*v)),
        _ => None,
    }
}

/// Recursion guard for default-value precomputation. A checked schema has
/// no recursive types; this bound only protects the compiler from a
/// pathological IR (where the interpreter itself would diverge).
const MAX_DEFAULT_DEPTH: u32 = 256;

fn default_def(schema: &Schema, registry: &Registry, id: TypeId, depth: u32) -> Value {
    use pads_check::ir::MemberIr;
    if depth > MAX_DEFAULT_DEPTH {
        return Value::Prim(Prim::Unit);
    }
    let def = schema.def(id);
    match &def.kind {
        TypeKind::Struct { members } => Value::Struct {
            fields: members
                .iter()
                .filter_map(|m| match m {
                    MemberIr::Field(f) => Some((
                        Name::shared(&f.name),
                        default_tyuse(schema, registry, &f.ty, depth + 1),
                    )),
                    MemberIr::Lit(_) => None,
                })
                .collect(),
        },
        TypeKind::Union { branches, .. } => match branches.first() {
            Some(b) => Value::Union {
                branch: Name::shared(&b.field.name),
                index: 0,
                value: Box::new(default_tyuse(schema, registry, &b.field.ty, depth + 1)),
            },
            None => Value::Prim(Prim::Unit),
        },
        TypeKind::Array { .. } => Value::Array(Vec::new()),
        TypeKind::Enum { variants } => Value::Enum {
            variant: variants.first().map(|v| Name::shared(v)).unwrap_or_default(),
            index: 0,
        },
        TypeKind::Typedef { base, .. } => default_tyuse(schema, registry, base, depth + 1),
    }
}

fn default_tyuse(schema: &Schema, registry: &Registry, ty: &TyUse, depth: u32) -> Value {
    if depth > MAX_DEFAULT_DEPTH {
        return Value::Prim(Prim::Unit);
    }
    match ty {
        TyUse::Opt(_) => Value::Opt(None),
        TyUse::Base { name, .. } => {
            Value::Prim(registry.get(name).map_or(Prim::Unit, |bt| bt.default_value(&[])))
        }
        TyUse::Named { id, .. } => default_def(schema, registry, *id, depth + 1),
    }
}

// ---- program cache --------------------------------------------------------

static PROGRAMS: OnceLock<Mutex<KeyedCache<u64, Arc<VmProgram>>>> = OnceLock::new();

fn programs() -> &'static Mutex<KeyedCache<u64, Arc<VmProgram>>> {
    PROGRAMS.get_or_init(|| Mutex::new(KeyedCache::new(PROGRAM_CACHE_CAPACITY)))
}

fn lock_programs() -> std::sync::MutexGuard<'static, KeyedCache<u64, Arc<VmProgram>>> {
    match programs().lock() {
        Ok(g) => g,
        // A panic while holding the lock cannot corrupt the cache (it is
        // a plain map); keep serving.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The process-wide cache key: schema structure (the `types` table is a
/// `Vec` with deterministic `Debug`), target charset, and registry
/// identity (sorted name → `Arc` address pairs — the cached program holds
/// clones of those `Arc`s, so an address cannot be recycled while its
/// entry is live).
fn cache_key(schema: &Schema, registry: &Registry, charset: Charset) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{:?}", schema.types).hash(&mut h);
    format!("{:?}", charset).hash(&mut h);
    let mut entries: Vec<(&str, usize)> = registry
        .names()
        .map(|n| {
            (n, registry.get(n).map_or(0, |bt| Arc::as_ptr(bt) as *const () as usize))
        })
        .collect();
    entries.sort_unstable();
    entries.hash(&mut h);
    h.finish()
}

/// Returns the compiled program for (schema, registry, charset), compiling
/// and caching on first use. Subsequent parsers — including every worker
/// of a sharded parse — get the shared `Arc`.
pub fn get_or_compile(schema: &Schema, registry: &Registry, charset: Charset) -> Arc<VmProgram> {
    let key = cache_key(schema, registry, charset);
    if let Some(p) = lock_programs().get(&key) {
        return p;
    }
    // Compile outside the lock: compilation walks the whole schema and
    // must not serialise unrelated parsers.
    let prog = Arc::new(compile(schema, registry, charset));
    lock_programs().insert(key, Arc::clone(&prog));
    prog
}

/// Number of programs currently cached (test hook).
pub fn program_cache_len() -> usize {
    lock_programs().len()
}

// ---- compiled-predicate evaluation ----------------------------------------

/// The effective mask for a named child: a borrow of `mask` itself when
/// it carries no per-child overrides ([`Mask::child`] would return an
/// identical node for every name), otherwise the materialised child.
/// Uniform masks — `Mask::all(..)`, the overwhelmingly common case — thus
/// descend through arbitrarily deep types without constructing a single
/// mask node per field per record.
fn mask_child<'m>(mask: &'m Mask, name: &str) -> std::borrow::Cow<'m, Mask> {
    if mask.is_leaf() {
        std::borrow::Cow::Borrowed(mask)
    } else {
        std::borrow::Cow::Owned(mask.child(name))
    }
}

/// Evaluates a compiled predicate against the bound value and the
/// struct's parsed fields (empty outside struct-field constraints).
/// Leaves delegate to [`eval::binary`] and [`eval::project_field`], so
/// coercions match the interpreter exactly.
fn eval_pexpr<'a>(
    p: &'a PExpr,
    var: &'a Value,
    fields: &'a [(Name, Value)],
) -> Result<Ev<'a>, ErrorCode> {
    match p {
        PExpr::Const(v) => Ok(Ev::Ref(v)),
        PExpr::Var => Ok(Ev::Ref(var)),
        PExpr::Sibling(i) => match fields.get(*i) {
            Some((_, v)) => Ok(Ev::Ref(v)),
            // Unreachable for compiler-produced indices; recorded as data.
            None => Err(ErrorCode::EvalError),
        },
        PExpr::Proj(a, name) => eval::project_field(eval_pexpr(a, var, fields)?, name.as_str()),
        PExpr::Cmp(op, a, b) => {
            let lhs = eval_pexpr(a, var, fields)?;
            let rhs = eval_pexpr(b, var, fields)?;
            eval::binary(*op, &lhs, &rhs)
        }
        PExpr::And(a, b) => {
            // Short-circuit, like the interpreter.
            if !pexpr_bool(a, var, fields)? {
                return Ok(Ev::prim(Prim::Bool(false)));
            }
            Ok(Ev::prim(Prim::Bool(pexpr_bool(b, var, fields)?)))
        }
        PExpr::Or(a, b) => {
            if pexpr_bool(a, var, fields)? {
                return Ok(Ev::prim(Prim::Bool(true)));
            }
            Ok(Ev::prim(Prim::Bool(pexpr_bool(b, var, fields)?)))
        }
        PExpr::Not(a) => Ok(Ev::prim(Prim::Bool(!pexpr_bool(a, var, fields)?))),
        PExpr::If(c, t, e) => {
            if pexpr_bool(c, var, fields)? {
                eval_pexpr(t, var, fields)
            } else {
                eval_pexpr(e, var, fields)
            }
        }
    }
}

fn pexpr_bool(p: &PExpr, var: &Value, fields: &[(Name, Value)]) -> Result<bool, ErrorCode> {
    match eval_pexpr(p, var, fields)?.value() {
        Value::Prim(Prim::Bool(b)) => Ok(*b),
        _ => Err(ErrorCode::EvalError),
    }
}

/// The sorted sweep: `elts[i].field OP elts[i+1].field` over every
/// adjacent pair, in index order — empty and singleton arrays are
/// vacuously true, exactly as the `Pforall` range `[0..length-2]` is.
fn eval_sorted(field: &str, op: BinOp, elts: &[Value]) -> Result<bool, ErrorCode> {
    for pair in elts.windows(2) {
        let a = eval::project_field(Ev::Ref(&pair[0]), field)?;
        let b = eval::project_field(Ev::Ref(&pair[1]), field)?;
        match eval::binary(op, &a, &b)?.value() {
            Value::Prim(Prim::Bool(true)) => {}
            Value::Prim(Prim::Bool(false)) => return Ok(false),
            _ => return Err(ErrorCode::EvalError),
        }
    }
    Ok(true)
}

// ---- executor -------------------------------------------------------------

/// Executes definition `id` of `prog` at the cursor — the VM twin of
/// `PadsParser::parse_def`, byte-identical in values, descriptors, budget
/// accounting and observer events (proven by `tests/vm_equiv.rs`).
pub(crate) fn exec(
    schema: &Schema,
    prog: &VmProgram,
    cur: &mut Cursor<'_>,
    id: TypeId,
    args: &[Prim],
    mask: &Mask,
) -> (Value, ParseDesc) {
    Exec { schema, prog }.exec_def(cur, id, args, mask)
}

struct Exec<'p> {
    /// The source schema, for expression evaluation (`Pfun` bodies and
    /// enum-variant literals resolve through it).
    schema: &'p Schema,
    prog: &'p VmProgram,
}

impl<'p> Exec<'p> {
    fn env<'e>(&'e self, params: &'e [(Name, Value)], fields: &'e [(Name, Value)]) -> Env<'e>
    where
        'p: 'e,
    {
        let mut env = Env::new(self.schema);
        for (n, v) in params {
            env.push(n, Ev::Ref(v));
        }
        for (n, v) in fields {
            env.push(n, Ev::Ref(v));
        }
        env
    }

    fn exec_def(
        &self,
        cur: &mut Cursor<'_>,
        id: TypeId,
        args: &[Prim],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let Some(def) = self.prog.defs.get(id) else {
            // Out-of-range id: API misuse recorded as data, never a panic.
            return (
                Value::Prim(Prim::Unit),
                ParseDesc::error(ErrorCode::InternalError, Loc::at(cur.position())),
            );
        };
        if !cur.observing() {
            return self.exec_def_inner(cur, id, def, args, mask);
        }
        let start = cur.position();
        cur.observe_enter_id(id as u32, &def.name);
        let (value, pd) = self.exec_def_inner(cur, id, def, args, mask);
        cur.observe_exit_id(id as u32, &def.name, start, &pd);
        (value, pd)
    }

    fn exec_def_inner(
        &self,
        cur: &mut Cursor<'_>,
        id: TypeId,
        def: &'p CDef,
        args: &[Prim],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        // Budget exhausted in skip mode: frame and skip the record
        // wholesale (graceful degradation).
        if def.is_record && !cur.in_record() && cur.skip_records() && !cur.at_eof() {
            let start = Pos { byte: 0, ..cur.position() };
            if cur.begin_record().is_ok() {
                let _ = cur.end_record();
            }
            let mut pd =
                ParseDesc::error(ErrorCode::BudgetExhausted, Loc::new(start, cur.position()));
            pd.state = ParseState::Panic;
            cur.note_skipped_record();
            cur.observe_record_close(&pd);
            return (def.default.clone(), pd);
        }

        let params: Vec<(Name, Value)> = def
            .params
            .iter()
            .zip(args)
            .map(|(n, a)| (n.clone(), Value::Prim(a.clone())))
            .collect();

        // Record framing.
        let opened = def.is_record && !cur.in_record();
        let mut record_err = None;
        if opened {
            if let Err(code) = cur.begin_record() {
                if code == ErrorCode::UnexpectedEof {
                    let mut pd = ParseDesc::error(code, Loc::at(cur.position()));
                    pd.state = ParseState::Partial;
                    return (def.default.clone(), pd);
                }
                record_err = Some((code, Loc::at(cur.position())));
            }
        }

        let (value, mut pd) = self.exec_kind(cur, id, def, &params, mask);

        if let Some((code, loc)) = record_err {
            pd.add_error(code, loc);
        }

        if opened {
            let mut panic_skipped = 0u64;
            if has_syntax_error(&pd) {
                let at = cur.position();
                let close = cur.end_record();
                if close.skipped > 0 {
                    pd.note_panic_skip(Loc::new(
                        at,
                        Pos {
                            offset: at.offset + close.skipped,
                            record: at.record,
                            byte: at.byte + close.skipped,
                        },
                    ));
                    panic_skipped = close.skipped as u64;
                }
            } else {
                if !cur.at_eor() {
                    pd.add_error(ErrorCode::ExtraDataBeforeEor, Loc::at(cur.position()));
                }
                let close = cur.end_record();
                panic_skipped = close.skipped as u64;
            }
            if let Some(cap) = cur.policy().max_record_errs {
                if pd.nerr > cap {
                    pd.truncate_detail();
                }
            }
            cur.note_record_errors(pd.nerr, panic_skipped);
            if cur.best_effort() {
                pd.truncate_detail();
            }
            cur.observe_record_close(&pd);
        }
        (value, pd)
    }

    fn exec_kind(
        &self,
        cur: &mut Cursor<'_>,
        id: TypeId,
        def: &'p CDef,
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let _ = id;
        match &def.kind {
            CKind::Struct { members, n_fields } => {
                self.exec_struct(cur, def, members, *n_fields, params, mask)
            }
            CKind::Union { branches, switch } => match switch {
                Some(sel) => self.exec_switched(cur, sel, branches, params, mask),
                None => self.exec_union(cur, branches, params, mask),
            },
            CKind::Array(arr) => self.exec_array(cur, def, arr, params, mask),
            CKind::Enum { variants } => self.exec_enum(cur, variants),
            CKind::Typedef { base, var, pred } => {
                self.exec_typedef(cur, base, var, pred, params, mask)
            }
        }
    }

    fn exec_struct(
        &self,
        cur: &mut Cursor<'_>,
        def: &'p CDef,
        members: &'p [CMember],
        n_fields: usize,
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let mut fields: Vec<(Name, Value)> = Vec::with_capacity(n_fields);
        let mut pds: Vec<(Name, ParseDesc)> = Vec::new();
        let mut pd = ParseDesc::ok();
        let mut aborted = false;
        let mut i = 0;
        while i < members.len() {
            match &members[i] {
                CMember::Lit(lit) => {
                    if let Err((code, loc)) = self.match_clit(cur, lit) {
                        pd.add_error(code, loc);
                        pd.state = ParseState::Partial;
                        aborted = true;
                        break;
                    }
                }
                CMember::LitRun { bytes, parts } => {
                    // Fused peek-validate-commit over the whole run; on
                    // mismatch replay per literal for exact attribution.
                    if !cur.match_bytes(bytes) {
                        let mut failed = None;
                        for part in parts.iter() {
                            if let Err(e) = self.match_clit(cur, part) {
                                failed = Some(e);
                                break;
                            }
                        }
                        // The run mismatched, so some part must fail; the
                        // fallback covers the (unreachable) None anyway.
                        let (code, loc) = failed
                            .unwrap_or((ErrorCode::LitMismatch, Loc::at(cur.position())));
                        pd.add_error(code, loc);
                        pd.state = ParseState::Partial;
                        aborted = true;
                        break;
                    }
                }
                CMember::Field(f) => {
                    let child_mask = mask_child(mask, &f.name);
                    let start = cur.position();
                    let (value, mut child_pd) =
                        self.exec_ty(cur, &f.ty, params, &fields, &child_mask);
                    let syntax_fail = has_syntax_error(&child_pd);
                    fields.push((f.name.clone(), value));
                    if !syntax_fail && child_mask.base().checks() {
                        if let Some(c) = &f.constraint {
                            let verdict = match c {
                                // The constraint references only this
                                // field and earlier siblings: no
                                // environment needed.
                                CPred::Fast(p) => match fields.last() {
                                    Some((_, v)) => pexpr_bool(p, v, &fields),
                                    None => Err(ErrorCode::EvalError),
                                },
                                CPred::Generic(c) => {
                                    let mut env = self.env(params, &fields);
                                    eval::eval_bool(c, &mut env)
                                }
                            };
                            match verdict {
                                Ok(true) => {}
                                Ok(false) => {
                                    let loc = Loc::new(start, cur.position());
                                    child_pd.add_error(ErrorCode::ConstraintViolation, loc);
                                }
                                Err(code) => {
                                    let loc = Loc::new(start, cur.position());
                                    child_pd.add_error(code, loc);
                                }
                            }
                        }
                    }
                    pd.absorb(&child_pd);
                    if !child_pd.is_ok() {
                        pds.push((f.name.clone(), child_pd));
                    }
                    if syntax_fail {
                        pd.state = ParseState::Partial;
                        aborted = true;
                        break;
                    }
                }
            }
            i += 1;
        }
        if aborted {
            for m in members.iter().skip(i + 1) {
                if let CMember::Field(f) = m {
                    fields.push((f.name.clone(), self.default_cty(&f.ty)));
                }
            }
        }
        if !aborted && mask.compound().checks() {
            // Struct clauses always compile to `Generic` (the sorted
            // lowering is array-only).
            if let Some(CWhere::Generic(w)) = &def.where_clause {
                let mut env = self.env(params, &fields);
                match eval::eval_bool(w, &mut env) {
                    Ok(true) => {}
                    Ok(false) => {
                        pd.add_error(ErrorCode::WhereViolation, Loc::at(cur.position()))
                    }
                    Err(code) => pd.add_error(code, Loc::at(cur.position())),
                }
            }
        }
        pd.kind = PdKind::Struct { fields: pds };
        (Value::Struct { fields }, pd)
    }

    fn exec_ty(
        &self,
        cur: &mut Cursor<'_>,
        ty: &'p CTy,
        params: &[(Name, Value)],
        fields: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        match ty {
            CTy::Opt(inner) => {
                let cp = cur.checkpoint();
                let (value, pd) = self.exec_ty(cur, inner, params, fields, mask);
                if pd.is_ok() {
                    let mut opd = ParseDesc::ok();
                    opd.kind = PdKind::opt(pd);
                    (Value::Opt(Some(Box::new(value))), opd)
                } else {
                    cur.restore(cp);
                    let mut opd = ParseDesc::ok();
                    opd.kind = PdKind::Opt { inner: None };
                    (Value::Opt(None), opd)
                }
            }
            CTy::Base { bt, args, default } => match args {
                CArgs::None => self.exec_base(cur, bt, &[], mask),
                CArgs::Const(prims) => self.exec_base(cur, bt, prims, mask),
                CArgs::Dyn(exprs) => match self.eval_dyn_args(exprs, params, fields) {
                    Ok(prims) => self.exec_base(cur, bt, &prims, mask),
                    Err(code) => (
                        Value::Prim(default.clone()),
                        ParseDesc::error(code, Loc::at(cur.position())),
                    ),
                },
            },
            CTy::MissingBase => (
                Value::Prim(Prim::Unit),
                ParseDesc::error(ErrorCode::InternalError, Loc::at(cur.position())),
            ),
            CTy::Named { id, args } => match args {
                CArgs::None => self.exec_def(cur, *id, &[], mask),
                CArgs::Const(prims) => self.exec_def(cur, *id, prims, mask),
                CArgs::Dyn(exprs) => match self.eval_dyn_args(exprs, params, fields) {
                    Ok(prims) => self.exec_def(cur, *id, &prims, mask),
                    Err(code) => (
                        self.default_cty(ty),
                        ParseDesc::error(code, Loc::at(cur.position())),
                    ),
                },
            },
        }
    }

    fn eval_dyn_args(
        &self,
        exprs: &'p [Expr],
        params: &[(Name, Value)],
        fields: &[(Name, Value)],
    ) -> Result<Vec<Prim>, ErrorCode> {
        let mut env = self.env(params, fields);
        exprs.iter().map(|a| eval::eval_prim(a, &mut env)).collect()
    }

    fn exec_base(
        &self,
        cur: &mut Cursor<'_>,
        bt: &Arc<dyn BaseType>,
        args: &[Prim],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let start = cur.position();
        let cp = cur.checkpoint();
        match bt.parse(cur, args) {
            Ok(prim) => {
                let value = if mask.base().sets() {
                    Value::Prim(prim)
                } else {
                    Value::Prim(bt.default_value(args))
                };
                (value, ParseDesc::ok())
            }
            Err(code) => {
                cur.restore(cp);
                let loc = Loc::new(start, cur.position());
                (Value::Prim(bt.default_value(args)), ParseDesc::error(code, loc))
            }
        }
    }

    fn exec_union(
        &self,
        cur: &mut Cursor<'_>,
        branches: &'p [CBranch],
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let start = cur.position();
        for (index, b) in branches.iter().enumerate() {
            let cp = cur.checkpoint();
            let branch_mask = mask_child(mask, &b.name);
            let (value, bpd) = self.exec_ty(cur, &b.ty, params, &[], &branch_mask);
            if bpd.is_ok() {
                if let Some(c) = &b.constraint {
                    let verdict = match c {
                        CPred::Fast(p) => pexpr_bool(p, &value, &[]),
                        CPred::Generic(c) => {
                            let bound = [(b.name.clone(), value.clone())];
                            let mut env = self.env(params, &bound);
                            eval::eval_bool(c, &mut env)
                        }
                    };
                    match verdict {
                        Ok(true) => {}
                        Ok(false) | Err(_) => {
                            cur.restore(cp);
                            continue;
                        }
                    }
                }
                let mut pd = ParseDesc::ok();
                pd.kind = PdKind::union(b.name.clone(), bpd);
                return (
                    Value::Union { branch: b.name.clone(), index, value: Box::new(value) },
                    pd,
                );
            }
            cur.restore(cp);
        }
        let mut pd = ParseDesc::error(ErrorCode::UnionNoBranch, Loc::at(start));
        pd.state = ParseState::Partial;
        let Some(first) = branches.first() else {
            // A checked schema never produces an empty union.
            pd.err_code = ErrorCode::InternalError;
            return (Value::Prim(Prim::Unit), pd);
        };
        pd.kind = PdKind::union_ok(first.name.clone());
        (
            Value::Union {
                branch: first.name.clone(),
                index: 0,
                value: Box::new(self.default_cty(&first.ty)),
            },
            pd,
        )
    }

    fn exec_switched(
        &self,
        cur: &mut Cursor<'_>,
        sel: &'p Expr,
        branches: &'p [CBranch],
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let start = cur.position();
        let Some(front) = branches.first() else {
            // A checked schema never produces an empty union.
            let mut pd = ParseDesc::error(ErrorCode::InternalError, Loc::at(start));
            pd.state = ParseState::Partial;
            return (Value::Prim(Prim::Unit), pd);
        };
        let sel_val = {
            let mut env = self.env(params, &[]);
            eval::eval(sel, &mut env).map(|e| e.into_value())
        };
        let sel_val = match sel_val {
            Ok(v) => v,
            Err(code) => {
                let mut pd = ParseDesc::error(code, Loc::at(start));
                pd.state = ParseState::Partial;
                pd.kind = PdKind::union_ok(front.name.clone());
                return (
                    Value::Union {
                        branch: front.name.clone(),
                        index: 0,
                        value: Box::new(self.default_cty(&front.ty)),
                    },
                    pd,
                );
            }
        };
        let mut chosen = None;
        let mut default = None;
        for (index, b) in branches.iter().enumerate() {
            match &b.case {
                Some(CCase::Const(case_val)) if case_eq(&sel_val, case_val) => {
                    chosen = Some((index, b));
                    break;
                }
                Some(CCase::Const(_)) => {}
                Some(CCase::Dyn(e)) => {
                    let mut env = self.env(params, &[]);
                    if let Ok(case_val) = eval::eval(e, &mut env) {
                        if case_eq(&sel_val, case_val.value()) {
                            chosen = Some((index, b));
                            break;
                        }
                    }
                }
                Some(CCase::Default) => default = Some((index, b)),
                None => {}
            }
        }
        let Some((index, b)) = chosen.or(default) else {
            let mut pd = ParseDesc::error(ErrorCode::SwitchNoMatch, Loc::at(start));
            pd.state = ParseState::Partial;
            pd.kind = PdKind::union_ok(front.name.clone());
            return (
                Value::Union {
                    branch: front.name.clone(),
                    index: 0,
                    value: Box::new(self.default_cty(&front.ty)),
                },
                pd,
            );
        };
        let child_mask = mask_child(mask, &b.name);
        let (value, bpd) = self.exec_ty(cur, &b.ty, params, &[], &child_mask);
        let mut pd = ParseDesc::ok();
        pd.absorb(&bpd);
        if let Some(c) = &b.constraint {
            let verdict = match c {
                CPred::Fast(p) => pexpr_bool(p, &value, &[]),
                CPred::Generic(c) => {
                    let bound = [(b.name.clone(), value.clone())];
                    let mut env = self.env(params, &bound);
                    eval::eval_bool(c, &mut env)
                }
            };
            match verdict {
                Ok(true) => {}
                Ok(false) => pd.add_error(ErrorCode::ConstraintViolation, Loc::at(cur.position())),
                Err(code) => pd.add_error(code, Loc::at(cur.position())),
            }
        }
        pd.kind = PdKind::union(b.name.clone(), bpd);
        (Value::Union { branch: b.name.clone(), index, value: Box::new(value) }, pd)
    }

    fn exec_array(
        &self,
        cur: &mut Cursor<'_>,
        def: &'p CDef,
        arr: &'p CArray,
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let mut elts: Vec<Value> = Vec::new();
        let mut elt_pds = SparseElts::new();
        let mut pd = ParseDesc::ok();
        let mut neerr: u32 = 0;
        let mut first_error: Option<usize> = None;
        let elem_mask = mask_child(mask, pads_runtime::mask::ELT);

        let want_size = match &arr.size {
            Some(CSize::Const(n)) => Some(*n),
            Some(CSize::ConstBad) => {
                pd.add_error(ErrorCode::EvalError, Loc::at(cur.position()));
                Some(0)
            }
            Some(CSize::Dyn(e)) => {
                let mut env = self.env(params, &[]);
                match eval::eval_prim(e, &mut env).map(|p| p.as_u64()) {
                    Ok(Some(n)) => Some(n as usize),
                    _ => {
                        pd.add_error(ErrorCode::EvalError, Loc::at(cur.position()));
                        Some(0)
                    }
                }
            }
            None => None,
        };

        loop {
            if let Some(n) = want_size {
                if elts.len() >= n {
                    break;
                }
            }
            if want_size.is_none() && self.term_matches(cur, &arr.term) {
                self.consume_term(cur, &arr.term);
                break;
            }
            if want_size.is_none() && arr.term.is_none() && at_natural_end(cur) {
                break;
            }
            if !elts.is_empty() {
                if let Some(s) = &arr.sep {
                    let cp = cur.checkpoint();
                    if let Err((_, loc)) = self.match_clit(cur, s) {
                        cur.restore(cp);
                        pd.add_error(ErrorCode::ArraySepMismatch, loc);
                        pd.state = ParseState::Partial;
                        break;
                    }
                }
            }
            let before = cur.offset();
            let (value, elt_pd) = self.exec_ty(cur, &arr.elem, params, &[], &elem_mask);
            let bad = !elt_pd.is_ok();
            let syntax_fail = has_syntax_error(&elt_pd);
            if bad {
                neerr += 1;
                if first_error.is_none() {
                    first_error = Some(elts.len());
                }
            }
            pd.absorb(&elt_pd);
            elts.push(value);
            elt_pds.push(elt_pd);
            if syntax_fail && !arr.elem_recovers {
                pd.state = ParseState::Partial;
                break;
            }
            // Zero-width guard, elided when progress is proven (the same
            // fact `pads-codegen` uses to drop it from generated loops).
            if !arr.guard_elided && cur.offset() == before && want_size.is_none() {
                pd.add_error(ErrorCode::ArrayTermMismatch, Loc::at(cur.position()));
                break;
            }
            if let Some(e) = &arr.ended {
                let done;
                {
                    let arr_v = Value::Array(std::mem::take(&mut elts));
                    let len = Value::Prim(Prim::Uint(arr_v.len().unwrap_or(0) as u64));
                    let bound =
                        [(Name::from_static("elts"), arr_v), (Name::from_static("length"), len)];
                    let mut env = self.env(params, &bound);
                    done = eval::eval_bool(e, &mut env).unwrap_or(false);
                    drop(env);
                    if let Some((_, Value::Array(back))) = bound.into_iter().next() {
                        elts = back;
                    }
                }
                if done {
                    if self.term_matches(cur, &arr.term) {
                        self.consume_term(cur, &arr.term);
                    }
                    break;
                }
            }
        }

        if let Some(n) = want_size {
            if elts.len() != n {
                pd.add_error(ErrorCode::ArraySizeMismatch, Loc::at(cur.position()));
            }
        }

        if mask.compound().checks() && pd.state == ParseState::Ok {
            match &def.where_clause {
                Some(CWhere::Sorted { field, op }) => match eval_sorted(field, *op, &elts) {
                    Ok(true) => {}
                    // The sorted lowering only matches `Pforall` clauses.
                    Ok(false) => {
                        pd.add_error(ErrorCode::ForallViolation, Loc::at(cur.position()))
                    }
                    Err(code) => pd.add_error(code, Loc::at(cur.position())),
                },
                Some(CWhere::Generic(w)) => {
                    let arr_v = Value::Array(std::mem::take(&mut elts));
                    let len = Value::Prim(Prim::Uint(arr_v.len().unwrap_or(0) as u64));
                    let bound =
                        [(Name::from_static("elts"), arr_v), (Name::from_static("length"), len)];
                    let mut env = self.env(params, &bound);
                    match eval::eval_bool(w, &mut env) {
                        Ok(true) => {}
                        Ok(false) => {
                            let code = if matches!(w, Expr::Forall { .. }) {
                                ErrorCode::ForallViolation
                            } else {
                                ErrorCode::WhereViolation
                            };
                            pd.add_error(code, Loc::at(cur.position()));
                        }
                        Err(code) => pd.add_error(code, Loc::at(cur.position())),
                    }
                    drop(env);
                    if let Some((_, Value::Array(back))) = bound.into_iter().next() {
                        elts = back;
                    }
                }
                None => {}
            }
        }

        pd.kind = PdKind::Array { elts: elt_pds.finish(), neerr, first_error };
        (Value::Array(elts), pd)
    }

    /// Whether the array terminator matches at the cursor (lookahead only).
    fn term_matches(&self, cur: &mut Cursor<'_>, term: &Option<CLit>) -> bool {
        match term {
            None => false,
            Some(CLit::Eor) => cur.at_eor(),
            Some(CLit::Eof) => cur.at_eof(),
            Some(CLit::Bytes(b)) => cur.rest().starts_with(b),
            Some(lit @ CLit::Regex(_)) => {
                let cp = cur.checkpoint();
                let ok = self.match_clit(cur, lit).is_ok();
                cur.restore(cp);
                ok
            }
        }
    }

    fn consume_term(&self, cur: &mut Cursor<'_>, term: &Option<CLit>) {
        match term {
            Some(CLit::Eor) | Some(CLit::Eof) | None => {}
            Some(lit) => {
                let _ = self.match_clit(cur, lit);
            }
        }
    }

    fn exec_enum(&self, cur: &mut Cursor<'_>, variants: &'p [CVariant]) -> (Value, ParseDesc) {
        let start = cur.position();
        // Longest-match over the pre-encoded variants (strictly greater,
        // so the first of equal-length candidates wins — interpreter
        // order).
        let mut best: Option<(usize, usize)> = None; // (len, index)
        let rest = cur.rest();
        for (i, v) in variants.iter().enumerate() {
            if rest.starts_with(&v.bytes) && best.is_none_or(|(len, _)| v.bytes.len() > len) {
                best = Some((v.bytes.len(), i));
            }
        }
        match best {
            Some((len, index)) => {
                cur.advance(len);
                let variant =
                    variants.get(index).map(|v| v.name.clone()).unwrap_or_default();
                (Value::Enum { variant, index }, ParseDesc::ok())
            }
            None => {
                let pd = ParseDesc::error(ErrorCode::EnumNoMatch, Loc::at(start));
                let variant = variants.first().map(|v| v.name.clone()).unwrap_or_default();
                (Value::Enum { variant, index: 0 }, pd)
            }
        }
    }

    fn exec_typedef(
        &self,
        cur: &mut Cursor<'_>,
        base: &'p CTy,
        var: &'p Option<Name>,
        pred: &'p Option<CPred>,
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let start = cur.position();
        let (value, bpd) = self.exec_ty(cur, base, params, &[], mask);
        let mut pd = ParseDesc::ok();
        pd.absorb(&bpd);
        if mask.base().checks() && pd.is_ok() {
            if let (Some(v), Some(p)) = (var, pred) {
                let verdict = match p {
                    CPred::Fast(p) => pexpr_bool(p, &value, &[]),
                    CPred::Generic(p) => {
                        let bound = [(v.clone(), value.clone())];
                        let mut env = self.env(params, &bound);
                        eval::eval_bool(p, &mut env)
                    }
                };
                match verdict {
                    Ok(true) => {}
                    Ok(false) => pd.add_error(
                        ErrorCode::ConstraintViolation,
                        Loc::new(start, cur.position()),
                    ),
                    Err(code) => pd.add_error(code, Loc::new(start, cur.position())),
                }
            }
        }
        pd.kind = PdKind::typedef(bpd);
        (value, pd)
    }

    fn match_clit(&self, cur: &mut Cursor<'_>, lit: &CLit) -> Result<(), (ErrorCode, Loc)> {
        let start = cur.position();
        match lit {
            CLit::Bytes(b) => {
                if cur.match_bytes(b) {
                    Ok(())
                } else {
                    Err((ErrorCode::LitMismatch, Loc::at(start)))
                }
            }
            CLit::Regex(pat) => {
                let re = cur.regex(pat).map_err(|c| (c, Loc::at(start)))?;
                if cur.match_regex(&re).is_some() {
                    Ok(())
                } else {
                    Err((ErrorCode::RegexMismatch, Loc::at(start)))
                }
            }
            CLit::Eor => {
                if cur.at_eor() {
                    Ok(())
                } else {
                    Err((ErrorCode::LitMismatch, Loc::at(start)))
                }
            }
            CLit::Eof => {
                if cur.at_eof() {
                    Ok(())
                } else {
                    Err((ErrorCode::LitMismatch, Loc::at(start)))
                }
            }
        }
    }

    fn default_cty(&self, ty: &CTy) -> Value {
        match ty {
            CTy::Opt(_) => Value::Opt(None),
            CTy::Base { default, .. } => Value::Prim(default.clone()),
            CTy::MissingBase => Value::Prim(Prim::Unit),
            CTy::Named { id, .. } => self
                .prog
                .defs
                .get(*id)
                .map(|d| d.default.clone())
                .unwrap_or(Value::Prim(Prim::Unit)),
        }
    }
}

/// Case-label comparison: numeric labels compare as integers across
/// signedness, anything else structurally (interpreter semantics).
fn case_eq(sel: &Value, case: &Value) -> bool {
    match (sel.as_i64(), case.as_i64()) {
        (Some(a), Some(b)) => a == b,
        _ => sel == case,
    }
}

/// Natural end for unbounded arrays: end of record when inside one, end of
/// source otherwise.
fn at_natural_end(cur: &Cursor<'_>) -> bool {
    if cur.in_record() {
        cur.at_eor()
    } else {
        cur.at_eof()
    }
}
