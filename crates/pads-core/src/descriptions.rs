//! The paper's running-example descriptions, bundled for tests, examples,
//! and benchmarks.
//!
//! Sources live in `descriptions/*.pads` at the repository root and are
//! embedded at compile time.

use pads_check::ir::Schema;
use pads_runtime::Registry;

/// The CLF web-server-log description (Figure 4).
pub const CLF: &str = include_str!("../../../descriptions/clf.pads");

/// The Sirius provisioning-data description (Figure 5).
pub const SIRIUS: &str = include_str!("../../../descriptions/sirius.pads");

/// A kitchen-sink description combining switched unions, parameterised
/// types, optionals, enums, floats and bit-adjacent constructs, used to
/// cross-check the interpreter against generated code.
pub const MIXED: &str = include_str!("../../../descriptions/mixed.pads");

/// Compiles the CLF description against the standard registry.
///
/// # Panics
///
/// Panics only if the bundled description is broken (covered by tests).
#[allow(clippy::expect_used)] // compile-time-bundled input, covered by tests
pub fn clf() -> Schema {
    pads_check::compile(CLF, &Registry::standard()).expect("bundled CLF description compiles")
}

/// Compiles the Sirius description against the standard registry.
///
/// # Panics
///
/// Panics only if the bundled description is broken (covered by tests).
#[allow(clippy::expect_used)] // compile-time-bundled input, covered by tests
pub fn sirius() -> Schema {
    pads_check::compile(SIRIUS, &Registry::standard())
        .expect("bundled Sirius description compiles")
}

/// Compiles the kitchen-sink description against the standard registry.
///
/// # Panics
///
/// Panics only if the bundled description is broken (covered by tests).
#[allow(clippy::expect_used)] // compile-time-bundled input, covered by tests
pub fn mixed() -> Schema {
    pads_check::compile(MIXED, &Registry::standard())
        .expect("bundled mixed description compiles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_descriptions_compile() {
        assert_eq!(clf().source_def().name, "clt_t");
        assert_eq!(sirius().source_def().name, "out_sum");
        assert_eq!(mixed().source_def().name, "recs_t");
    }

    #[test]
    fn sirius_has_the_figure_5_shape() {
        let s = sirius();
        let entry = s.def_by_name("entry_t").expect("entry_t");
        assert!(entry.is_record);
        let seq = s.def_by_name("eventSeq").expect("eventSeq");
        assert!(seq.where_clause.is_some());
    }
}
