//! Writing values back out in their original form (`*_write2io` in the
//! paper's generated library).
//!
//! The writer mirrors the parse: literals are re-emitted, base values are
//! rendered by their base types, unions write only the taken branch, and
//! record framing (newline / fixed width / length prefix) is re-applied.
//!
//! Reproduction notes: fixed-width numbers are written zero-padded and
//! regex *literals* (not `Pstring_ME` values, which are stored) cannot be
//! regenerated — neither form appears in the paper's descriptions.

use pads_check::ir::{MemberIr, Schema, TypeId, TypeKind, TyUse};
use pads_runtime::{Charset, Endian, ErrorCode, Name, Prim, RecordDiscipline, Registry};
use pads_syntax::ast::{Expr, Literal};

use crate::eval::{self, Env, Ev};
use crate::parse::ParseOptions;
use crate::value::Value;

/// Writes parsed values back to bytes.
pub struct Writer<'s> {
    schema: &'s Schema,
    registry: &'s Registry,
    options: ParseOptions,
}

impl<'s> Writer<'s> {
    /// Creates a writer with default options.
    pub fn new(schema: &'s Schema, registry: &'s Registry) -> Writer<'s> {
        Writer { schema, registry, options: ParseOptions::default() }
    }

    /// Sets cursor options (must match the parse).
    pub fn with_options(mut self, options: ParseOptions) -> Writer<'s> {
        self.options = options;
        self
    }

    /// Renders `value` (parsed as type `name`) into `out`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::EvalError`] when the value's shape does not match the
    /// type, or when an unreproducible construct (regex literal) is hit;
    /// [`ErrorCode::InternalError`] when `name` is not declared in the
    /// schema.
    pub fn write_named(
        &self,
        out: &mut Vec<u8>,
        name: &str,
        value: &Value,
    ) -> Result<(), ErrorCode> {
        let id = self.schema.type_id(name).ok_or(ErrorCode::InternalError)?;
        self.write_def(out, id, &[], value)
    }

    /// Renders the source-type `value` into a byte vector.
    ///
    /// # Errors
    ///
    /// See [`write_named`](Writer::write_named).
    pub fn write_source(&self, value: &Value) -> Result<Vec<u8>, ErrorCode> {
        let mut out = Vec::new();
        self.write_def(&mut out, self.schema.source(), &[], value)?;
        Ok(out)
    }

    fn charset(&self) -> Charset {
        self.options.charset
    }

    fn endian(&self) -> Endian {
        self.options.endian
    }

    /// Writes a declared type.
    fn write_def(
        &self,
        out: &mut Vec<u8>,
        id: TypeId,
        args: &[Prim],
        value: &Value,
    ) -> Result<(), ErrorCode> {
        let def = self.schema.def(id);
        let params: Vec<(Name, Value)> = def
            .params
            .iter()
            .zip(args)
            .map(|(p, a)| (Name::shared(&p.name), Value::Prim(a.clone())))
            .collect();
        if def.is_record {
            let mut body = Vec::new();
            self.write_kind(&mut body, id, &params, value)?;
            match self.options.discipline {
                RecordDiscipline::Newline => {
                    out.extend_from_slice(&body);
                    out.push(self.charset().encode(b'\n'));
                }
                RecordDiscipline::FixedWidth(_) | RecordDiscipline::None => {
                    out.extend_from_slice(&body)
                }
                RecordDiscipline::LengthPrefixed { header_bytes, endian } => {
                    let len = body.len();
                    let mut hdr = vec![0u8; header_bytes];
                    for (i, b) in hdr.iter_mut().enumerate() {
                        let shift = match endian {
                            Endian::Big => 8 * (header_bytes - 1 - i),
                            Endian::Little => 8 * i,
                        };
                        *b = (len >> shift) as u8;
                    }
                    out.extend_from_slice(&hdr);
                    out.extend_from_slice(&body);
                }
            }
            Ok(())
        } else {
            self.write_kind(out, id, &params, value)
        }
    }

    fn write_kind(
        &self,
        out: &mut Vec<u8>,
        id: TypeId,
        params: &[(Name, Value)],
        value: &Value,
    ) -> Result<(), ErrorCode> {
        let def = self.schema.def(id);
        match (&def.kind, value) {
            (TypeKind::Struct { members }, Value::Struct { fields }) => {
                for m in members {
                    match m {
                        MemberIr::Lit(l) => self.write_literal(out, l)?,
                        MemberIr::Field(f) => {
                            let v = value.field(&f.name).ok_or(ErrorCode::EvalError)?;
                            self.write_tyuse(out, &f.ty, params, fields, v)?;
                        }
                    }
                }
                Ok(())
            }
            (TypeKind::Union { branches, .. }, Value::Union { branch, value: inner, .. }) => {
                let b = branches
                    .iter()
                    .find(|b| &b.field.name == branch)
                    .ok_or(ErrorCode::EvalError)?;
                self.write_tyuse(out, &b.field.ty, params, &[], inner)
            }
            (TypeKind::Array { elem, sep, term, .. }, Value::Array(elts)) => {
                for (i, e) in elts.iter().enumerate() {
                    if i > 0 {
                        if let Some(s) = sep {
                            self.write_literal(out, s)?;
                        }
                    }
                    self.write_tyuse(out, elem, params, &[], e)?;
                }
                match term {
                    Some(Literal::Eor) | Some(Literal::Eof) | None => {}
                    Some(lit) => self.write_literal(out, lit)?,
                }
                Ok(())
            }
            (TypeKind::Enum { variants }, Value::Enum { variant, .. }) => {
                if !variants.iter().any(|v| v == variant) {
                    return Err(ErrorCode::EvalError);
                }
                out.extend(variant.bytes().map(|b| self.charset().encode(b)));
                Ok(())
            }
            (TypeKind::Typedef { base, .. }, v) => self.write_tyuse(out, base, params, &[], v),
            _ => Err(ErrorCode::EvalError),
        }
    }

    fn write_tyuse(
        &self,
        out: &mut Vec<u8>,
        ty: &TyUse,
        params: &[(Name, Value)],
        fields: &[(Name, Value)],
        value: &Value,
    ) -> Result<(), ErrorCode> {
        match (ty, value) {
            (TyUse::Opt(_), Value::Opt(None)) => Ok(()),
            (TyUse::Opt(inner), Value::Opt(Some(v))) => {
                self.write_tyuse(out, inner, params, fields, v)
            }
            (TyUse::Base { name, args }, Value::Prim(p)) => {
                let prims = self.eval_args(args, params, fields)?;
                let bt = self.registry.get(name).ok_or(ErrorCode::InternalError)?;
                bt.write(out, p, &prims, self.charset(), self.endian())
            }
            (TyUse::Named { id, args }, v) => {
                let prims = self.eval_args(args, params, fields)?;
                self.write_def(out, *id, &prims, v)
            }
            _ => Err(ErrorCode::EvalError),
        }
    }

    fn eval_args(
        &self,
        args: &[Expr],
        params: &[(Name, Value)],
        fields: &[(Name, Value)],
    ) -> Result<Vec<Prim>, ErrorCode> {
        let mut env = Env::new(self.schema);
        for (n, v) in params {
            env.push(n, Ev::Ref(v));
        }
        for (n, v) in fields {
            env.push(n, Ev::Ref(v));
        }
        // Safety of lifetimes: args live in the schema; bindings live on the
        // caller's stack; both outlive this call.
        args.iter().map(|a| eval::eval_prim(a, &mut env)).collect()
    }

    fn write_literal(&self, out: &mut Vec<u8>, lit: &Literal) -> Result<(), ErrorCode> {
        match lit {
            Literal::Char(c) => {
                out.push(self.charset().encode(*c));
                Ok(())
            }
            Literal::Str(s) => {
                out.extend(s.bytes().map(|b| self.charset().encode(b)));
                Ok(())
            }
            // A regex literal's matched text is not retained in the
            // representation, so it cannot be written back.
            Literal::Regex(_) => Err(ErrorCode::EvalError),
            Literal::Eor | Literal::Eof => Ok(()),
        }
    }
}
