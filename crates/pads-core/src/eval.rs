//! Evaluator for the C-like constraint expression language.
//!
//! Constraints run during parsing (when the mask requests checking), during
//! verification of in-memory values, and inside the data generator. The
//! evaluator is defined over [`Value`]s; scalar results are `Value::Prim`s.

use pads_check::ir::Schema;
use pads_runtime::{ErrorCode, Prim};
use pads_syntax::ast::{BinOp, Expr, Stmt, UnOp};

use crate::value::Value;

/// An evaluation result: borrowed when it names existing data, owned when
/// computed.
#[derive(Debug, Clone)]
pub enum Ev<'a> {
    /// Borrowed from the environment.
    Ref(&'a Value),
    /// Computed.
    Owned(Value),
}

impl<'a> Ev<'a> {
    /// Wraps a computed primitive.
    pub fn prim(p: Prim) -> Ev<'a> {
        Ev::Owned(Value::Prim(p))
    }

    /// The underlying value.
    pub fn value(&self) -> &Value {
        match self {
            Ev::Ref(v) => v,
            Ev::Owned(v) => v,
        }
    }

    /// Converts into an owned value.
    pub fn into_value(self) -> Value {
        match self {
            Ev::Ref(v) => v.clone(),
            Ev::Owned(v) => v,
        }
    }

    fn as_bool(&self) -> Result<bool, ErrorCode> {
        match self.value() {
            Value::Prim(Prim::Bool(b)) => Ok(*b),
            _ => Err(ErrorCode::EvalError),
        }
    }
}

/// A lexical scope mapping names to values.
///
/// Bindings are pushed in order; lookups scan from the innermost end, so
/// shadowing (e.g. a `Pforall` variable) behaves as expected.
pub struct Env<'a> {
    /// The schema (for functions and enum variants).
    pub schema: &'a Schema,
    vars: Vec<(&'a str, Ev<'a>)>,
}

impl<'a> Env<'a> {
    /// An empty environment over `schema`.
    pub fn new(schema: &'a Schema) -> Env<'a> {
        Env { schema, vars: Vec::new() }
    }

    /// Pushes a binding; returns a token for [`truncate`](Env::truncate).
    pub fn push(&mut self, name: &'a str, value: Ev<'a>) -> usize {
        self.vars.push((name, value));
        self.vars.len() - 1
    }

    /// Pops bindings down to a previous length.
    pub fn truncate(&mut self, len: usize) {
        self.vars.truncate(len);
    }

    /// Current number of bindings.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the environment has no bindings.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    fn lookup(&self, name: &str) -> Option<&Ev<'a>> {
        self.vars.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| v)
    }
}

const MAX_CALL_DEPTH: u32 = 64;

/// Evaluates an expression to a value.
///
/// # Errors
///
/// [`ErrorCode::EvalError`] on unbound names, type mismatches, division by
/// zero, or call-depth overflow.
pub fn eval<'a>(expr: &'a Expr, env: &mut Env<'a>) -> Result<Ev<'a>, ErrorCode> {
    eval_at(expr, env, 0)
}

/// Evaluates an expression expected to produce a boolean (constraints).
pub fn eval_bool<'a>(expr: &'a Expr, env: &mut Env<'a>) -> Result<bool, ErrorCode> {
    eval(expr, env)?.as_bool()
}

/// Evaluates an expression expected to produce a primitive (type args).
pub fn eval_prim<'a>(expr: &'a Expr, env: &mut Env<'a>) -> Result<Prim, ErrorCode> {
    match eval(expr, env)?.into_value() {
        Value::Prim(p) => Ok(p),
        Value::Enum { index, .. } => Ok(Prim::Uint(index as u64)),
        _ => Err(ErrorCode::EvalError),
    }
}

fn eval_at<'a>(expr: &'a Expr, env: &mut Env<'a>, depth: u32) -> Result<Ev<'a>, ErrorCode> {
    match expr {
        Expr::Int(v) => Ok(Ev::prim(Prim::Int(*v))),
        Expr::Float(v) => Ok(Ev::prim(Prim::Float(*v))),
        Expr::Char(c) => Ok(Ev::prim(Prim::Char(*c))),
        Expr::Str(s) => Ok(Ev::prim(Prim::String(s.clone()))),
        Expr::Bool(b) => Ok(Ev::prim(Prim::Bool(*b))),
        Expr::Ident(name) => {
            if let Some(v) = env.lookup(name) {
                return Ok(v.clone());
            }
            if let Some((_, idx)) = env.schema.enum_variants.get(name) {
                return Ok(Ev::prim(Prim::Uint(*idx as u64)));
            }
            Err(ErrorCode::EvalError)
        }
        Expr::Field(base, name) => {
            let base = eval_at(base, env, depth)?;
            project_field(base, name)
        }
        Expr::Index(base, idx) => {
            let i = to_i64(&eval_at(idx, env, depth)?)?;
            let base = eval_at(base, env, depth)?;
            let i = usize::try_from(i).map_err(|_| ErrorCode::EvalError)?;
            match base {
                Ev::Ref(v) => v.index(i).map(Ev::Ref).ok_or(ErrorCode::EvalError),
                Ev::Owned(v) => {
                    v.index(i).cloned().map(Ev::Owned).ok_or(ErrorCode::EvalError)
                }
            }
        }
        Expr::Call(name, args) => {
            if depth >= MAX_CALL_DEPTH {
                return Err(ErrorCode::EvalError);
            }
            let func = env.schema.funcs.get(name).ok_or(ErrorCode::EvalError)?;
            if func.params.len() != args.len() {
                return Err(ErrorCode::EvalError);
            }
            let mut bound: Vec<(&'a str, Ev<'a>)> = Vec::with_capacity(args.len());
            for (p, a) in func.params.iter().zip(args) {
                bound.push((p.name.as_str(), eval_at(a, env, depth)?));
            }
            // Function bodies see only their parameters (plus globals).
            let saved = std::mem::take(&mut env.vars);
            env.vars = bound;
            let result = exec_stmts(&func.body, env, depth + 1);
            env.vars = saved;
            match result? {
                Some(v) => Ok(v),
                None => Err(ErrorCode::EvalError),
            }
        }
        Expr::Unary(UnOp::Not, a) => {
            let v = eval_at(a, env, depth)?.as_bool()?;
            Ok(Ev::prim(Prim::Bool(!v)))
        }
        Expr::Unary(UnOp::Neg, a) => {
            let v = eval_at(a, env, depth)?;
            match v.value() {
                Value::Prim(Prim::Int(i)) => Ok(Ev::prim(Prim::Int(-i))),
                Value::Prim(Prim::Uint(u)) => {
                    let i = i64::try_from(*u).map_err(|_| ErrorCode::EvalError)?;
                    Ok(Ev::prim(Prim::Int(-i)))
                }
                Value::Prim(Prim::Float(f)) => Ok(Ev::prim(Prim::Float(-f))),
                _ => Err(ErrorCode::EvalError),
            }
        }
        Expr::Binary(BinOp::And, a, b) => {
            // Short-circuit.
            if !eval_at(a, env, depth)?.as_bool()? {
                return Ok(Ev::prim(Prim::Bool(false)));
            }
            let v = eval_at(b, env, depth)?.as_bool()?;
            Ok(Ev::prim(Prim::Bool(v)))
        }
        Expr::Binary(BinOp::Or, a, b) => {
            if eval_at(a, env, depth)?.as_bool()? {
                return Ok(Ev::prim(Prim::Bool(true)));
            }
            let v = eval_at(b, env, depth)?.as_bool()?;
            Ok(Ev::prim(Prim::Bool(v)))
        }
        Expr::Binary(op, a, b) => {
            let lhs = eval_at(a, env, depth)?;
            let rhs = eval_at(b, env, depth)?;
            binary(*op, &lhs, &rhs)
        }
        Expr::Ternary(c, t, e) => {
            if eval_at(c, env, depth)?.as_bool()? {
                eval_at(t, env, depth)
            } else {
                eval_at(e, env, depth)
            }
        }
        Expr::Forall { var, lo, hi, body } => {
            let lo = to_i64(&eval_at(lo, env, depth)?)?;
            let hi = to_i64(&eval_at(hi, env, depth)?)?;
            let mark = env.len();
            for i in lo..=hi {
                env.truncate(mark);
                env.push(var, Ev::prim(Prim::Int(i)));
                let ok = eval_at(body, env, depth)?.as_bool()?;
                if !ok {
                    env.truncate(mark);
                    return Ok(Ev::prim(Prim::Bool(false)));
                }
            }
            env.truncate(mark);
            Ok(Ev::prim(Prim::Bool(true)))
        }
    }
}

fn exec_stmts<'a>(
    body: &'a [Stmt],
    env: &mut Env<'a>,
    depth: u32,
) -> Result<Option<Ev<'a>>, ErrorCode> {
    for s in body {
        match s {
            Stmt::Return(e) => return eval_at(e, env, depth).map(Some),
            Stmt::If { cond, then_body, else_body } => {
                let taken = if eval_at(cond, env, depth)?.as_bool()? {
                    then_body
                } else {
                    else_body
                };
                if let Some(v) = exec_stmts(taken, env, depth)? {
                    return Ok(Some(v));
                }
            }
        }
    }
    Ok(None)
}

/// Projects a named field out of a value, looking through matching union
/// branches and present optionals — the semantics of `Expr::Field`.
/// Shared with the VM's compiled predicates so both engines agree.
pub(crate) fn project_field<'a>(base: Ev<'a>, name: &str) -> Result<Ev<'a>, ErrorCode> {
    fn get<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
        match v {
            Value::Union { branch, value, .. } if branch == name => Some(value),
            Value::Opt(Some(inner)) => get(inner, name),
            other => other.field(name),
        }
    }
    match base {
        Ev::Ref(v) => get(v, name).map(Ev::Ref).ok_or(ErrorCode::EvalError),
        Ev::Owned(v) => get(&v, name).cloned().map(Ev::Owned).ok_or(ErrorCode::EvalError),
    }
}

fn to_i64(v: &Ev<'_>) -> Result<i64, ErrorCode> {
    v.value().as_i64().ok_or(ErrorCode::EvalError)
}

fn to_f64(v: &Ev<'_>) -> Option<f64> {
    match v.value() {
        Value::Prim(p) => p.as_f64(),
        Value::Enum { index, .. } => Some(*index as f64),
        _ => None,
    }
}

/// Applies a non-logical binary operator — the semantics of
/// `Expr::Binary` for everything but `&&`/`||`. Shared with the VM's
/// compiled predicates so both engines agree.
pub(crate) fn binary<'a>(op: BinOp, lhs: &Ev<'_>, rhs: &Ev<'_>) -> Result<Ev<'a>, ErrorCode> {
    // Equality first: it also covers strings and enum/number mixes.
    match op {
        BinOp::Eq | BinOp::Ne => {
            let eq = loose_eq(lhs.value(), rhs.value())?;
            return Ok(Ev::prim(Prim::Bool(if op == BinOp::Eq { eq } else { !eq })));
        }
        _ => {}
    }
    // String comparison.
    if let (Value::Prim(Prim::String(a)), Value::Prim(Prim::String(b))) =
        (lhs.value(), rhs.value())
    {
        let ord = a.cmp(b);
        return cmp_result(op, ord).map(Ev::prim);
    }
    // Integer arithmetic when both sides fit i64; otherwise float.
    match (lhs.value().as_i64(), rhs.value().as_i64()) {
        (Some(a), Some(b)) => {
            let p = match op {
                BinOp::Add => Prim::Int(a.wrapping_add(b)),
                BinOp::Sub => Prim::Int(a.wrapping_sub(b)),
                BinOp::Mul => Prim::Int(a.wrapping_mul(b)),
                BinOp::Div => Prim::Int(a.checked_div(b).ok_or(ErrorCode::EvalError)?),
                BinOp::Rem => Prim::Int(a.checked_rem(b).ok_or(ErrorCode::EvalError)?),
                cmp => return cmp_result(cmp, a.cmp(&b)).map(Ev::prim),
            };
            Ok(Ev::prim(p))
        }
        _ => {
            let a = to_f64(lhs).ok_or(ErrorCode::EvalError)?;
            let b = to_f64(rhs).ok_or(ErrorCode::EvalError)?;
            let p = match op {
                BinOp::Add => Prim::Float(a + b),
                BinOp::Sub => Prim::Float(a - b),
                BinOp::Mul => Prim::Float(a * b),
                BinOp::Div => Prim::Float(a / b),
                BinOp::Rem => Prim::Float(a % b),
                cmp => {
                    let ord = a.partial_cmp(&b).ok_or(ErrorCode::EvalError)?;
                    return cmp_result(cmp, ord).map(Ev::prim);
                }
            };
            Ok(Ev::prim(p))
        }
    }
}

fn cmp_result(op: BinOp, ord: std::cmp::Ordering) -> Result<Prim, ErrorCode> {
    use std::cmp::Ordering;
    let b = match op {
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => return Err(ErrorCode::EvalError),
    };
    Ok(Prim::Bool(b))
}

fn loose_eq(a: &Value, b: &Value) -> Result<bool, ErrorCode> {
    match (a, b) {
        (Value::Prim(x), Value::Prim(y)) => Ok(x.loose_eq(y)),
        (Value::Enum { index, .. }, other) | (other, Value::Enum { index, .. }) => {
            match other.as_u64() {
                Some(v) => Ok(v == *index as u64),
                None => Err(ErrorCode::EvalError),
            }
        }
        (Value::Opt(None), Value::Opt(None)) => Ok(true),
        (Value::Opt(Some(x)), y) => loose_eq(x, y),
        (x, Value::Opt(Some(y))) => loose_eq(x, y),
        _ => Ok(a == b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::Registry;
    use pads_syntax::parse_expr;

    fn schema() -> Schema {
        pads_check::compile(
            r#"
            Penum method_t { GET, PUT, LINK };
            bool chk(int a, int b) {
                if (a == b) return true;
                return a + 1 == b;
            };
            int fact(int n) {
                if (n <= 1) return 1;
                return n * fact(n - 1);
            };
            Pstruct t { Puint8 x; };
            "#,
            &Registry::standard(),
        )
        .unwrap()
    }

    fn run(src: &str, schema: &Schema, vars: &[(&str, Value)]) -> Result<Value, ErrorCode> {
        let expr = parse_expr(src).unwrap();
        let mut env = Env::new(schema);
        for (n, v) in vars {
            // Bind by leaking nothing: names must outlive env, so use the
            // schema-independent 'static trick via Box::leak in tests only.
            let name: &str = Box::leak((*n).to_string().into_boxed_str());
            env.push(name, Ev::Owned(v.clone()));
        }
        let expr: &'static Expr = Box::leak(Box::new(expr));
        eval(expr, &mut env).map(Ev::into_value)
    }

    #[test]
    fn arithmetic_and_comparison() {
        let s = schema();
        assert_eq!(run("1 + 2 * 3", &s, &[]), Ok(Value::Prim(Prim::Int(7))));
        assert_eq!(run("(10 - 4) / 3", &s, &[]), Ok(Value::Prim(Prim::Int(2))));
        assert_eq!(run("7 % 3", &s, &[]), Ok(Value::Prim(Prim::Int(1))));
        assert_eq!(run("100 <= 200 && 200 < 600", &s, &[]), Ok(Value::Prim(Prim::Bool(true))));
        assert_eq!(run("1 / 0", &s, &[]), Err(ErrorCode::EvalError));
        assert_eq!(run("2.5 + 1", &s, &[]), Ok(Value::Prim(Prim::Float(3.5))));
    }

    #[test]
    fn short_circuit_protects_rhs() {
        let s = schema();
        assert_eq!(run("false && (1 / 0 == 0)", &s, &[]), Ok(Value::Prim(Prim::Bool(false))));
        assert_eq!(run("true || (1 / 0 == 0)", &s, &[]), Ok(Value::Prim(Prim::Bool(true))));
    }

    #[test]
    fn enum_variants_and_equality() {
        let s = schema();
        let m = Value::Enum { variant: "LINK".into(), index: 2 };
        assert_eq!(run("m == LINK", &s, &[("m", m.clone())]), Ok(Value::Prim(Prim::Bool(true))));
        assert_eq!(run("m == GET", &s, &[("m", m)]), Ok(Value::Prim(Prim::Bool(false))));
    }

    #[test]
    fn char_and_string_comparison() {
        let s = schema();
        let c = Value::Prim(Prim::Char(b'-'));
        assert_eq!(run("c == '-'", &s, &[("c", c)]), Ok(Value::Prim(Prim::Bool(true))));
        let st = Value::Prim(Prim::String("abc".into()));
        assert_eq!(run("s == \"abc\"", &s, &[("s", st.clone())]), Ok(Value::Prim(Prim::Bool(true))));
        assert_eq!(run("s < \"abd\"", &s, &[("s", st)]), Ok(Value::Prim(Prim::Bool(true))));
    }

    #[test]
    fn function_calls_and_recursion() {
        let s = schema();
        assert_eq!(run("chk(1, 2)", &s, &[]), Ok(Value::Prim(Prim::Bool(true))));
        assert_eq!(run("chk(1, 5)", &s, &[]), Ok(Value::Prim(Prim::Bool(false))));
        assert_eq!(run("fact(5)", &s, &[]), Ok(Value::Prim(Prim::Int(120))));
        // Unbounded recursion hits the depth limit instead of overflowing.
        assert_eq!(run("fact(-1)", &s, &[]), Ok(Value::Prim(Prim::Int(1))));
    }

    #[test]
    fn forall_over_array() {
        let s = schema();
        let arr = Value::Array(vec![
            Value::Prim(Prim::Uint(1)),
            Value::Prim(Prim::Uint(2)),
            Value::Prim(Prim::Uint(5)),
        ]);
        let sorted = "Pforall (i Pin [0..length-2] : elts[i] <= elts[i+1])";
        let vars = [("elts", arr.clone()), ("length", Value::Prim(Prim::Uint(3)))];
        assert_eq!(run(sorted, &s, &vars), Ok(Value::Prim(Prim::Bool(true))));
        let unsorted = Value::Array(vec![Value::Prim(Prim::Uint(9)), Value::Prim(Prim::Uint(2))]);
        let vars = [("elts", unsorted), ("length", Value::Prim(Prim::Uint(2)))];
        assert_eq!(run(sorted, &s, &vars), Ok(Value::Prim(Prim::Bool(false))));
        // Empty range (single element) is vacuously true.
        let one = Value::Array(vec![Value::Prim(Prim::Uint(9))]);
        let vars = [("elts", one), ("length", Value::Prim(Prim::Uint(1)))];
        assert_eq!(run(sorted, &s, &vars), Ok(Value::Prim(Prim::Bool(true))));
    }

    #[test]
    fn field_projection_through_unions_and_opts() {
        let s = schema();
        let v = Value::Struct {
            fields: vec![(
                "ramp".into(),
                Value::Union {
                    branch: "genRamp".into(),
                    index: 1,
                    value: Box::new(Value::Prim(Prim::Uint(42))),
                },
            )],
        };
        assert_eq!(run("v.ramp.genRamp == 42", &s, &[("v", v)]), Ok(Value::Prim(Prim::Bool(true))));
        let o = Value::Opt(Some(Box::new(Value::Prim(Prim::Uint(7)))));
        assert_eq!(run("o == 7", &s, &[("o", o)]), Ok(Value::Prim(Prim::Bool(true))));
    }

    #[test]
    fn unbound_name_is_eval_error() {
        let s = schema();
        assert_eq!(run("nosuch + 1", &s, &[]), Err(ErrorCode::EvalError));
    }

    #[test]
    fn ternary() {
        let s = schema();
        assert_eq!(run("1 < 2 ? 10 : 20", &s, &[]), Ok(Value::Prim(Prim::Int(10))));
    }
}
