//! The interpreting parser: executes a checked [`Schema`] over bytes.
//!
//! This component plays the role of the paper's *generated* parsing
//! functions (§4): for every type there is an entry point, the result is
//! always a `(representation, parse descriptor)` pair, masks select which
//! constraints run, and errors never abort — syntax errors put the parser
//! into panic mode, which resynchronises at the record boundary.
//!
//! Entry points mirror the paper's multiple-granularity design:
//!
//! * [`PadsParser::parse_source`] — the whole source in one call;
//! * [`PadsParser::records`] — record-at-a-time iteration for sources too
//!   large to hold in memory;
//! * [`PadsParser::parse_named`] — any declared type at the cursor.

use pads_check::ir::{Schema, TypeDef, TypeId, TypeKind, TyUse};
use pads_runtime::io::{new_regex_cache, RegexCache};
use pads_runtime::pd::PdKind;
use pads_runtime::{
    BaseMask, Charset, Cursor, Endian, ErrorBudget, ErrorCode, Loc, Mask, MetricsCore,
    MetricsHandle, Name, ObsHandle, ParseDesc, ParseState, Pos, Prim, RecordDiscipline,
    RecoveryPolicy, Registry,
};
use pads_syntax::ast::{CaseLabel, Expr, Literal};

use crate::eval::{self, Env, Ev};
use crate::value::Value;

/// Cursor configuration for a parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParseOptions {
    /// Ambient charset.
    pub charset: Charset,
    /// Ambient byte order for binary base types.
    pub endian: Endian,
    /// Record discipline.
    pub discipline: RecordDiscipline,
    /// Error budget and degradation mode (the paper's `Pmax_errs` /
    /// `Perror_rep` knobs). The default is unlimited: every error is
    /// recorded in full detail and parsing never stops early.
    pub policy: RecoveryPolicy,
    /// Which execution engine runs the schema (see [`Engine`]).
    pub engine: Engine,
}

/// How a [`PadsParser`] executes its schema.
///
/// Both engines are proven byte-identical (values, descriptors, budgets,
/// observer streams) by the `vm_equiv` suite; the choice is purely a
/// speed/startup trade-off. See `docs/VM.md` for the selection contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Walk the checked IR directly — no warm-up cost, the default.
    #[default]
    Interp,
    /// Compile the schema to a cached [`crate::vm::VmProgram`] on first
    /// use and run the bytecode tier. Falls back to the interpreter for
    /// cursors whose charset differs from the compiled program's.
    Vm,
}

/// An interpreting parser for one schema.
///
/// # Examples
///
/// ```
/// use pads::{PadsParser, Value};
/// use pads_runtime::{BaseMask, Mask, Registry};
///
/// let registry = Registry::standard();
/// let schema = pads_check::compile(
///     "Precord Pstruct line_t { Puint32 n; ','; Pstring(:',':) tag; };",
///     &registry,
/// ).unwrap();
/// let parser = PadsParser::new(&schema, &registry);
/// let (value, pd) = parser.parse_source(b"17,west\n", &Mask::all(BaseMask::CheckAndSet));
/// assert!(pd.is_ok());
/// assert_eq!(value.at_path("n").and_then(Value::as_u64), Some(17));
/// ```
pub struct PadsParser<'s> {
    schema: &'s Schema,
    registry: &'s Registry,
    options: ParseOptions,
    obs: Option<ObsHandle>,
    metrics: Option<MetricsHandle>,
    /// One compiled-regex cache per parser: every cursor the parser builds
    /// shares it, so each `Pre` pattern in the schema compiles once — not
    /// once per record as the streaming front-end used to.
    regexes: RegexCache,
    /// Per-`TypeId` interned structure names (field/branch/variant/param),
    /// by declaration index. Carrying a name into a value or descriptor is
    /// a refcount bump, never a per-record `String` allocation — the same
    /// dense-id interning the metrics `ObsSchema` uses.
    names: Vec<TypeNames>,
    /// Lazily compiled VM program (only populated when
    /// [`ParseOptions::engine`] is [`Engine::Vm`]); shared through the
    /// process-wide program cache, so sibling parsers over the same
    /// schema reuse one compilation.
    vm: std::cell::OnceCell<std::sync::Arc<crate::vm::VmProgram>>,
}

/// Interned names for one type definition (see [`PadsParser::names`]).
struct TypeNames {
    /// Struct members, union branches, or enum variants by declaration
    /// index; literal struct members hold the empty name.
    items: Vec<Name>,
    /// Value-parameter names.
    params: Vec<Name>,
}

fn intern_names(schema: &Schema) -> Vec<TypeNames> {
    use pads_check::ir::MemberIr;
    schema
        .types
        .iter()
        .map(|def| {
            let items = match &def.kind {
                TypeKind::Struct { members } => members
                    .iter()
                    .map(|m| match m {
                        MemberIr::Field(f) => Name::shared(&f.name),
                        MemberIr::Lit(_) => Name::EMPTY,
                    })
                    .collect(),
                TypeKind::Union { branches, .. } => {
                    branches.iter().map(|b| Name::shared(&b.field.name)).collect()
                }
                TypeKind::Enum { variants } => {
                    variants.iter().map(|v| Name::shared(v)).collect()
                }
                TypeKind::Array { .. } | TypeKind::Typedef { .. } => Vec::new(),
            };
            let params = def.params.iter().map(|p| Name::shared(&p.name)).collect();
            TypeNames { items, params }
        })
        .collect()
}

impl<'s> PadsParser<'s> {
    /// Creates a parser with default options (ASCII, big-endian, newline
    /// records).
    pub fn new(schema: &'s Schema, registry: &'s Registry) -> PadsParser<'s> {
        PadsParser {
            schema,
            registry,
            options: ParseOptions::default(),
            obs: None,
            metrics: None,
            regexes: new_regex_cache(),
            names: intern_names(schema),
            vm: std::cell::OnceCell::new(),
        }
    }

    /// Sets cursor options (builder style).
    pub fn with_options(mut self, options: ParseOptions) -> PadsParser<'s> {
        self.options = options;
        // Options select the engine and the charset programs are encoded
        // for; drop any program compiled under the previous options.
        self.vm = std::cell::OnceCell::new();
        self
    }

    /// Attaches an observer; every cursor the parser builds (including
    /// the per-record cursors of the streaming front-end) carries it.
    pub fn with_observer(mut self, obs: ObsHandle) -> PadsParser<'s> {
        self.obs = Some(obs);
        self
    }

    /// Attaches a dense-id metrics core; every cursor the parser builds
    /// carries it. The interpreter's type ids *are* the core's node ids
    /// when the core was built over this schema's type names (see
    /// [`PadsParser::metrics_core`]), so the metrics hot path is a flat
    /// slab bump with no per-event string work.
    pub fn with_metrics(mut self, core: MetricsHandle) -> PadsParser<'s> {
        self.metrics = Some(core);
        self
    }

    /// A [`MetricsCore`] whose dense node-id table is this schema's type
    /// list, in `TypeId` order — the core to attach via
    /// [`with_metrics`](PadsParser::with_metrics) for id-trusted (fast
    /// path) aggregation.
    pub fn metrics_core(&self) -> MetricsCore {
        MetricsCore::with_names(self.schema.types.iter().map(|d| d.name.as_str()))
    }

    /// The schema this parser interprets.
    pub fn schema(&self) -> &'s Schema {
        self.schema
    }

    /// The parse options in effect.
    pub fn options(&self) -> ParseOptions {
        self.options
    }

    /// The base-type registry this parser resolves against.
    pub(crate) fn registry(&self) -> &'s Registry {
        self.registry
    }

    fn cursor<'d>(&self, data: &'d [u8]) -> Cursor<'d> {
        let cur = Cursor::new(data)
            .with_charset(self.options.charset)
            .with_endian(self.options.endian)
            .with_discipline(self.options.discipline)
            .with_policy(self.options.policy)
            .with_regex_cache(self.regexes.clone());
        let cur = match &self.obs {
            Some(obs) => cur.with_observer(obs.clone()),
            None => cur,
        };
        match &self.metrics {
            Some(core) => cur.with_metrics(core.clone()),
            None => cur,
        }
    }

    /// Parses the source type against the entire input.
    ///
    /// Never fails: all problems are recorded in the returned
    /// [`ParseDesc`]. Unconsumed input is flagged as
    /// [`ErrorCode::ExtraDataAtEof`].
    pub fn parse_source(&self, data: &[u8], mask: &Mask) -> (Value, ParseDesc) {
        let mut cur = self.cursor(data);
        let (value, mut pd) = self.parse_def(&mut cur, self.schema.source(), &[], mask);
        if cur.stopped() {
            let loc = Loc::at(cur.position());
            pd.add_root_error(ErrorCode::BudgetExhausted, loc);
            cur.observe_error("", ErrorCode::BudgetExhausted, Some(loc));
        } else if !cur.at_eof() {
            let loc = Loc::at(cur.position());
            pd.add_error(ErrorCode::ExtraDataAtEof, loc);
            cur.observe_error("", ErrorCode::ExtraDataAtEof, Some(loc));
        }
        (value, pd)
    }

    /// Parses the named type at the cursor position.
    ///
    /// When `name` is not declared in the schema (an API-misuse, not a data
    /// error) the result is a default value with a single
    /// [`ErrorCode::InternalError`] descriptor — never a panic. Use
    /// [`Schema::type_id`] to probe first.
    pub fn parse_named(
        &self,
        cur: &mut Cursor<'_>,
        name: &str,
        args: &[Prim],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let Some(id) = self.schema.type_id(name) else {
            return (
                Value::Prim(Prim::Unit),
                ParseDesc::error(ErrorCode::InternalError, Loc::at(cur.position())),
            );
        };
        self.parse_def(cur, id, args, mask)
    }

    /// Record-at-a-time iteration over `data` with the named record type —
    /// the multiple-entry-point pattern for very large sources.
    ///
    /// When `name` is not declared in the schema, the iterator yields one
    /// [`ErrorCode::InternalError`] item and ends — never a panic.
    pub fn records<'p, 'd>(
        &'p self,
        data: &'d [u8],
        name: &str,
        mask: &'p Mask,
    ) -> Records<'p, 's, 'd> {
        let (id, poison) = match self.schema.type_id(name) {
            Some(id) => (id, None),
            None => (self.schema.source(), Some(ErrorCode::InternalError)),
        };
        Records { parser: self, cur: self.cursor(data), id, mask, done: false, poison }
    }

    /// Like [`PadsParser::records`], but continuing from a committed
    /// [`ResumePoint`]: the cursor starts at `resume.offset` (which must be
    /// a record boundary — the byte offset a checkpoint journal committed),
    /// record indices continue from `resume.record`, and the error budget
    /// is restored to `resume.budget`. A completed run equals a killed run
    /// resumed from any checkpoint: same values, descriptors, and budget.
    pub fn records_resumed<'p, 'd>(
        &'p self,
        data: &'d [u8],
        name: &str,
        mask: &'p Mask,
        resume: pads_runtime::ResumePoint,
    ) -> Records<'p, 's, 'd> {
        let mut it = self.records(data, name, mask);
        it.cur = it.cur.clone().with_start(resume.offset, resume.record);
        it.cur.set_budget(resume.budget);
        it
    }

    /// Drains [`PadsParser::records`] into a columnar
    /// [`RecordBatch`](crate::batch::RecordBatch), returning the batch and
    /// the final error-budget tally. Row `i` of the batch reconstructs the
    /// exact `(Value, ParseDesc)` the iterator would have yielded.
    pub fn records_batched(
        &self,
        data: &[u8],
        name: &str,
        mask: &Mask,
    ) -> (crate::batch::RecordBatch, pads_runtime::ErrorBudget) {
        let mut batch = crate::batch::RecordBatch::new();
        let mut it = self.records(data, name, mask);
        for (value, pd) in it.by_ref() {
            batch.push(&value, &pd);
        }
        (batch, it.budget())
    }

    /// A cursor over `data` configured with this parser's options, for
    /// callers sequencing their own entry-point calls.
    pub fn open<'d>(&self, data: &'d [u8]) -> Cursor<'d> {
        self.cursor(data)
    }

    /// Parses a type by id at the cursor (crate-internal entry point for
    /// the streaming module).
    pub(crate) fn parse_named_id(
        &self,
        cur: &mut Cursor<'_>,
        id: TypeId,
        args: &[Prim],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        self.parse_def(cur, id, args, mask)
    }

    // ---- internals -------------------------------------------------------

    /// Parses the definition `id`, bracketing the work with observer
    /// type-enter/type-exit events. The observer test is a single
    /// `Option` discriminant check, so the unobserved path pays nothing.
    fn parse_def(
        &self,
        cur: &mut Cursor<'_>,
        id: TypeId,
        args: &[Prim],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        if self.options.engine == Engine::Vm {
            let prog = self.vm.get_or_init(|| {
                crate::vm::get_or_compile(self.schema, self.registry, self.options.charset)
            });
            // A caller-built cursor may carry a different charset than the
            // program was encoded for; byte-level literal matching would
            // diverge, so such parses stay on the interpreter.
            if prog.charset() == cur.charset() {
                return crate::vm::exec(self.schema, prog, cur, id, args, mask);
            }
        }
        if !cur.observing() {
            return self.parse_def_inner(cur, id, args, mask);
        }
        // TypeId doubles as the dense metrics node id (the core attached
        // by `with_metrics` is built over the same type list); the name
        // is borrowed for legacy observers — no per-parse allocation.
        let name = &self.schema.def(id).name;
        let start = cur.position();
        cur.observe_enter_id(id as u32, name);
        let (value, pd) = self.parse_def_inner(cur, id, args, mask);
        cur.observe_exit_id(id as u32, name, start, &pd);
        (value, pd)
    }

    fn parse_def_inner(
        &self,
        cur: &mut Cursor<'_>,
        id: TypeId,
        args: &[Prim],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let def = self.schema.def(id);

        // Error budget exhausted in skip mode: frame the record and skip it
        // wholesale instead of parsing it (graceful degradation, mirroring
        // the C runtime's `Pmax_errs` behaviour).
        if def.is_record && !cur.in_record() && cur.skip_records() && !cur.at_eof() {
            // The record-relative byte of a record's own start is 0; the
            // cursor's tracking still points at the previous record here
            // (and a resumed cursor has no previous record at all).
            let start = Pos { byte: 0, ..cur.position() };
            if cur.begin_record().is_ok() {
                let _ = cur.end_record();
            }
            let mut pd =
                ParseDesc::error(ErrorCode::BudgetExhausted, Loc::new(start, cur.position()));
            pd.state = ParseState::Panic;
            cur.note_skipped_record();
            cur.observe_record_close(&pd);
            return (self.default_def(id), pd);
        }

        let params: Vec<(Name, Value)> = self.names[id]
            .params
            .iter()
            .zip(args)
            .map(|(n, a)| (n.clone(), Value::Prim(a.clone())))
            .collect();

        // Record framing.
        let opened = def.is_record && !cur.in_record();
        let mut record_err = None;
        if opened {
            if let Err(code) = cur.begin_record() {
                if code == ErrorCode::UnexpectedEof {
                    let mut pd = ParseDesc::error(code, Loc::at(cur.position()));
                    pd.state = ParseState::Partial;
                    return (self.default_def(id), pd);
                }
                record_err = Some((code, Loc::at(cur.position())));
            }
        }

        let (value, mut pd) = self.parse_kind(cur, id, def, &params, mask);

        if let Some((code, loc)) = record_err {
            pd.add_error(code, loc);
        }

        if opened {
            let mut panic_skipped = 0u64;
            if has_syntax_error(&pd) {
                // Panic mode: skip to the record boundary and resume there.
                // The skipped span is recorded so descriptors account for
                // every byte of the record (consumed + skipped = length).
                let at = cur.position();
                let close = cur.end_record();
                if close.skipped > 0 {
                    pd.note_panic_skip(Loc::new(
                        at,
                        Pos {
                            offset: at.offset + close.skipped,
                            record: at.record,
                            byte: at.byte + close.skipped,
                        },
                    ));
                    panic_skipped = close.skipped as u64;
                }
            } else {
                if !cur.at_eor() {
                    pd.add_error(ErrorCode::ExtraDataBeforeEor, Loc::at(cur.position()));
                }
                let close = cur.end_record();
                panic_skipped = close.skipped as u64;
            }
            // Per-record error cap: keep the aggregate counts truthful but
            // drop the per-node detail once a record exceeds the cap.
            if let Some(cap) = cur.policy().max_record_errs {
                if pd.nerr > cap {
                    pd.truncate_detail();
                }
            }
            cur.note_record_errors(pd.nerr, panic_skipped);
            if cur.best_effort() {
                pd.truncate_detail();
            }
            cur.observe_record_close(&pd);
        }
        (value, pd)
    }

    fn parse_kind(
        &self,
        cur: &mut Cursor<'_>,
        id: TypeId,
        def: &'s TypeDef,
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        match &def.kind {
            TypeKind::Struct { members } => self.parse_struct(cur, id, def, members, params, mask),
            TypeKind::Union { switch, branches } => {
                self.parse_union(cur, id, def, switch, branches, params, mask)
            }
            TypeKind::Array { elem, sep, term, ended, size } => {
                self.parse_array(cur, def, elem, sep, term, ended, size, params, mask)
            }
            TypeKind::Enum { variants } => self.parse_enum(cur, id, variants),
            TypeKind::Typedef { base, var, pred } => {
                self.parse_typedef(cur, base, var, pred, params, mask)
            }
        }
    }

    fn env<'e>(&'e self, params: &'e [(Name, Value)], fields: &'e [(Name, Value)]) -> Env<'e>
    where
        's: 'e,
    {
        let mut env = Env::new(self.schema);
        for (n, v) in params {
            env.push(n, Ev::Ref(v));
        }
        for (n, v) in fields {
            env.push(n, Ev::Ref(v));
        }
        env
    }

    fn eval_args(
        &self,
        args: &'s [Expr],
        params: &[(Name, Value)],
        fields: &[(Name, Value)],
    ) -> Result<Vec<Prim>, ErrorCode> {
        // Fast path: literal arguments (`Pstring(:'|':)`, `Puint16_FW(:3:)`)
        // need no environment — the overwhelmingly common case.
        if let Some(prims) = args.iter().map(const_prim).collect::<Option<Vec<_>>>() {
            return Ok(prims);
        }
        let mut env = self.env(params, fields);
        args.iter().map(|a| eval::eval_prim(a, &mut env)).collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn parse_struct(
        &self,
        cur: &mut Cursor<'_>,
        id: TypeId,
        def: &'s TypeDef,
        members: &'s [pads_check::ir::MemberIr],
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        use pads_check::ir::MemberIr;
        let names = &self.names[id].items;
        let mut fields: Vec<(Name, Value)> = Vec::new();
        let mut pds: Vec<(Name, ParseDesc)> = Vec::new();
        let mut pd = ParseDesc::ok();
        let mut aborted = false;
        let mut member_iter = members.iter().enumerate();
        for (mi, m) in member_iter.by_ref() {
            match m {
                MemberIr::Lit(lit) => {
                    if let Err((code, loc)) = self.match_literal(cur, lit) {
                        pd.add_error(code, loc);
                        pd.state = ParseState::Partial;
                        aborted = true;
                        break;
                    }
                }
                MemberIr::Field(f) => {
                    let child_mask = mask.child(&f.name);
                    let start = cur.position();
                    let (value, mut child_pd) =
                        self.parse_field_ty(cur, &f.ty, params, &fields, &child_mask);
                    let syntax_fail = has_syntax_error(&child_pd);
                    fields.push((names[mi].clone(), value));
                    // Constraint, with the field itself in scope. The error
                    // lands on the *field* descriptor and is aggregated into
                    // the struct by `absorb` (never double-reported).
                    if !syntax_fail && child_mask.base().checks() {
                        if let Some(c) = &f.constraint {
                            let mut env = self.env(params, &fields);
                            match eval::eval_bool(c, &mut env) {
                                Ok(true) => {}
                                Ok(false) => {
                                    let loc = Loc::new(start, cur.position());
                                    child_pd.add_error(ErrorCode::ConstraintViolation, loc);
                                }
                                Err(code) => {
                                    let loc = Loc::new(start, cur.position());
                                    child_pd.add_error(code, loc);
                                }
                            }
                        }
                    }
                    pd.absorb(&child_pd);
                    // Struct descriptors are sparse: only fields that
                    // contain errors get a child entry (clean fields are
                    // implicitly ok). This keeps the per-record descriptor
                    // cost proportional to the number of problems.
                    if !child_pd.is_ok() {
                        pds.push((names[mi].clone(), child_pd));
                    }
                    if syntax_fail {
                        pd.state = ParseState::Partial;
                        aborted = true;
                        break;
                    }
                }
            }
        }
        if aborted {
            // Fill the remaining fields with defaults so the representation
            // has the declared shape (the paper's "Partial" state).
            for (mi, m) in member_iter {
                if let MemberIr::Field(f) = m {
                    fields.push((names[mi].clone(), self.default_tyuse(&f.ty)));
                }
            }
        }
        // Pwhere clause at struct level.
        if !aborted && mask.compound().checks() {
            if let Some(w) = &def.where_clause {
                let mut env = self.env(params, &fields);
                match eval::eval_bool(w, &mut env) {
                    Ok(true) => {}
                    Ok(false) => {
                        pd.add_error(ErrorCode::WhereViolation, Loc::at(cur.position()))
                    }
                    Err(code) => pd.add_error(code, Loc::at(cur.position())),
                }
            }
        }
        pd.kind = PdKind::Struct { fields: pds };
        (Value::Struct { fields }, pd)
    }

    /// Parses a field's type, evaluating its argument expressions in the
    /// current scope first.
    fn parse_field_ty(
        &self,
        cur: &mut Cursor<'_>,
        ty: &'s TyUse,
        params: &[(Name, Value)],
        fields: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        match ty {
            TyUse::Opt(inner) => {
                let cp = cur.checkpoint();
                let (value, pd) = self.parse_field_ty(cur, inner, params, fields, mask);
                if pd.is_ok() {
                    let mut opd = ParseDesc::ok();
                    opd.kind = PdKind::opt(pd);
                    (Value::Opt(Some(Box::new(value))), opd)
                } else {
                    cur.restore(cp);
                    let mut opd = ParseDesc::ok();
                    opd.kind = PdKind::Opt { inner: None };
                    (Value::Opt(None), opd)
                }
            }
            TyUse::Base { name, args } => {
                let prims = match self.eval_args(args, params, fields) {
                    Ok(p) => p,
                    Err(code) => {
                        return (
                            self.default_tyuse(ty),
                            ParseDesc::error(code, Loc::at(cur.position())),
                        )
                    }
                };
                self.parse_base(cur, name, &prims, mask)
            }
            TyUse::Named { id, args } => {
                let prims = match self.eval_args(args, params, fields) {
                    Ok(p) => p,
                    Err(code) => {
                        return (
                            self.default_tyuse(ty),
                            ParseDesc::error(code, Loc::at(cur.position())),
                        )
                    }
                };
                self.parse_def(cur, *id, &prims, mask)
            }
        }
    }

    fn parse_base(
        &self,
        cur: &mut Cursor<'_>,
        name: &str,
        args: &[Prim],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        // A checked schema only references known base types; a miss here is
        // an interpreter invariant violation — recorded, never a crash.
        let Some(bt) = self.registry.get(name) else {
            return (
                Value::Prim(Prim::Unit),
                ParseDesc::error(ErrorCode::InternalError, Loc::at(cur.position())),
            );
        };
        let start = cur.position();
        let cp = cur.checkpoint();
        match bt.parse(cur, args) {
            Ok(prim) => {
                let value = if mask.base().sets() {
                    Value::Prim(prim)
                } else {
                    Value::Prim(bt.default_value(args))
                };
                (value, ParseDesc::ok())
            }
            Err(code) => {
                cur.restore(cp);
                let loc = Loc::new(start, cur.position());
                (Value::Prim(bt.default_value(args)), ParseDesc::error(code, loc))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn parse_union(
        &self,
        cur: &mut Cursor<'_>,
        id: TypeId,
        def: &'s TypeDef,
        switch: &'s Option<Expr>,
        branches: &'s [pads_check::ir::BranchIr],
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let start = cur.position();
        if let Some(sel) = switch {
            return self.parse_switched(cur, id, sel, branches, params, mask);
        }
        let names = &self.names[id].items;
        // Ordered union: the first branch that parses without error wins.
        // Branch constraints take part in selection regardless of mask (they
        // are what distinguishes the alternatives), matching §3's
        // `auth_id_t` example.
        for (index, b) in branches.iter().enumerate() {
            let cp = cur.checkpoint();
            let branch_mask = mask.child(&b.field.name);
            let (value, bpd) =
                self.parse_field_ty(cur, &b.field.ty, params, &[], &branch_mask);
            if bpd.is_ok() {
                if let Some(c) = &b.field.constraint {
                    let bound = [(names[index].clone(), value.clone())];
                    let mut env = self.env(params, &bound);
                    match eval::eval_bool(c, &mut env) {
                        Ok(true) => {}
                        Ok(false) | Err(_) => {
                            cur.restore(cp);
                            continue;
                        }
                    }
                }
                let mut pd = ParseDesc::ok();
                pd.kind = PdKind::union(names[index].clone(), bpd);
                return (
                    Value::Union { branch: names[index].clone(), index, value: Box::new(value) },
                    pd,
                );
            }
            cur.restore(cp);
        }
        let _ = def;
        let mut pd = ParseDesc::error(ErrorCode::UnionNoBranch, Loc::at(start));
        pd.state = ParseState::Partial;
        let Some(first) = branches.first() else {
            // A checked schema never produces an empty union.
            pd.err_code = ErrorCode::InternalError;
            return (Value::Prim(Prim::Unit), pd);
        };
        pd.kind = PdKind::union_ok(names[0].clone());
        (
            Value::Union {
                branch: names[0].clone(),
                index: 0,
                value: Box::new(self.default_tyuse(&first.field.ty)),
            },
            pd,
        )
    }

    fn parse_switched(
        &self,
        cur: &mut Cursor<'_>,
        id: TypeId,
        sel: &'s Expr,
        branches: &'s [pads_check::ir::BranchIr],
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let start = cur.position();
        let names = &self.names[id].items;
        let Some(front) = branches.first() else {
            // A checked schema never produces an empty union.
            let mut pd = ParseDesc::error(ErrorCode::InternalError, Loc::at(start));
            pd.state = ParseState::Partial;
            return (Value::Prim(Prim::Unit), pd);
        };
        let sel_val = {
            let mut env = self.env(params, &[]);
            eval::eval(sel, &mut env).map(|e| e.into_value())
        };
        let sel_val = match sel_val {
            Ok(v) => v,
            Err(code) => {
                let mut pd = ParseDesc::error(code, Loc::at(start));
                pd.state = ParseState::Partial;
                pd.kind = PdKind::union_ok(names[0].clone());
                return (
                    Value::Union {
                        branch: names[0].clone(),
                        index: 0,
                        value: Box::new(self.default_tyuse(&front.field.ty)),
                    },
                    pd,
                );
            }
        };
        let mut chosen = None;
        let mut default = None;
        for (index, b) in branches.iter().enumerate() {
            match &b.case {
                Some(CaseLabel::Expr(e)) => {
                    let mut env = self.env(params, &[]);
                    if let Ok(case_val) = eval::eval(e, &mut env) {
                        let eq = match (sel_val.as_i64(), case_val.value().as_i64()) {
                            (Some(a), Some(b)) => a == b,
                            _ => &sel_val == case_val.value(),
                        };
                        if eq {
                            chosen = Some((index, b));
                            break;
                        }
                    }
                }
                Some(CaseLabel::Default) => default = Some((index, b)),
                None => {}
            }
        }
        let Some((index, b)) = chosen.or(default) else {
            let mut pd = ParseDesc::error(ErrorCode::SwitchNoMatch, Loc::at(start));
            pd.state = ParseState::Partial;
            pd.kind = PdKind::union_ok(names[0].clone());
            return (
                Value::Union {
                    branch: names[0].clone(),
                    index: 0,
                    value: Box::new(self.default_tyuse(&front.field.ty)),
                },
                pd,
            );
        };
        let child_mask = mask.child(&b.field.name);
        let (value, bpd) = self.parse_field_ty(cur, &b.field.ty, params, &[], &child_mask);
        let mut pd = ParseDesc::ok();
        pd.absorb(&bpd);
        // Branch constraint (always evaluated, as for ordered unions).
        if let Some(c) = &b.field.constraint {
            let bound = [(names[index].clone(), value.clone())];
            let mut env = self.env(params, &bound);
            match eval::eval_bool(c, &mut env) {
                Ok(true) => {}
                Ok(false) => pd.add_error(ErrorCode::ConstraintViolation, Loc::at(cur.position())),
                Err(code) => pd.add_error(code, Loc::at(cur.position())),
            }
        }
        pd.kind = PdKind::union(names[index].clone(), bpd);
        (Value::Union { branch: names[index].clone(), index, value: Box::new(value) }, pd)
    }

    #[allow(clippy::too_many_arguments)]
    fn parse_array(
        &self,
        cur: &mut Cursor<'_>,
        def: &'s TypeDef,
        elem: &'s TyUse,
        sep: &'s Option<Literal>,
        term: &'s Option<Literal>,
        ended: &'s Option<Expr>,
        size: &'s Option<Expr>,
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let mut elts: Vec<Value> = Vec::new();
        let mut elt_pds = pads_runtime::SparseElts::new();
        let mut pd = ParseDesc::ok();
        let mut neerr: u32 = 0;
        let mut first_error: Option<usize> = None;
        let elem_mask = mask.child(pads_runtime::mask::ELT);
        // Elements that are records perform their own panic recovery (skip
        // to the record boundary), so the array can continue past them; a
        // syntax error in a non-record element leaves the cursor
        // unsynchronised and stops the array.
        let elem_recovers =
            matches!(elem, TyUse::Named { id, .. } if self.schema.def(*id).is_record);

        let want_size = match size {
            Some(e) => {
                let mut env = self.env(params, &[]);
                match eval::eval_prim(e, &mut env).map(|p| p.as_u64()) {
                    Ok(Some(n)) => Some(n as usize),
                    _ => {
                        pd.add_error(ErrorCode::EvalError, Loc::at(cur.position()));
                        Some(0)
                    }
                }
            }
            None => None,
        };

        loop {
            // Completion checks before each element.
            if let Some(n) = want_size {
                if elts.len() >= n {
                    break;
                }
            }
            if want_size.is_none() && self.term_matches(cur, term) {
                self.consume_term(cur, term);
                break;
            }
            if want_size.is_none() && term.is_none() && self.at_natural_end(cur) {
                break;
            }
            // Separator between elements.
            if !elts.is_empty() {
                if let Some(s) = sep {
                    let cp = cur.checkpoint();
                    if let Err((_, loc)) = self.match_literal(cur, s) {
                        cur.restore(cp);
                        // Classified as the array-specific code (not the raw
                        // literal code) to match the generated parsers.
                        pd.add_error(ErrorCode::ArraySepMismatch, loc);
                        pd.state = ParseState::Partial;
                        break;
                    }
                    // A separator directly followed by the terminator means
                    // the separator actually belonged to the terminator
                    // context; treat as end (defensive for `sep == term`
                    // prefixes).
                }
            }
            let before = cur.offset();
            let (value, elt_pd) = self.parse_field_ty(cur, elem, params, &[], &elem_mask);
            let bad = !elt_pd.is_ok();
            let syntax_fail = has_syntax_error(&elt_pd);
            if bad {
                neerr += 1;
                if first_error.is_none() {
                    first_error = Some(elts.len());
                }
            }
            pd.absorb(&elt_pd);
            elts.push(value);
            elt_pds.push(elt_pd);
            if syntax_fail && !elem_recovers {
                pd.state = ParseState::Partial;
                break;
            }
            if cur.offset() == before && want_size.is_none() {
                // Zero-width element with no size bound: stop rather than
                // loop forever (e.g. `Pvoid[]`).
                pd.add_error(ErrorCode::ArrayTermMismatch, Loc::at(cur.position()));
                break;
            }
            // User-supplied termination predicate over the parsed prefix.
            if let Some(e) = ended {
                let arr = Value::Array(std::mem::take(&mut elts));
                let len = Value::Prim(Prim::Uint(arr.len().unwrap_or(0) as u64));
                let bound =
                    [(Name::from_static("elts"), arr), (Name::from_static("length"), len)];
                let mut env = self.env(params, &bound);
                let done = eval::eval_bool(e, &mut env).unwrap_or(false);
                if let Some((_, Value::Array(back))) = bound.into_iter().next() {
                    elts = back;
                }
                if done {
                    // A trailing terminator, if declared, is still consumed.
                    if self.term_matches(cur, term) {
                        self.consume_term(cur, term);
                    }
                    break;
                }
            }
        }

        if let Some(n) = want_size {
            if elts.len() != n {
                pd.add_error(ErrorCode::ArraySizeMismatch, Loc::at(cur.position()));
            }
        }

        // Pwhere over the completed sequence (mask-controlled: Figure 7
        // turns exactly this check off for Sirius timestamps).
        if mask.compound().checks() && pd.state == ParseState::Ok {
            if let Some(w) = &def.where_clause {
                let arr = Value::Array(std::mem::take(&mut elts));
                let len = Value::Prim(Prim::Uint(arr.len().unwrap_or(0) as u64));
                let bound =
                    [(Name::from_static("elts"), arr), (Name::from_static("length"), len)];
                let mut env = self.env(params, &bound);
                match eval::eval_bool(w, &mut env) {
                    Ok(true) => {}
                    Ok(false) => {
                        let code = if matches!(w, Expr::Forall { .. }) {
                            ErrorCode::ForallViolation
                        } else {
                            ErrorCode::WhereViolation
                        };
                        pd.add_error(code, Loc::at(cur.position()));
                    }
                    Err(code) => pd.add_error(code, Loc::at(cur.position())),
                }
                if let Some((_, Value::Array(back))) = bound.into_iter().next() {
                    elts = back;
                }
            }
        }

        pd.kind = PdKind::Array { elts: elt_pds.finish(), neerr, first_error };
        (Value::Array(elts), pd)
    }

    /// Whether the array terminator matches at the cursor (lookahead only).
    fn term_matches(&self, cur: &mut Cursor<'_>, term: &Option<Literal>) -> bool {
        match term {
            None => false,
            Some(Literal::Eor) => cur.at_eor(),
            Some(Literal::Eof) => cur.at_eof(),
            Some(lit) => {
                let cp = cur.checkpoint();
                let ok = self.match_literal(cur, lit).is_ok();
                cur.restore(cp);
                ok
            }
        }
    }

    fn consume_term(&self, cur: &mut Cursor<'_>, term: &Option<Literal>) {
        match term {
            Some(Literal::Eor) | Some(Literal::Eof) | None => {}
            Some(lit) => {
                let _ = self.match_literal(cur, lit);
            }
        }
    }

    /// Natural end for unbounded arrays: end of record when inside one,
    /// end of source otherwise.
    fn at_natural_end(&self, cur: &Cursor<'_>) -> bool {
        if cur.in_record() {
            cur.at_eor()
        } else {
            cur.at_eof()
        }
    }

    fn parse_enum(
        &self,
        cur: &mut Cursor<'_>,
        id: TypeId,
        variants: &[String],
    ) -> (Value, ParseDesc) {
        let charset = cur.charset();
        let start = cur.position();
        // Longest-match over the variants, so `GETX` does not stop at `GET`
        // when both are declared.
        let mut best: Option<(usize, usize)> = None; // (len, index)
        for (i, v) in variants.iter().enumerate() {
            let raw: Vec<u8> = v.bytes().map(|b| charset.encode(b)).collect();
            if cur.rest().starts_with(&raw) && best.is_none_or(|(len, _)| raw.len() > len) {
                best = Some((raw.len(), i));
            }
        }
        let names = &self.names[id].items;
        match best {
            Some((len, index)) => {
                cur.advance(len);
                (Value::Enum { variant: names[index].clone(), index }, ParseDesc::ok())
            }
            None => {
                let pd = ParseDesc::error(ErrorCode::EnumNoMatch, Loc::at(start));
                let variant = names.first().cloned().unwrap_or_default();
                (Value::Enum { variant, index: 0 }, pd)
            }
        }
    }

    fn parse_typedef(
        &self,
        cur: &mut Cursor<'_>,
        base: &'s TyUse,
        var: &'s Option<String>,
        pred: &'s Option<Expr>,
        params: &[(Name, Value)],
        mask: &Mask,
    ) -> (Value, ParseDesc) {
        let start = cur.position();
        let (value, bpd) = self.parse_field_ty(cur, base, params, &[], mask);
        let mut pd = ParseDesc::ok();
        pd.absorb(&bpd);
        if mask.base().checks() && pd.is_ok() {
            if let (Some(v), Some(p)) = (var, pred) {
                let bound = [(Name::shared(v), value.clone())];
                let mut env = self.env(params, &bound);
                match eval::eval_bool(p, &mut env) {
                    Ok(true) => {}
                    Ok(false) => {
                        pd.add_error(ErrorCode::ConstraintViolation, Loc::new(start, cur.position()))
                    }
                    Err(code) => pd.add_error(code, Loc::new(start, cur.position())),
                }
            }
        }
        pd.kind = PdKind::typedef(bpd);
        (value, pd)
    }

    fn match_literal(
        &self,
        cur: &mut Cursor<'_>,
        lit: &Literal,
    ) -> Result<(), (ErrorCode, Loc)> {
        let start = cur.position();
        let charset = cur.charset();
        match lit {
            Literal::Char(c) => {
                let raw = charset.encode(*c);
                if cur.peek() == Some(raw) {
                    cur.advance(1);
                    Ok(())
                } else {
                    Err((ErrorCode::LitMismatch, Loc::at(start)))
                }
            }
            Literal::Str(s) => {
                let raw: Vec<u8> = s.bytes().map(|b| charset.encode(b)).collect();
                if cur.match_bytes(&raw) {
                    Ok(())
                } else {
                    Err((ErrorCode::LitMismatch, Loc::at(start)))
                }
            }
            Literal::Regex(pat) => {
                let re = cur.regex(pat).map_err(|c| (c, Loc::at(start)))?;
                if cur.match_regex(&re).is_some() {
                    Ok(())
                } else {
                    Err((ErrorCode::RegexMismatch, Loc::at(start)))
                }
            }
            Literal::Eor => {
                if cur.at_eor() {
                    Ok(())
                } else {
                    Err((ErrorCode::LitMismatch, Loc::at(start)))
                }
            }
            Literal::Eof => {
                if cur.at_eof() {
                    Ok(())
                } else {
                    Err((ErrorCode::LitMismatch, Loc::at(start)))
                }
            }
        }
    }

    // ---- defaults ---------------------------------------------------------

    /// A default value with the shape of the named type (used for masked-out
    /// and error-recovered representations).
    pub fn default_def(&self, id: TypeId) -> Value {
        let def = self.schema.def(id);
        let names = &self.names[id].items;
        match &def.kind {
            TypeKind::Struct { members } => Value::Struct {
                fields: members
                    .iter()
                    .enumerate()
                    .filter_map(|(mi, m)| match m {
                        pads_check::ir::MemberIr::Field(f) => {
                            Some((names[mi].clone(), self.default_tyuse(&f.ty)))
                        }
                        pads_check::ir::MemberIr::Lit(_) => None,
                    })
                    .collect(),
            },
            TypeKind::Union { branches, .. } => match branches.first() {
                Some(b) => Value::Union {
                    branch: names[0].clone(),
                    index: 0,
                    value: Box::new(self.default_tyuse(&b.field.ty)),
                },
                None => Value::Prim(Prim::Unit),
            },
            TypeKind::Array { .. } => Value::Array(Vec::new()),
            TypeKind::Enum { .. } => {
                Value::Enum { variant: names.first().cloned().unwrap_or_default(), index: 0 }
            }
            TypeKind::Typedef { base, .. } => self.default_tyuse(base),
        }
    }

    fn default_tyuse(&self, ty: &TyUse) -> Value {
        match ty {
            TyUse::Opt(_) => Value::Opt(None),
            TyUse::Base { name, .. } => Value::Prim(
                self.registry.get(name).map_or(Prim::Unit, |bt| bt.default_value(&[])),
            ),
            TyUse::Named { id, .. } => self.default_def(*id),
        }
    }
}

/// Evaluates literal expressions without an environment.
fn const_prim(e: &Expr) -> Option<Prim> {
    match e {
        Expr::Int(v) => Some(Prim::Int(*v)),
        Expr::Char(c) => Some(Prim::Char(*c)),
        Expr::Str(s) => Some(Prim::String(s.clone())),
        Expr::Bool(b) => Some(Prim::Bool(*b)),
        Expr::Float(v) => Some(Prim::Float(*v)),
        _ => None,
    }
}

/// Whether a descriptor records any *syntactic* problem (as opposed to
/// constraint violations, which leave the physical parse intact).
pub fn has_syntax_error(pd: &ParseDesc) -> bool {
    if pd.state != ParseState::Ok {
        return true;
    }
    if pd.nerr == 0 {
        return false;
    }
    pd.errors().iter().any(|(_, code, _)| !code.is_semantic())
}

/// Iterator over records parsed one at a time (see
/// [`PadsParser::records`]).
pub struct Records<'p, 's, 'd> {
    parser: &'p PadsParser<'s>,
    cur: Cursor<'d>,
    id: TypeId,
    mask: &'p Mask,
    done: bool,
    poison: Option<ErrorCode>,
}

impl<'p, 's, 'd> Records<'p, 's, 'd> {
    /// The cursor's current absolute offset (for progress reporting).
    pub fn offset(&self) -> usize {
        self.cur.offset()
    }

    /// The running error-budget tally of the underlying cursor.
    pub fn budget(&self) -> ErrorBudget {
        self.cur.budget()
    }

    /// Replaces the budget tally, carrying a source-level tally into this
    /// iterator (the sharded engine's sequential-replay path).
    pub fn set_budget(&mut self, budget: ErrorBudget) {
        self.cur.set_budget(budget);
    }
}

impl<'p, 's, 'd> Iterator for Records<'p, 's, 'd> {
    type Item = (Value, ParseDesc);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(code) = self.poison.take() {
            self.done = true;
            let mut pd = ParseDesc::error(code, Loc::at(self.cur.position()));
            pd.state = ParseState::Partial;
            return Some((Value::Prim(Prim::Unit), pd));
        }
        if self.cur.at_eof() {
            return None;
        }
        let before = self.cur.offset();
        let item = self.parser.parse_def(&mut self.cur, self.id, &[], self.mask);
        if self.cur.offset() == before {
            // No progress: the record type consumed nothing (e.g. repeated
            // begin-record failure). Stop instead of looping forever.
            self.done = true;
        }
        Some(item)
    }
}

impl<'p, 's, 'd> std::iter::FusedIterator for Records<'p, 's, 'd> {}

/// Convenience: `BaseMask::CheckAndSet` everywhere.
pub fn check_and_set() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

/// Iterator over the elements of a top-level `Parray`, one element per
/// step — the paper's third entry-point granularity ("reading the entire
/// array at once or reading it one element at a time", §4), for arrays too
/// large to materialise.
pub struct Elements<'p, 's, 'd> {
    parser: &'p PadsParser<'s>,
    cur: Cursor<'d>,
    /// `None` only when the iterator was poisoned at construction.
    elem: Option<&'s TyUse>,
    sep: &'s Option<Literal>,
    term: &'s Option<Literal>,
    size: Option<usize>,
    elem_mask: Mask,
    elem_recovers: bool,
    produced: usize,
    done: bool,
    poison: Option<ErrorCode>,
}

impl<'p, 's, 'd> Elements<'p, 's, 'd> {
    /// The cursor's current absolute offset (for progress reporting).
    pub fn offset(&self) -> usize {
        self.cur.offset()
    }
}

impl<'p, 's, 'd> Iterator for Elements<'p, 's, 'd> {
    type Item = (Value, ParseDesc);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(code) = self.poison.take() {
            self.done = true;
            let mut pd = ParseDesc::error(code, Loc::at(self.cur.position()));
            pd.state = ParseState::Partial;
            return Some((Value::Prim(Prim::Unit), pd));
        }
        let Some(elem) = self.elem else {
            self.done = true;
            return None;
        };
        // Completion checks, mirroring the bulk array loop.
        if let Some(n) = self.size {
            if self.produced >= n {
                self.done = true;
                return None;
            }
        } else {
            if self.parser.term_matches(&mut self.cur, self.term) {
                self.parser.consume_term(&mut self.cur, self.term);
                self.done = true;
                return None;
            }
            if self.term.is_none() && self.parser.at_natural_end(&self.cur) {
                self.done = true;
                return None;
            }
        }
        if self.produced > 0 {
            if let Some(s) = self.sep {
                let cp = self.cur.checkpoint();
                if let Err((_, loc)) = self.parser.match_literal(&mut self.cur, s) {
                    self.cur.restore(cp);
                    self.done = true;
                    let mut pd = ParseDesc::error(ErrorCode::ArraySepMismatch, loc);
                    pd.state = ParseState::Partial;
                    return Some((self.parser.default_tyuse(elem), pd));
                }
            }
        }
        let before = self.cur.offset();
        let (value, pd) =
            self.parser.parse_field_ty(&mut self.cur, elem, &[], &[], &self.elem_mask);
        self.produced += 1;
        if (has_syntax_error(&pd) && !self.elem_recovers) || self.cur.offset() == before {
            self.done = true;
        }
        Some((value, pd))
    }
}

impl<'p, 's, 'd> std::iter::FusedIterator for Elements<'p, 's, 'd> {}

impl<'s> PadsParser<'s> {
    /// Element-at-a-time iteration over a `Parray` type at the start of
    /// `data`. `Pwhere` clauses and size-mismatch checks are the caller's
    /// business in this mode (they need the whole sequence).
    ///
    /// When `name` is not declared, is not a `Parray`, or has a size
    /// expression that is not a constant (element streaming has no
    /// parameter scope), the iterator yields one
    /// [`ErrorCode::InternalError`] item and ends — never a panic.
    pub fn elements<'p, 'd>(
        &'p self,
        data: &'d [u8],
        name: &str,
        mask: &Mask,
    ) -> Elements<'p, 's, 'd> {
        let Some(id) = self.schema().type_id(name) else {
            return self.poisoned_elements(data, mask);
        };
        let def = self.schema().def(id);
        let TypeKind::Array { elem, sep, term, size, .. } = &def.kind else {
            return self.poisoned_elements(data, mask);
        };
        let size = match size {
            Some(e) => {
                let mut env = Env::new(self.schema());
                match eval::eval_prim(e, &mut env).ok().and_then(|p| p.as_u64()) {
                    Some(n) => Some(n as usize),
                    None => return self.poisoned_elements(data, mask),
                }
            }
            None => None,
        };
        let elem_recovers =
            matches!(elem, TyUse::Named { id, .. } if self.schema().def(*id).is_record);
        Elements {
            parser: self,
            cur: self.open(data),
            elem: Some(elem),
            sep,
            term,
            size,
            elem_mask: mask.child(pads_runtime::mask::ELT),
            elem_recovers,
            produced: 0,
            done: false,
            poison: None,
        }
    }

    /// An [`Elements`] iterator that yields a single
    /// [`ErrorCode::InternalError`] item (API misuse recorded as data).
    fn poisoned_elements<'p, 'd>(&'p self, data: &'d [u8], mask: &Mask) -> Elements<'p, 's, 'd> {
        Elements {
            parser: self,
            cur: self.open(data),
            elem: None,
            sep: &None,
            term: &None,
            size: None,
            elem_mask: mask.child(pads_runtime::mask::ELT),
            elem_recovers: false,
            produced: 0,
            done: false,
            poison: Some(ErrorCode::InternalError),
        }
    }
}
