//! Columnar record batches: struct-of-arrays output for both engines.
//!
//! A [`RecordBatch`] holds many parsed records in Arrow-style columns —
//! one value vector per leaf, offset arrays for nested arrays and string
//! heaps, dense child columns for unions and optionals, and per-row
//! validity/error bitmaps — instead of one [`Value`] tree per record.
//! Appending a row therefore amortises to zero allocations once the
//! column vectors have grown to their high-water mark, and the close path
//! (accumulators, `--format` writers, metrics summaries) walks contiguous
//! vectors instead of chasing per-record heap trees.
//!
//! Producers:
//!
//! * the interpreter appends owned trees via [`RecordBatch::push`];
//! * generated parsers and the parallel sharded engine lower through the
//!   [`ValueArena`](pads_runtime::ValueArena) and append zero-copy via
//!   [`RecordBatch::push_arena`] (borrowed string leaves are copied once,
//!   into the column heap — never through an intermediate `String`);
//! * [`PadsParser::records_batched`](crate::parse::PadsParser) and
//!   [`PadsParser::records_par_batched`](crate::parse::PadsParser) fold
//!   whole runs for the CLI.
//!
//! Equivalence is the design invariant: [`RecordBatch::row`] reconstructs
//! a [`Value`] byte-identical to what the per-record path produced, and
//! [`RecordBatch::pd`] returns the record's parse descriptor (stored
//! sparsely — clean rows cost one bitmap bit). Anything that consumed
//! `(Value, ParseDesc)` pairs can consume a batch without observable
//! change; the columnar layout is pure representation.
//!
//! Schema drift inside a batch (a column seeing a differently-shaped
//! value, e.g. under aggressive error recovery) does not lose data: the
//! affected column *promotes* to a row-major spill vector. Promotion is
//! rare and per-column; the rest of the batch stays columnar.

use pads_runtime::date::PDate;
use pads_runtime::{AShape, AValRef, Name, NameTable, ParseDesc, Prim};

use crate::value::Value;

/// Packed row bitmap (validity / error flags).
#[derive(Debug, Default, Clone)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: usize,
}

impl Bitmap {
    fn push(&mut self, b: bool) {
        let word = self.len / 64;
        if word == self.bits.len() {
            self.bits.push(0);
        }
        if b {
            self.bits[word] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Bit `i`.
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits strictly before `i`.
    pub fn rank(&self, i: usize) -> usize {
        let full = i / 64;
        let mut n: usize =
            self.bits[..full.min(self.bits.len())].iter().map(|w| w.count_ones() as usize).sum();
        if full < self.bits.len() && !i.is_multiple_of(64) {
            n += (self.bits[full] & ((1u64 << (i % 64)) - 1)).count_ones() as usize;
        }
        n
    }

    fn clear(&mut self) {
        self.bits.clear();
        self.len = 0;
    }
}

/// Borrowed view of one primitive leaf — the common currency of the
/// owned and arena producers, so neither allocates to append.
enum PrimView<'x> {
    Unit,
    Bool(bool),
    Char(u8),
    Int(i64),
    Uint(u64),
    Float(f64),
    Str(&'x str),
    Bytes(&'x [u8]),
    Ip([u8; 4]),
    Date(PDate),
}

impl<'x> PrimView<'x> {
    fn of(p: &'x Prim) -> PrimView<'x> {
        match p {
            Prim::Unit => PrimView::Unit,
            Prim::Bool(b) => PrimView::Bool(*b),
            Prim::Char(c) => PrimView::Char(*c),
            Prim::Int(i) => PrimView::Int(*i),
            Prim::Uint(u) => PrimView::Uint(*u),
            Prim::Float(f) => PrimView::Float(*f),
            Prim::String(s) => PrimView::Str(s),
            Prim::Bytes(b) => PrimView::Bytes(b),
            Prim::Ip(ip) => PrimView::Ip(*ip),
            Prim::Date(d) => PrimView::Date(*d),
        }
    }

    /// Fixed-size arena scalars (everything but str/bytes, which the
    /// caller has already tried zero-copy).
    fn of_arena_scalar(r: &AValRef<'_, '_>) -> Option<PrimView<'static>> {
        Some(match r.prim()? {
            Prim::Unit => PrimView::Unit,
            Prim::Bool(b) => PrimView::Bool(b),
            Prim::Char(c) => PrimView::Char(c),
            Prim::Int(i) => PrimView::Int(i),
            Prim::Uint(u) => PrimView::Uint(u),
            Prim::Float(f) => PrimView::Float(f),
            Prim::Ip(ip) => PrimView::Ip(ip),
            Prim::Date(d) => PrimView::Date(d),
            // Str/Bytes handled zero-copy by the caller.
            Prim::String(_) | Prim::Bytes(_) => return None,
        })
    }

    fn to_prim(&self) -> Prim {
        match self {
            PrimView::Unit => Prim::Unit,
            PrimView::Bool(b) => Prim::Bool(*b),
            PrimView::Char(c) => Prim::Char(*c),
            PrimView::Int(i) => Prim::Int(*i),
            PrimView::Uint(u) => Prim::Uint(*u),
            PrimView::Float(f) => Prim::Float(*f),
            PrimView::Str(s) => Prim::String((*s).to_owned()),
            PrimView::Bytes(b) => Prim::Bytes(b.to_vec()),
            PrimView::Ip(ip) => Prim::Ip(*ip),
            PrimView::Date(d) => Prim::Date(*d),
        }
    }
}

/// One leaf column: a typed value vector. String/bytes columns are a
/// shared heap plus end-offset array (Arrow variable-length layout).
#[derive(Debug)]
enum PrimCol {
    Unit(usize),
    Bool(Vec<bool>),
    Char(Vec<u8>),
    Int(Vec<i64>),
    Uint(Vec<u64>),
    Float(Vec<f64>),
    Str { offsets: Vec<u32>, heap: String },
    Bytes { offsets: Vec<u32>, heap: Vec<u8> },
    Ip(Vec<[u8; 4]>),
    Date(Vec<PDate>),
    /// Kind-drift spill: row-major primitives.
    Mixed(Vec<Prim>),
}

impl PrimCol {
    fn new(v: &PrimView<'_>) -> PrimCol {
        match v {
            PrimView::Unit => PrimCol::Unit(0),
            PrimView::Bool(_) => PrimCol::Bool(Vec::new()),
            PrimView::Char(_) => PrimCol::Char(Vec::new()),
            PrimView::Int(_) => PrimCol::Int(Vec::new()),
            PrimView::Uint(_) => PrimCol::Uint(Vec::new()),
            PrimView::Float(_) => PrimCol::Float(Vec::new()),
            PrimView::Str(_) => PrimCol::Str { offsets: Vec::new(), heap: String::new() },
            PrimView::Bytes(_) => PrimCol::Bytes { offsets: Vec::new(), heap: Vec::new() },
            PrimView::Ip(_) => PrimCol::Ip(Vec::new()),
            PrimView::Date(_) => PrimCol::Date(Vec::new()),
        }
    }

    fn slots(&self) -> usize {
        match self {
            PrimCol::Unit(n) => *n,
            PrimCol::Bool(v) => v.len(),
            PrimCol::Char(v) => v.len(),
            PrimCol::Int(v) => v.len(),
            PrimCol::Uint(v) => v.len(),
            PrimCol::Float(v) => v.len(),
            PrimCol::Str { offsets, .. } => offsets.len(),
            PrimCol::Bytes { offsets, .. } => offsets.len(),
            PrimCol::Ip(v) => v.len(),
            PrimCol::Date(v) => v.len(),
            PrimCol::Mixed(v) => v.len(),
        }
    }

    fn push(&mut self, v: &PrimView<'_>) {
        match (&mut *self, v) {
            (PrimCol::Unit(n), PrimView::Unit) => *n += 1,
            (PrimCol::Bool(c), PrimView::Bool(b)) => c.push(*b),
            (PrimCol::Char(c), PrimView::Char(b)) => c.push(*b),
            (PrimCol::Int(c), PrimView::Int(b)) => c.push(*b),
            (PrimCol::Uint(c), PrimView::Uint(b)) => c.push(*b),
            (PrimCol::Float(c), PrimView::Float(b)) => c.push(*b),
            (PrimCol::Str { offsets, heap }, PrimView::Str(s)) => {
                heap.push_str(s);
                offsets.push(heap.len() as u32);
            }
            (PrimCol::Bytes { offsets, heap }, PrimView::Bytes(b)) => {
                heap.extend_from_slice(b);
                offsets.push(heap.len() as u32);
            }
            (PrimCol::Ip(c), PrimView::Ip(b)) => c.push(*b),
            (PrimCol::Date(c), PrimView::Date(b)) => c.push(*b),
            (PrimCol::Mixed(c), v) => c.push(v.to_prim()),
            // Kind drift: spill the whole column to row-major and retry.
            (col, v) => {
                let spilled: Vec<Prim> = (0..col.slots()).map(|i| col.slot_prim(i)).collect();
                *col = PrimCol::Mixed(spilled);
                col.push(v);
            }
        }
    }

    fn slot_prim(&self, i: usize) -> Prim {
        match self {
            PrimCol::Unit(_) => Prim::Unit,
            PrimCol::Bool(v) => Prim::Bool(v[i]),
            PrimCol::Char(v) => Prim::Char(v[i]),
            PrimCol::Int(v) => Prim::Int(v[i]),
            PrimCol::Uint(v) => Prim::Uint(v[i]),
            PrimCol::Float(v) => Prim::Float(v[i]),
            PrimCol::Str { offsets, heap } => {
                let start = if i == 0 { 0 } else { offsets[i - 1] as usize };
                Prim::String(heap[start..offsets[i] as usize].to_owned())
            }
            PrimCol::Bytes { offsets, heap } => {
                let start = if i == 0 { 0 } else { offsets[i - 1] as usize };
                Prim::Bytes(heap[start..offsets[i] as usize].to_vec())
            }
            PrimCol::Ip(v) => Prim::Ip(v[i]),
            PrimCol::Date(v) => Prim::Date(v[i]),
            PrimCol::Mixed(v) => v[i].clone(),
        }
    }

    fn clear(&mut self) {
        match self {
            PrimCol::Unit(n) => *n = 0,
            PrimCol::Bool(v) => v.clear(),
            PrimCol::Char(v) => v.clear(),
            PrimCol::Int(v) => v.clear(),
            PrimCol::Uint(v) => v.clear(),
            PrimCol::Float(v) => v.clear(),
            PrimCol::Str { offsets, heap } => {
                offsets.clear();
                heap.clear();
            }
            PrimCol::Bytes { offsets, heap } => {
                offsets.clear();
                heap.clear();
            }
            PrimCol::Ip(v) => v.clear(),
            PrimCol::Date(v) => v.clear(),
            PrimCol::Mixed(v) => v.clear(),
        }
    }
}

/// Borrowed view of one record — the owned tree and the arena value
/// present the same face to the column tree, so the batch has exactly
/// one append path.
#[derive(Clone, Copy)]
enum VV<'x, 'a, 'd> {
    Owned(&'x Value),
    Arena(AValRef<'a, 'd>, &'x NameTable),
}

impl<'x, 'a: 'x, 'd> VV<'x, 'a, 'd> {
    fn shape(&self) -> AShape {
        match self {
            VV::Owned(v) => match v {
                Value::Prim(_) => AShape::Prim,
                Value::Struct { fields } => AShape::Struct(fields.len()),
                Value::Union { .. } => AShape::Union,
                Value::Array(e) => AShape::Array(e.len()),
                Value::Enum { .. } => AShape::Enum,
                Value::Opt(o) => AShape::Opt(o.is_some()),
            },
            VV::Arena(r, _) => r.shape(),
        }
    }

    fn prim(&self) -> Option<PrimView<'x>> {
        match self {
            VV::Owned(Value::Prim(p)) => Some(PrimView::of(p)),
            VV::Owned(_) => None,
            VV::Arena(r, _) => {
                if r.shape() != AShape::Prim {
                    return None;
                }
                if let Some(s) = r.as_str() {
                    return Some(PrimView::Str(s));
                }
                if let Some(b) = r.as_bytes() {
                    return Some(PrimView::Bytes(b));
                }
                PrimView::of_arena_scalar(r)
            }
        }
    }

    /// Struct field by position, allocation-free — the per-row append
    /// path must not build an intermediate field list.
    fn field_at(&self, i: usize) -> Option<(&'x Name, VV<'x, 'a, 'd>)> {
        match self {
            VV::Owned(Value::Struct { fields }) => {
                fields.get(i).map(|(n, v)| (n, VV::Owned(v)))
            }
            VV::Arena(r, names) => {
                r.field_at(i).map(|(id, v)| (names.name(id), VV::Arena(v, names)))
            }
            _ => None,
        }
    }

    /// Array element by index, allocation-free.
    fn element_at(&self, i: usize) -> Option<VV<'x, 'a, 'd>> {
        match self {
            VV::Owned(Value::Array(elts)) => elts.get(i).map(VV::Owned),
            VV::Arena(r, names) => r.index(i).map(|v| VV::Arena(v, names)),
            _ => None,
        }
    }

    fn fields(&self) -> Vec<(&'x Name, VV<'x, 'a, 'd>)> {
        match self {
            VV::Owned(Value::Struct { fields }) => {
                fields.iter().map(|(n, v)| (n, VV::Owned(v))).collect()
            }
            VV::Arena(r, names) => {
                r.fields().map(|(id, v)| (names.name(id), VV::Arena(v, names))).collect()
            }
            _ => Vec::new(),
        }
    }

    fn branch(&self) -> Option<(&'x Name, usize, VV<'x, 'a, 'd>)> {
        match self {
            VV::Owned(Value::Union { branch, index, value }) => {
                Some((branch, *index, VV::Owned(value)))
            }
            VV::Arena(r, names) => {
                let (id, index, v) = r.branch()?;
                Some((names.name(id), index, VV::Arena(v, names)))
            }
            _ => None,
        }
    }

    fn variant(&self) -> Option<(&'x Name, usize)> {
        match self {
            VV::Owned(Value::Enum { variant, index }) => Some((variant, *index)),
            VV::Arena(r, names) => {
                let (id, index) = r.variant()?;
                Some((names.name(id), index))
            }
            _ => None,
        }
    }

    fn opt_inner(&self) -> Option<VV<'x, 'a, 'd>> {
        match self {
            VV::Owned(Value::Opt(Some(v))) => Some(VV::Owned(v)),
            VV::Arena(r, names) => r.opt_inner().map(|v| VV::Arena(v, names)),
            _ => None,
        }
    }

    fn to_owned_value(self) -> Value {
        match self {
            VV::Owned(v) => v.clone(),
            VV::Arena(r, names) => crate::arena::to_value(r, names),
        }
    }
}

/// A column in the nested (Arrow-style) column tree. Slot counts differ
/// from the batch row count below arrays (expansion), unions, and
/// optionals (dense children hold only taken/present slots).
#[derive(Debug)]
enum Col {
    /// No slot appended yet; adopts the shape of the first value.
    Empty,
    Prim(PrimCol),
    Struct { fields: Vec<(Name, Col)>, slots: usize },
    Union { tags: Vec<u32>, child_rows: Vec<u32>, names: Vec<Name>, children: Vec<Col> },
    Array { offsets: Vec<u32>, elem: Box<Col> },
    Enum { indices: Vec<u32>, names: Vec<Name> },
    Opt { validity: Bitmap, inner: Box<Col> },
    /// Shape-drift spill: row-major values.
    Mixed(Vec<Value>),
}

impl Col {
    fn new_for(v: &VV<'_, '_, '_>) -> Col {
        match v.shape() {
            AShape::Prim => match v.prim() {
                Some(p) => Col::Prim(PrimCol::new(&p)),
                None => Col::Mixed(Vec::new()),
            },
            AShape::Struct(_) => Col::Struct {
                fields: v.fields().iter().map(|(n, _)| ((*n).clone(), Col::Empty)).collect(),
                slots: 0,
            },
            AShape::Union => Col::Union {
                tags: Vec::new(),
                child_rows: Vec::new(),
                names: Vec::new(),
                children: Vec::new(),
            },
            AShape::Array(_) => Col::Array { offsets: Vec::new(), elem: Box::new(Col::Empty) },
            AShape::Enum => Col::Enum { indices: Vec::new(), names: Vec::new() },
            AShape::Opt(_) => {
                Col::Opt { validity: Bitmap::default(), inner: Box::new(Col::Empty) }
            }
        }
    }

    fn slots(&self) -> usize {
        match self {
            Col::Empty => 0,
            Col::Prim(p) => p.slots(),
            Col::Struct { slots, .. } => *slots,
            Col::Union { tags, .. } => tags.len(),
            Col::Array { offsets, .. } => offsets.len(),
            Col::Enum { indices, .. } => indices.len(),
            Col::Opt { validity, .. } => validity.len(),
            Col::Mixed(v) => v.len(),
        }
    }

    fn push(&mut self, v: &VV<'_, '_, '_>) {
        if matches!(self, Col::Empty) {
            *self = Col::new_for(v);
        }
        let shape = v.shape();
        match (&mut *self, shape) {
            (Col::Prim(col), AShape::Prim) => match v.prim() {
                Some(p) => col.push(&p),
                None => self.spill_and_push(v),
            },
            (Col::Struct { fields, slots }, AShape::Struct(n)) if fields.len() == n => {
                let matches = (0..n)
                    .all(|j| v.field_at(j).is_some_and(|(vname, _)| fields[j].0 == *vname));
                if matches {
                    for (j, (_, col)) in fields.iter_mut().enumerate() {
                        if let Some((_, val)) = v.field_at(j) {
                            col.push(&val);
                        }
                    }
                    *slots += 1;
                } else {
                    self.spill_and_push(v);
                }
            }
            (Col::Union { tags, child_rows, names, children }, AShape::Union) => {
                // The shape check above guarantees the branch exists.
                let Some((name, index, inner)) = v.branch() else {
                    return self.spill_and_push(v);
                };
                while children.len() <= index {
                    children.push(Col::Empty);
                    names.push(Name::EMPTY);
                }
                if names[index].is_empty() {
                    names[index] = name.clone();
                }
                tags.push(index as u32);
                child_rows.push(children[index].slots() as u32);
                children[index].push(&inner);
            }
            (Col::Array { offsets, elem }, AShape::Array(n)) => {
                for j in 0..n {
                    if let Some(e) = v.element_at(j) {
                        elem.push(&e);
                    }
                }
                offsets.push(elem.slots() as u32);
            }
            (Col::Enum { indices, names }, AShape::Enum) => {
                let Some((name, index)) = v.variant() else {
                    return self.spill_and_push(v);
                };
                while names.len() <= index {
                    names.push(Name::EMPTY);
                }
                if names[index].is_empty() {
                    names[index] = name.clone();
                }
                indices.push(index as u32);
            }
            (Col::Opt { validity, inner }, AShape::Opt(present)) => {
                validity.push(present);
                if present {
                    if let Some(iv) = v.opt_inner() {
                        inner.push(&iv);
                    }
                }
            }
            (Col::Mixed(rows), _) => rows.push(v.to_owned_value()),
            _ => self.spill_and_push(v),
        }
    }

    /// Shape drift: spill every existing slot to row-major and append.
    fn spill_and_push(&mut self, v: &VV<'_, '_, '_>) {
        let spilled: Vec<Value> = (0..self.slots()).map(|i| self.slot_value(i)).collect();
        *self = Col::Mixed(spilled);
        self.push(v);
    }

    /// Reconstructs slot `i` as an owned value — byte-identical to what
    /// the per-record path produced.
    fn slot_value(&self, i: usize) -> Value {
        match self {
            Col::Empty => Value::Prim(Prim::Unit),
            Col::Prim(p) => Value::Prim(p.slot_prim(i)),
            Col::Struct { fields, .. } => Value::Struct {
                fields: fields.iter().map(|(n, c)| (n.clone(), c.slot_value(i))).collect(),
            },
            Col::Union { tags, child_rows, names, children } => {
                let tag = tags[i] as usize;
                Value::Union {
                    branch: names[tag].clone(),
                    index: tag,
                    value: Box::new(children[tag].slot_value(child_rows[i] as usize)),
                }
            }
            Col::Array { offsets, elem } => {
                let start = if i == 0 { 0 } else { offsets[i - 1] as usize };
                Value::Array((start..offsets[i] as usize).map(|j| elem.slot_value(j)).collect())
            }
            Col::Enum { indices, names } => {
                let index = indices[i] as usize;
                Value::Enum { variant: names[index].clone(), index }
            }
            Col::Opt { validity, inner } => {
                if validity.get(i) {
                    Value::Opt(Some(Box::new(inner.slot_value(validity.rank(i)))))
                } else {
                    Value::Opt(None)
                }
            }
            Col::Mixed(rows) => rows[i].clone(),
        }
    }

    fn clear(&mut self) {
        match self {
            Col::Empty => {}
            Col::Prim(p) => p.clear(),
            Col::Struct { fields, slots } => {
                for (_, c) in fields {
                    c.clear();
                }
                *slots = 0;
            }
            Col::Union { tags, child_rows, children, .. } => {
                tags.clear();
                child_rows.clear();
                for c in children {
                    c.clear();
                }
            }
            Col::Array { offsets, elem } => {
                offsets.clear();
                elem.clear();
            }
            Col::Enum { indices, .. } => indices.clear(),
            Col::Opt { validity, inner } => {
                validity.clear();
                inner.clear();
            }
            Col::Mixed(rows) => rows.clear(),
        }
    }

    fn resolve(&self, mut segs: std::str::Split<'_, char>) -> Option<&Col> {
        let Some(seg) = segs.next() else { return Some(self) };
        match self {
            Col::Struct { fields, .. } => {
                fields.iter().find(|(n, _)| n == seg).and_then(|(_, c)| c.resolve(segs))
            }
            Col::Union { names, children, .. } => {
                names.iter().position(|n| n == seg).and_then(|i| children[i].resolve(segs))
            }
            Col::Array { elem, .. } if seg == "[]" => elem.resolve(segs),
            Col::Opt { inner, .. } if seg == "?" => inner.resolve(segs),
            _ => None,
        }
    }

    fn leaf_paths(&self, prefix: &str, out: &mut Vec<(String, usize)>) {
        match self {
            Col::Struct { fields, .. } => {
                for (n, c) in fields {
                    let p = if prefix.is_empty() {
                        n.as_str().to_owned()
                    } else {
                        format!("{prefix}.{n}")
                    };
                    c.leaf_paths(&p, out);
                }
            }
            Col::Union { names, children, .. } => {
                for (n, c) in names.iter().zip(children) {
                    c.leaf_paths(&format!("{prefix}.{n}"), out);
                }
            }
            Col::Array { elem, .. } => elem.leaf_paths(&format!("{prefix}.[]"), out),
            Col::Opt { inner, .. } => inner.leaf_paths(&format!("{prefix}.?"), out),
            Col::Empty => {}
            _ => out.push((prefix.to_owned(), self.slots())),
        }
    }
}

/// Typed view of one leaf column, for columnar consumers (stats,
/// metrics summaries) that want the vector without row reconstruction.
#[derive(Debug)]
pub enum ColumnView<'b> {
    /// Unsigned-integer vector.
    U64(&'b [u64]),
    /// Signed-integer vector.
    I64(&'b [i64]),
    /// Float vector.
    F64(&'b [f64]),
    /// String column: shared heap plus end offsets (slot `i` is
    /// `heap[offsets[i-1]..offsets[i]]`, with slot 0 starting at 0).
    Str {
        /// End offset of each slot in `heap`.
        offsets: &'b [u32],
        /// Concatenated slot texts.
        heap: &'b str,
    },
    /// Enum/union tag vector (dense indices).
    Tags(&'b [u32]),
    /// Anything else (bools, chars, dates, spilled columns …).
    Other,
}

impl<'b> ColumnView<'b> {
    /// The strings of a [`ColumnView::Str`] column, in slot order.
    pub fn strs(&self) -> Vec<&'b str> {
        match self {
            ColumnView::Str { offsets, heap } => {
                let mut start = 0usize;
                offsets
                    .iter()
                    .map(|&end| {
                        let s = &heap[start..end as usize];
                        start = end as usize;
                        s
                    })
                    .collect()
            }
            _ => Vec::new(),
        }
    }
}

/// Typed borrowed view of one primitive leaf column — every leaf kind,
/// unlike the flat [`ColumnView`] which collapses the rare ones to
/// `Other`. Variable-length columns are the shared heap plus end
/// offsets: slot `i` is `heap[offsets[i-1]..offsets[i]]`, with slot 0
/// starting at 0.
#[derive(Debug, Clone, Copy)]
pub enum PrimColView<'b> {
    /// Unit column: just a slot count.
    Unit(usize),
    /// Bool vector.
    Bool(&'b [bool]),
    /// Char vector (raw bytes).
    Char(&'b [u8]),
    /// Signed-integer vector.
    Int(&'b [i64]),
    /// Unsigned-integer vector.
    Uint(&'b [u64]),
    /// String column heap + end offsets.
    Str {
        /// End offset of each slot in `heap`.
        offsets: &'b [u32],
        /// Concatenated slot texts.
        heap: &'b str,
    },
    /// Bytes column heap + end offsets.
    Bytes {
        /// End offset of each slot in `heap`.
        offsets: &'b [u32],
        /// Concatenated slot bytes.
        heap: &'b [u8],
    },
    /// Float vector.
    Float(&'b [f64]),
    /// IPv4 address vector.
    Ip(&'b [[u8; 4]]),
    /// Date vector.
    Date(&'b [PDate]),
    /// Kind-drift spill: row-major primitives.
    Mixed(&'b [Prim]),
}

/// Borrowed typed view of the whole nested column tree, produced by
/// [`RecordBatch::column_tree`]. Columnar consumers (the accumulator's
/// column-at-a-time fold) need more than flat leaves: union tags next
/// to their dense children, array offsets, optional validity. Dense
/// child columns (union branches, optional contents) hold only the
/// taken/present slots, **in row order** — folding a child column
/// front to back visits exactly the rows that selected it, in the same
/// order a row-wise walk would.
#[derive(Debug)]
pub enum ColTree<'b> {
    /// No slot appended yet (an empty batch, a never-taken branch).
    Empty,
    /// A primitive leaf column.
    Prim(PrimColView<'b>),
    /// Struct: every field column has `slots` slots.
    Struct {
        /// Field name and column, in schema order.
        fields: Vec<(&'b Name, ColTree<'b>)>,
        /// Slot count (shared by all fields).
        slots: usize,
    },
    /// Union: per-slot branch index plus dense per-branch children.
    Union {
        /// Branch index taken by each slot.
        tags: &'b [u32],
        /// Slot of each row's value within its branch child.
        child_rows: &'b [u32],
        /// Branch names, indexed by tag.
        names: &'b [Name],
        /// Dense per-branch columns (row order within each branch).
        children: Vec<ColTree<'b>>,
    },
    /// Array: element column plus end offsets (slot `i` spans elements
    /// `offsets[i-1]..offsets[i]`, with slot 0 starting at 0).
    Array {
        /// End offset of each slot in the element column.
        offsets: &'b [u32],
        /// The flattened element column.
        elem: Box<ColTree<'b>>,
    },
    /// Enum: per-slot variant index.
    Enum {
        /// Variant index of each slot.
        indices: &'b [u32],
        /// Variant names, indexed by `indices` entries.
        names: &'b [Name],
    },
    /// Optional: per-slot presence plus the dense present column.
    Opt {
        /// Presence bit per slot.
        validity: &'b Bitmap,
        /// Dense column of the present slots, in row order.
        inner: Box<ColTree<'b>>,
    },
    /// Shape-drift spill: row-major values.
    Mixed(&'b [Value]),
}

impl Col {
    fn tree(&self) -> ColTree<'_> {
        match self {
            Col::Empty => ColTree::Empty,
            Col::Prim(p) => ColTree::Prim(match p {
                PrimCol::Unit(n) => PrimColView::Unit(*n),
                PrimCol::Bool(v) => PrimColView::Bool(v),
                PrimCol::Char(v) => PrimColView::Char(v),
                PrimCol::Int(v) => PrimColView::Int(v),
                PrimCol::Uint(v) => PrimColView::Uint(v),
                PrimCol::Float(v) => PrimColView::Float(v),
                PrimCol::Str { offsets, heap } => PrimColView::Str { offsets, heap },
                PrimCol::Bytes { offsets, heap } => PrimColView::Bytes { offsets, heap },
                PrimCol::Ip(v) => PrimColView::Ip(v),
                PrimCol::Date(v) => PrimColView::Date(v),
                PrimCol::Mixed(v) => PrimColView::Mixed(v),
            }),
            Col::Struct { fields, slots } => ColTree::Struct {
                fields: fields.iter().map(|(n, c)| (n, c.tree())).collect(),
                slots: *slots,
            },
            Col::Union { tags, child_rows, names, children } => ColTree::Union {
                tags,
                child_rows,
                names,
                children: children.iter().map(Col::tree).collect(),
            },
            Col::Array { offsets, elem } => {
                ColTree::Array { offsets, elem: Box::new(elem.tree()) }
            }
            Col::Enum { indices, names } => ColTree::Enum { indices, names },
            Col::Opt { validity, inner } => {
                ColTree::Opt { validity, inner: Box::new(inner.tree()) }
            }
            Col::Mixed(rows) => ColTree::Mixed(rows),
        }
    }
}

/// A batch of parsed records in columnar (struct-of-arrays) layout.
/// See the module docs.
#[derive(Debug)]
pub struct RecordBatch {
    root: Col,
    rows: usize,
    /// Rows whose parse descriptor is not clean.
    errors: Bitmap,
    /// The non-clean descriptors, aligned with the set bits of `errors`.
    dirty: Vec<ParseDesc>,
}

impl Default for RecordBatch {
    fn default() -> RecordBatch {
        RecordBatch::new()
    }
}

impl RecordBatch {
    /// An empty batch; columns adopt the shape of the first record.
    pub fn new() -> RecordBatch {
        RecordBatch { root: Col::Empty, rows: 0, errors: Bitmap::default(), dirty: Vec::new() }
    }

    /// Appends one owned record (the interpreter producer).
    pub fn push(&mut self, v: &Value, pd: &ParseDesc) {
        self.root.push(&VV::Owned(v));
        self.push_pd(pd);
    }

    /// Appends one arena record (the generated/parallel producer).
    /// Borrowed string leaves are copied once into the column heap —
    /// no intermediate `String` is ever built.
    pub fn push_arena(&mut self, r: AValRef<'_, '_>, names: &NameTable, pd: &ParseDesc) {
        self.root.push(&VV::Arena(r, names));
        self.push_pd(pd);
    }

    fn push_pd(&mut self, pd: &ParseDesc) {
        let clean = pd.is_clean();
        self.errors.push(!clean);
        if !clean {
            self.dirty.push(pd.clone());
        }
        self.rows += 1;
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of rows whose descriptor is not clean.
    pub fn error_rows(&self) -> usize {
        self.dirty.len()
    }

    /// Reconstructs row `i` as an owned [`Value`] — byte-identical to
    /// what the per-record path produced for the same input.
    pub fn row(&self, i: usize) -> Value {
        self.root.slot_value(i)
    }

    /// Row `i`'s parse descriptor ([`ParseDesc::CLEAN`] for clean rows).
    pub fn pd(&self, i: usize) -> ParseDesc {
        if self.errors.get(i) {
            self.dirty[self.errors.rank(i)].clone()
        } else {
            ParseDesc::CLEAN
        }
    }

    /// All rows with their descriptors, in record order.
    pub fn rows(&self) -> impl Iterator<Item = (Value, ParseDesc)> + '_ {
        (0..self.rows).map(|i| (self.row(i), self.pd(i)))
    }

    /// Forgets all rows, retaining every column's capacity — the O(1)
    /// between-batches reset.
    pub fn clear(&mut self) {
        self.root.clear();
        self.rows = 0;
        self.errors.clear();
        self.dirty.clear();
    }

    /// Leaf column by dotted path. Struct fields by name, union branches
    /// by branch name, array elements as `[]`, optional contents as `?` —
    /// e.g. `"events.[].tstamp"` or `"ramp.genRamp"`.
    pub fn column(&self, path: &str) -> Option<ColumnView<'_>> {
        let col = if path.is_empty() {
            Some(&self.root)
        } else {
            self.root.resolve(path.split('.'))
        }?;
        Some(match col {
            Col::Prim(PrimCol::Uint(v)) => ColumnView::U64(v),
            Col::Prim(PrimCol::Int(v)) => ColumnView::I64(v),
            Col::Prim(PrimCol::Float(v)) => ColumnView::F64(v),
            Col::Prim(PrimCol::Str { offsets, heap }) => ColumnView::Str { offsets, heap },
            Col::Enum { indices, .. } => ColumnView::Tags(indices),
            Col::Union { tags, .. } => ColumnView::Tags(tags),
            _ => ColumnView::Other,
        })
    }

    /// Borrowed typed view of the whole nested column tree — see
    /// [`ColTree`]. The view is read-only and borrows the batch; use it
    /// for column-at-a-time folds that need structure (union tags,
    /// array offsets, optional validity) beyond what [`Self::column`]
    /// exposes.
    pub fn column_tree(&self) -> ColTree<'_> {
        self.root.tree()
    }

    /// Every leaf column as `(path, slot_count)`, in schema order.
    pub fn leaf_columns(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        self.root.leaf_paths("", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::push_value;
    use pads_runtime::{ErrorCode, ParseState, ValueArena};

    fn rec(n: u64, s: &str, tags: &[u64]) -> Value {
        Value::Struct {
            fields: vec![
                ("n".into(), Value::Prim(Prim::Uint(n))),
                ("s".into(), Value::Prim(Prim::String(s.into()))),
                (
                    "events".into(),
                    Value::Array(
                        tags.iter()
                            .map(|t| Value::Struct {
                                fields: vec![("tstamp".into(), Value::Prim(Prim::Uint(*t)))],
                            })
                            .collect(),
                    ),
                ),
                (
                    "maybe".into(),
                    if n % 2 == 0 {
                        Value::Opt(Some(Box::new(Value::Prim(Prim::Uint(n * 10)))))
                    } else {
                        Value::Opt(None)
                    },
                ),
                (
                    "ramp".into(),
                    if n % 3 == 0 {
                        Value::Union {
                            branch: "genRamp".into(),
                            index: 1,
                            value: Box::new(Value::Prim(Prim::Uint(n))),
                        }
                    } else {
                        Value::Union {
                            branch: "ramp".into(),
                            index: 0,
                            value: Box::new(Value::Prim(Prim::Int(-(n as i64)))),
                        }
                    },
                ),
            ],
        }
    }

    fn dirty_pd() -> ParseDesc {
        let mut pd = ParseDesc::CLEAN;
        pd.nerr = 1;
        pd.state = ParseState::Partial;
        pd.err_code = ErrorCode::UnexpectedEof;
        pd
    }

    #[test]
    fn rows_round_trip_byte_identical() {
        let mut batch = RecordBatch::new();
        let recs: Vec<Value> =
            (0..20).map(|i| rec(i, &format!("msg{i}"), &[i, i + 1, i + 2])).collect();
        for (i, r) in recs.iter().enumerate() {
            let pd = if i == 7 { dirty_pd() } else { ParseDesc::CLEAN };
            batch.push(r, &pd);
        }
        assert_eq!(batch.len(), 20);
        assert_eq!(batch.error_rows(), 1);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(&batch.row(i), r, "row {i}");
        }
        assert!(batch.pd(6).is_clean());
        assert_eq!(batch.pd(7), dirty_pd());
        assert!(batch.pd(8).is_clean());
    }

    #[test]
    fn arena_and_owned_producers_agree() {
        let mut owned_batch = RecordBatch::new();
        let mut arena_batch = RecordBatch::new();
        let mut arena = ValueArena::new();
        let mut names = NameTable::new();
        for i in 0..10 {
            let r = rec(i, "x", &[i]);
            owned_batch.push(&r, &ParseDesc::CLEAN);
            let h = push_value(&mut arena, &r, &mut names);
            arena_batch.push_arena(arena.get(h), &names, &ParseDesc::CLEAN);
        }
        for i in 0..10 {
            assert_eq!(owned_batch.row(i), arena_batch.row(i), "row {i}");
        }
    }

    #[test]
    fn columns_are_contiguous_vectors() {
        let mut batch = RecordBatch::new();
        for i in 0..5 {
            batch.push(&rec(i, &format!("m{i}"), &[100 + i, 200 + i]), &ParseDesc::CLEAN);
        }
        let Some(ColumnView::U64(ns)) = batch.column("n") else {
            panic!("n should be a u64 column")
        };
        assert_eq!(ns, &[0, 1, 2, 3, 4]);
        let Some(ColumnView::U64(ts)) = batch.column("events.[].tstamp") else {
            panic!("tstamp should be a u64 column")
        };
        assert_eq!(ts.len(), 10); // 2 per record, expanded
        assert_eq!(ts[0], 100);
        let Some(sv) = batch.column("s") else { panic!("s missing") };
        assert_eq!(sv.strs(), vec!["m0", "m1", "m2", "m3", "m4"]);
        let Some(ColumnView::Tags(tags)) = batch.column("ramp") else {
            panic!("ramp should expose tags")
        };
        assert_eq!(tags, &[1, 0, 0, 1, 0]); // n%3==0 takes branch 1
        // Dense union child: only the rows that took the branch.
        let Some(ColumnView::U64(gen)) = batch.column("ramp.genRamp") else {
            panic!("genRamp child should be dense u64")
        };
        assert_eq!(gen, &[0, 3]);
        // Dense optional child.
        let Some(ColumnView::U64(some)) = batch.column("maybe.?") else {
            panic!("maybe.? should be dense u64")
        };
        assert_eq!(some, &[0, 20, 40]);
    }

    #[test]
    fn clear_retains_shape_and_reuses_capacity() {
        let mut batch = RecordBatch::new();
        for i in 0..50 {
            batch.push(&rec(i, "abc", &[i]), &ParseDesc::CLEAN);
        }
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.error_rows(), 0);
        for i in 0..3 {
            batch.push(&rec(i, "abc", &[i]), &ParseDesc::CLEAN);
        }
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.row(2), rec(2, "abc", &[2]));
    }

    #[test]
    fn shape_drift_spills_without_losing_rows() {
        let mut batch = RecordBatch::new();
        batch.push(&Value::Prim(Prim::Uint(1)), &ParseDesc::CLEAN);
        batch.push(&Value::Prim(Prim::String("two".into())), &ParseDesc::CLEAN);
        batch.push(
            &Value::Struct { fields: vec![("x".into(), Value::Prim(Prim::Unit))] },
            &ParseDesc::CLEAN,
        );
        assert_eq!(batch.row(0), Value::Prim(Prim::Uint(1)));
        assert_eq!(batch.row(1), Value::Prim(Prim::String("two".into())));
        assert_eq!(
            batch.row(2),
            Value::Struct { fields: vec![("x".into(), Value::Prim(Prim::Unit))] }
        );
    }

    #[test]
    fn leaf_columns_enumerate_schema_order() {
        let mut batch = RecordBatch::new();
        batch.push(&rec(0, "a", &[1, 2]), &ParseDesc::CLEAN);
        let cols = batch.leaf_columns();
        let paths: Vec<&str> = cols.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["n", "s", "events.[].tstamp", "maybe.?", "ramp.genRamp"]);
    }
}
