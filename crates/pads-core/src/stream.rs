//! Streaming record parsing from readers.
//!
//! §1 of the paper: "Such volumes mean it must be possible to process the
//! data without loading it all into memory at once" (300 M calls/day,
//! netflow at a gigabit per second). [`StreamRecords`] reads one record's
//! bytes at a time from any [`BufRead`] — a file, socket, or pipe — and
//! parses it with the record type, so memory use is bounded by the largest
//! single record.
//!
//! Framing follows the parser's record discipline: newline-delimited,
//! fixed-width, or length-prefixed.

use std::io::BufRead;

use pads_runtime::{Endian, ErrorBudget, ErrorCode, Loc, ParseDesc, ParseState, Pos, RecordDiscipline};

use crate::parse::PadsParser;
use crate::value::Value;
use pads_runtime::{Mask, Prim};

/// Iterator of `(Value, ParseDesc)` records read incrementally from a
/// reader. I/O errors surface as parse descriptors with
/// [`ErrorCode::IoError`] and end the stream. The parser's
/// [`RecoveryPolicy`](pads_runtime::RecoveryPolicy) is enforced across the
/// whole stream: the error budget carries over from record to record.
pub struct StreamRecords<'p, 's, R> {
    parser: &'p PadsParser<'s>,
    reader: R,
    type_id: pads_check::ir::TypeId,
    mask: &'p Mask,
    buf: Vec<u8>,
    record_index: usize,
    done: bool,
    poison: Option<ErrorCode>,
    budget: ErrorBudget,
}

impl<'s> PadsParser<'s> {
    /// Streams records of the named type from `reader`, one at a time,
    /// using this parser's record discipline for framing.
    ///
    /// When `name` is not declared in the schema, or the parser's
    /// discipline is [`RecordDiscipline::None`] (whole-source framing
    /// cannot stream), the iterator yields one
    /// [`ErrorCode::InternalError`] item and ends — never a panic.
    pub fn stream_records<'p, R: BufRead>(
        &'p self,
        reader: R,
        name: &str,
        mask: &'p Mask,
    ) -> StreamRecords<'p, 's, R> {
        let mut poison = None;
        if matches!(self.options().discipline, RecordDiscipline::None) {
            poison = Some(ErrorCode::InternalError);
        }
        let type_id = match self.schema().type_id(name) {
            Some(id) => id,
            None => {
                poison = Some(ErrorCode::InternalError);
                self.schema().source()
            }
        };
        StreamRecords {
            parser: self,
            reader,
            type_id,
            mask,
            buf: Vec::with_capacity(256),
            record_index: 0,
            done: false,
            poison,
            budget: ErrorBudget::new(),
        }
    }
}

impl<'p, 's, R: BufRead> StreamRecords<'p, 's, R> {
    /// Reads the next record's raw bytes into `self.buf` (including the
    /// framing the cursor expects). Returns `Ok(false)` at end of input.
    fn fill_record(&mut self) -> Result<bool, std::io::Error> {
        self.buf.clear();
        match self.parser.options().discipline {
            RecordDiscipline::Newline => {
                let n = self.reader.read_until(b'\n', &mut self.buf)?;
                Ok(n > 0)
            }
            RecordDiscipline::FixedWidth(w) => {
                self.buf.resize(w, 0);
                let mut got = 0;
                while got < w {
                    let n = self.reader.read(&mut self.buf[got..])?;
                    if n == 0 {
                        break;
                    }
                    got += n;
                }
                self.buf.truncate(got);
                Ok(got > 0)
            }
            RecordDiscipline::LengthPrefixed { header_bytes, endian } => {
                let mut hdr = [0u8; 8];
                let hdr = &mut hdr[..header_bytes.min(8)];
                let mut got = 0;
                while got < hdr.len() {
                    let n = self.reader.read(&mut hdr[got..])?;
                    if n == 0 {
                        break;
                    }
                    got += n;
                }
                if got == 0 {
                    return Ok(false);
                }
                self.buf.extend_from_slice(&hdr[..got]);
                if got < hdr.len() {
                    return Ok(true); // malformed header; let the parser flag it
                }
                let mut len: usize = 0;
                match endian {
                    Endian::Big => {
                        for &b in hdr.iter() {
                            len = len << 8 | b as usize;
                        }
                    }
                    Endian::Little => {
                        for &b in hdr.iter().rev() {
                            len = len << 8 | b as usize;
                        }
                    }
                }
                let start = self.buf.len();
                self.buf.resize(start + len, 0);
                let mut got = 0;
                while got < len {
                    let n = self.reader.read(&mut self.buf[start + got..])?;
                    if n == 0 {
                        break;
                    }
                    got += n;
                }
                self.buf.truncate(start + got);
                Ok(true)
            }
            // Rejected (poisoned) in `stream_records`; treat as end of
            // input defensively rather than crash.
            RecordDiscipline::None => Ok(false),
        }
    }
}

impl<'p, 's, R: BufRead> Iterator for StreamRecords<'p, 's, R> {
    type Item = (Value, ParseDesc);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(code) = self.poison.take() {
            self.done = true;
            let mut pd = ParseDesc::error(
                code,
                Loc::at(Pos { offset: 0, record: self.record_index, byte: 0 }),
            );
            pd.state = ParseState::Partial;
            return Some((Value::Prim(Prim::Unit), pd));
        }
        if self.budget.stopped() {
            self.done = true;
            return None;
        }
        match self.fill_record() {
            Ok(false) => {
                self.done = true;
                None
            }
            Err(_) => {
                self.done = true;
                let mut pd = ParseDesc::error(
                    ErrorCode::IoError,
                    Loc::at(Pos { offset: 0, record: self.record_index, byte: 0 }),
                );
                pd.state = ParseState::Partial;
                Some((self.parser.default_def(self.type_id), pd))
            }
            Ok(true) => {
                // Each record parses against its own cursor over the frame
                // buffer, but the error budget is one per stream: copy it
                // in, parse, copy the updated budget back out.
                let mut cur = self.parser.open(&self.buf);
                cur.set_budget(self.budget);
                let (value, pd) =
                    self.parser.parse_named_id(&mut cur, self.type_id, &[], self.mask);
                self.budget = cur.budget();
                self.record_index += 1;
                Some((value, pd))
            }
        }
    }
}

impl<'p, 's, R: BufRead> std::iter::FusedIterator for StreamRecords<'p, 's, R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::{BaseMask, Charset, Registry};
    use std::io::Cursor as IoCursor;

    fn mask() -> Mask {
        Mask::all(BaseMask::CheckAndSet)
    }

    #[test]
    fn newline_streaming_matches_slice_parsing() {
        let registry = Registry::standard();
        let schema = crate::compile(
            "Precord Pstruct r_t { Puint32 n; ','; Pstring(:',':) tag; }; Psource Parray rs_t { r_t[]; };",
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry);
        let data = b"1,ab\n2,cd\nbroken\n4,ef\n";
        let m = mask();
        let streamed: Vec<(Value, bool)> = parser
            .stream_records(IoCursor::new(&data[..]), "r_t", &m)
            .map(|(v, pd)| (v, pd.is_ok()))
            .collect();
        let sliced: Vec<(Value, bool)> =
            parser.records(&data[..], "r_t", &m).map(|(v, pd)| (v, pd.is_ok())).collect();
        assert_eq!(streamed, sliced);
        assert_eq!(streamed.len(), 4);
        assert!(!streamed[2].1);
    }

    #[test]
    fn fixed_width_streaming() {
        let registry = Registry::standard();
        let schema = crate::compile(
            "Precord Pstruct c_t { Pb_uint16 a; Pb_uint8 b; }; Psource Parray cs_t { c_t[]; };",
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry).with_options(crate::ParseOptions {
            discipline: RecordDiscipline::FixedWidth(3),
            ..Default::default()
        });
        let data = [0u8, 7, 1, 0, 9, 2];
        let m = mask();
        let vals: Vec<u64> = parser
            .stream_records(IoCursor::new(&data[..]), "c_t", &m)
            .map(|(v, pd)| {
                assert!(pd.is_ok());
                v.at_path("a").and_then(Value::as_u64).unwrap()
            })
            .collect();
        assert_eq!(vals, vec![7, 9]);
    }

    #[test]
    fn length_prefixed_streaming() {
        let registry = Registry::standard();
        let schema = crate::compile(
            "Precord Pstruct m_t { Pstring_FW(:3:) s; }; Psource Parray ms_t { m_t[]; };",
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry).with_options(crate::ParseOptions {
            discipline: RecordDiscipline::LengthPrefixed {
                header_bytes: 2,
                endian: Endian::Big,
            },
            ..Default::default()
        });
        let data = [0u8, 3, b'a', b'b', b'c', 0, 3, b'x', b'y', b'z'];
        let m = mask();
        let vals: Vec<String> = parser
            .stream_records(IoCursor::new(&data[..]), "m_t", &m)
            .map(|(v, _)| v.at_path("s").and_then(Value::as_str).unwrap().to_owned())
            .collect();
        assert_eq!(vals, vec!["abc", "xyz"]);
    }

    #[test]
    fn truncated_fixed_width_tail_is_flagged() {
        let registry = Registry::standard();
        let schema = crate::compile(
            "Precord Pstruct c_t { Pb_uint16 a; }; Psource Parray cs_t { c_t[]; };",
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry).with_options(crate::ParseOptions {
            discipline: RecordDiscipline::FixedWidth(2),
            ..Default::default()
        });
        let data = [0u8, 7, 9]; // one full record + one truncated byte
        let m = mask();
        let items: Vec<bool> = parser
            .stream_records(IoCursor::new(&data[..]), "c_t", &m)
            .map(|(_, pd)| pd.is_ok())
            .collect();
        assert_eq!(items, vec![true, false]);
    }

    #[test]
    fn streaming_works_under_ebcdic() {
        let registry = Registry::standard();
        let schema = crate::compile(
            "Precord Pstruct r_t { Puint32 n; }; Psource Parray rs_t { r_t[]; };",
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry).with_options(crate::ParseOptions {
            charset: Charset::Ebcdic,
            ..Default::default()
        });
        // Two fixed-width EBCDIC records: "12", "34". (Newline framing for
        // streams splits on ASCII '\n', so EBCDIC sources stream with fixed
        // or length-prefixed framing.)
        let data = [0xF1, 0xF2, 0xF3, 0xF4];
        let m = mask();
        let parser_fixed = PadsParser::new(&schema, &registry).with_options(crate::ParseOptions {
            charset: Charset::Ebcdic,
            discipline: RecordDiscipline::FixedWidth(2),
            ..Default::default()
        });
        let vals: Vec<u64> = parser_fixed
            .stream_records(IoCursor::new(&data[..]), "r_t", &m)
            .map(|(v, pd)| {
                assert!(pd.is_ok(), "{:?}", pd.errors());
                v.at_path("n").and_then(Value::as_u64).unwrap()
            })
            .collect();
        assert_eq!(vals, vec![12, 34]);
        let _ = parser;
    }
}
