//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds with no registry access, so `criterion` is replaced
//! by this in-tree shim (renamed to `criterion` in the root manifest). It
//! keeps the calling convention of the benches — `criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `bench_with_input`, `Throughput` —
//! but implements only a simple wall-clock measurement: warm up, run a
//! fixed number of timed samples, report the median ns/iteration and
//! derived throughput to stdout. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (only the display form is used).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a single parameter, like criterion's.
    pub fn from_parameter<P: Display>(p: P) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// A function-plus-parameter id.
    pub fn new<F: Display, P: Display>(f: F, p: P) -> BenchmarkId {
        BenchmarkId(format!("{f}/{p}"))
    }
}

/// The per-iteration timer handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
    sample_count: u32,
}

impl Bencher {
    /// Times `f`, collecting `sample_count` samples of `iters_per_sample`
    /// calls each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_count: u32,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = (n as u32).max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b =
            Bencher { samples: Vec::new(), iters_per_sample: 1, sample_count: self.sample_count };
        f(&mut b, input);
        self.report(&id.0, &b.samples);
        self
    }

    /// Runs one benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { samples: Vec::new(), iters_per_sample: 1, sample_count: self.sample_count };
        f(&mut b);
        self.report(&id.0, &b.samples);
        self
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        let mut sorted = samples.to_vec();
        sorted.sort();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let ns = median.as_nanos().max(1);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let mib_s = n as f64 / (1 << 20) as f64 / (ns as f64 / 1e9);
                format!("  {mib_s:>10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let elem_s = n as f64 / (ns as f64 / 1e9);
                format!("  {elem_s:>10.0} elem/s")
            }
            None => String::new(),
        };
        println!("{}/{id:<28} {ns:>12} ns/iter{rate}", self.name);
    }

    /// Ends the group (matching criterion's API; nothing to flush here).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, sample_count: 10, _c: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(name.to_owned());
        g.bench_function(BenchmarkId::from_parameter("default"), f);
        self
    }
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::from_parameter("sum"), &[1u8; 1024][..], |b, data| {
            b.iter(|| data.iter().map(|&x| x as u64).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }
}
