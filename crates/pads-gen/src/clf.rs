//! Synthetic Common Log Format web-server data (Figure 2 / §5.2).
//!
//! The accumulator experiment of §5.2 ran over a research web-log dataset
//! with 53,544 good and 3,824 bad length fields (6.666% bad — servers
//! logging `-` instead of a byte count) and a heavily skewed value
//! distribution (the top 10 of 1000 tracked values covered 18% of the
//! data). This generator reproduces those shape parameters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the CLF generator.
#[derive(Debug, Clone)]
pub struct ClfConfig {
    /// Number of log records.
    pub records: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability the length field is `-` (the undocumented error of
    /// §5.2; paper: 0.06666).
    pub dash_length_rate: f64,
    /// Probability a record's length is drawn from the hot-value pool
    /// rather than the long tail (controls the skew of the top-10 table).
    pub hot_rate: f64,
}

impl Default for ClfConfig {
    fn default() -> ClfConfig {
        ClfConfig { records: 10_000, seed: 0xC1F, dash_length_rate: 0.06666, hot_rate: 0.18 }
    }
}

/// What the generator actually produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClfStats {
    /// Number of records.
    pub records: usize,
    /// Records with a `-` length field (bad).
    pub dash_lengths: usize,
}

const METHODS: &[(&str, u32)] =
    &[("GET", 88), ("POST", 6), ("HEAD", 4), ("PUT", 1), ("DELETE", 1)];
const RESPONSES: &[(&str, u32)] = &[("200", 78), ("304", 12), ("404", 6), ("302", 3), ("500", 1)];
const HOT_LENGTHS: &[u64] = &[3082, 170, 43, 9372, 1425, 518, 1082, 1367, 1027, 1277];
const PATHS: &[&str] = &[
    "/tk/p.txt",
    "/index.html",
    "/images/logo.gif",
    "/scpt/dd@grp.org/confirm",
    "/cgi-bin/search",
    "/docs/paper.ps",
    "/~kfisher/pads.html",
];
const MONTH: &[&str] =
    &["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];

fn weighted<'a>(rng: &mut StdRng, table: &[(&'a str, u32)]) -> &'a str {
    let total: u32 = table.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for (s, w) in table {
        if pick < *w {
            return s;
        }
        pick -= w;
    }
    table[0].0
}

/// Generates CLF log bytes.
pub fn generate(config: &ClfConfig) -> (Vec<u8>, ClfStats) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.records * 80);
    let mut dash_lengths = 0usize;
    // Long-tail pool: ~3000 distinct lengths with exponentially decaying
    // frequency (mean rank 200). The accumulator's first-1000-distinct
    // window then covers ~99% of the mass — the paper reports "tracked
    // 99.552% of values" on its real logs — while no single tail value
    // outweighs the hot pool (paper top value: 2.342% of good).
    let tail_pool: Vec<u64> = (0..3000).map(|_| rng.gen_range(35..248_592)).collect();
    let zipf_index = |rng: &mut StdRng, n: usize| -> usize {
        let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
        ((-u.ln() * 200.0) as usize).min(n - 1)
    };
    for _ in 0..config.records {
        // Client: 70% IP, 30% hostname.
        if rng.gen_bool(0.7) {
            out.extend_from_slice(
                format!(
                    "{}.{}.{}.{}",
                    rng.gen_range(1..240),
                    rng.gen_range(0..256),
                    rng.gen_range(0..256),
                    rng.gen_range(1..255)
                )
                .as_bytes(),
            );
        } else {
            let subs = ["tj62", "www", "proxy", "cache3", "dialup9"];
            let doms = ["aol.com", "att.net", "research.att.com", "example.org"];
            out.extend_from_slice(
                format!(
                    "{}.{}",
                    subs[rng.gen_range(0..subs.len())],
                    doms[rng.gen_range(0..doms.len())]
                )
                .as_bytes(),
            );
        }
        out.extend_from_slice(b" - - [");
        // Date in CLF style within Oct–Dec 1997.
        let day = rng.gen_range(1..=28);
        let month = 9 + rng.gen_range(0..3); // Oct..Dec (0-based index)
        out.extend_from_slice(
            format!(
                "{:02}/{}/1997:{:02}:{:02}:{:02} -0700",
                day,
                MONTH[month],
                rng.gen_range(0..24),
                rng.gen_range(0..60),
                rng.gen_range(0..60)
            )
            .as_bytes(),
        );
        out.extend_from_slice(b"] \"");
        out.extend_from_slice(weighted(&mut rng, METHODS).as_bytes());
        out.push(b' ');
        out.extend_from_slice(PATHS[rng.gen_range(0..PATHS.len())].as_bytes());
        out.extend_from_slice(b" HTTP/1.");
        out.push(if rng.gen_bool(0.6) { b'0' } else { b'1' });
        out.extend_from_slice(b"\" ");
        out.extend_from_slice(weighted(&mut rng, RESPONSES).as_bytes());
        out.push(b' ');
        // Length: dash error, hot value, or long tail.
        if rng.gen_bool(config.dash_length_rate) {
            out.push(b'-');
            dash_lengths += 1;
        } else if rng.gen_bool(config.hot_rate) {
            let v = HOT_LENGTHS[rng.gen_range(0..HOT_LENGTHS.len())];
            out.extend_from_slice(v.to_string().as_bytes());
        } else {
            let v = tail_pool[zipf_index(&mut rng, tail_pool.len())];
            out.extend_from_slice(v.to_string().as_bytes());
        }
        out.push(b'\n');
    }
    (out, ClfStats { records: config.records, dash_lengths })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads::descriptions;
    use pads::PadsParser;
    use pads_runtime::{BaseMask, Mask, Registry};

    #[test]
    fn parses_under_the_figure_4_description() {
        let registry = Registry::standard();
        let schema = descriptions::clf();
        let config = ClfConfig { records: 500, ..ClfConfig::default() };
        let (data, stats) = generate(&config);
        let parser = PadsParser::new(&schema, &registry);
        let mask = Mask::all(BaseMask::CheckAndSet);
        let mut bad = 0usize;
        let mut n = 0usize;
        for (_, pd) in parser.records(&data, "entry_t", &mask) {
            n += 1;
            if !pd.is_ok() {
                bad += 1;
            }
        }
        assert_eq!(n, 500);
        // Every dash-length record is an error, and nothing else is.
        assert_eq!(bad, stats.dash_lengths);
    }

    #[test]
    fn dash_rate_close_to_paper() {
        let config = ClfConfig { records: 60_000, ..ClfConfig::default() };
        let (_, stats) = generate(&config);
        let rate = stats.dash_lengths as f64 / stats.records as f64;
        assert!((rate - 0.06666).abs() < 0.005, "rate = {rate}");
    }
}
