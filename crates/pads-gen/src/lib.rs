//! Synthetic data generation for PADS descriptions.
//!
//! Two layers:
//!
//! * [`generic`] — schema-driven generation for *any* checked description,
//!   with per-field overrides (ranges, word pools, sorted counters) and
//!   deterministic seeding. This realises the paper's §9 future-work item:
//!   generating random data conforming to a specification "particularly
//!   when the real data is proprietary and cannot be exposed".
//! * [`sirius`] / [`clf`] — workload generators matching the *reported
//!   statistics* of the paper's two evaluation datasets (the 2.2 GB Sirius
//!   file of §7 and the web-log dataset of §5.2), with exact-count error
//!   injection. These are the substitutes for AT&T's proprietary feeds in
//!   every experiment of EXPERIMENTS.md.

pub mod clf;
pub mod generic;
pub mod sirius;

pub use clf::{ClfConfig, ClfStats};
pub use generic::{FieldGen, GenConfig, Generator};
pub use sirius::{SiriusConfig, SiriusStats};
