//! Synthetic Sirius provisioning data (Figure 3 / §7 of the paper).
//!
//! The paper's 2.2 GB evaluation file is proprietary, so this module
//! fabricates a file with the same *reported statistics*: pipe-separated
//! 13-field order headers followed by event sequences with a minimum of 1
//! event, a configurable mean (paper: 5.5) and cap (paper observed 156),
//! an exact number of records violating the timestamp sort order (paper: 1)
//! and an exact number of records with syntax errors (paper: 53). Phone
//! numbers use both missing-value representations the paper describes
//! (absent field and literal `0`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for the Sirius generator.
#[derive(Debug, Clone)]
pub struct SiriusConfig {
    /// Number of order records.
    pub records: usize,
    /// RNG seed.
    pub seed: u64,
    /// Mean number of events per order (paper: 5.5; minimum is 1).
    pub mean_events: f64,
    /// Maximum number of events per order (paper: 156).
    pub max_events: usize,
    /// Exact number of records whose event timestamps are out of order
    /// (paper: 1).
    pub sort_violations: usize,
    /// Exact number of records with a syntax error (paper: 53).
    pub syntax_errors: usize,
    /// Number of distinct provisioning states (paper: >400).
    pub states: usize,
}

impl Default for SiriusConfig {
    fn default() -> SiriusConfig {
        SiriusConfig {
            records: 10_000,
            seed: 0x51E1_05,
            mean_events: 5.5,
            max_events: 156,
            sort_violations: 1,
            syntax_errors: 53,
            states: 400,
        }
    }
}

/// What the generator actually produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiriusStats {
    /// Number of order records.
    pub records: usize,
    /// Total events across all orders.
    pub total_events: usize,
    /// Fewest events in one order.
    pub min_events: usize,
    /// Most events in one order.
    pub max_events: usize,
    /// Record indices (0-based, order records only) with injected sort
    /// violations.
    pub sort_violation_records: Vec<usize>,
    /// Record indices with injected syntax errors.
    pub syntax_error_records: Vec<usize>,
}

impl SiriusStats {
    /// Mean events per order.
    pub fn avg_events(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.total_events as f64 / self.records as f64
        }
    }
}

const ORDER_TYPES: &[&str] = &["EDTF_6", "LOC_6", "FRDW_2", "CMP_1", "STD_3", "MIG_9"];
const STREAMS: &[&str] = &["DUO", "UNO", "TRIO"];

/// Generates a Sirius summary file: one header record, then order records.
pub fn generate(config: &SiriusConfig) -> (Vec<u8>, SiriusStats) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.records * 96);
    let states: Vec<String> = (0..config.states.max(1))
        .map(|i| match i {
            0 => "LOC_CRTE".to_owned(),
            1 => "LOC_OS_10".to_owned(),
            2 => "EDTF_RDY".to_owned(),
            _ => format!("ST_{i:03}"),
        })
        .collect();

    // Choose which records get injected problems.
    let mut indices: Vec<usize> = (0..config.records).collect();
    indices.shuffle(&mut rng);
    let mut sort_violation_records: Vec<usize> =
        indices.iter().copied().take(config.sort_violations.min(config.records)).collect();
    let mut syntax_error_records: Vec<usize> = indices
        .iter()
        .copied()
        .skip(sort_violation_records.len())
        .take(config.syntax_errors.min(config.records.saturating_sub(sort_violation_records.len())))
        .collect();
    sort_violation_records.sort_unstable();
    syntax_error_records.sort_unstable();

    // Summary header record: "0|<tstamp>".
    let summary_ts: u32 = rng.gen_range(1_000_000_000..1_100_000_000);
    out.extend_from_slice(format!("0|{summary_ts}\n").as_bytes());

    let mut total_events = 0usize;
    let mut min_events = usize::MAX;
    let mut max_events = 0usize;

    for rec in 0..config.records {
        let mut line = String::with_capacity(96);
        let order_num: u32 = rng.gen_range(1_000..100_000_000);
        line.push_str(&order_num.to_string());
        line.push('|');
        line.push_str(&order_num.to_string());
        line.push('|');
        line.push_str(&rng.gen_range(1u32..5).to_string());
        line.push('|');
        // Four phone-number fields: absent, literal 0, or a real number —
        // the two missing-value representations of §5.1.1 plus real data.
        for _ in 0..4 {
            match rng.gen_range(0..10) {
                0..=2 => {}
                3..=5 => line.push('0'),
                _ => line.push_str(&rng.gen_range(2_000_000_000u64..9_999_999_999).to_string()),
            }
            line.push('|');
        }
        // Zip (sometimes absent; leading zeros preserved).
        if rng.gen_bool(0.6) {
            line.push_str(&format!("{:05}", rng.gen_range(501u32..99_999)));
        }
        line.push('|');
        // Billing identifier: real ramp or generated "no_ii" id.
        if rng.gen_bool(0.8) {
            line.push_str(&rng.gen_range(1i64..10_000_000).to_string());
        } else {
            line.push_str("no_ii");
            line.push_str(&rng.gen_range(100_000u64..999_999).to_string());
        }
        line.push('|');
        line.push_str(ORDER_TYPES[rng.gen_range(0..ORDER_TYPES.len())]);
        line.push('|');
        line.push_str(&rng.gen_range(0u32..100).to_string());
        line.push('|');
        if rng.gen_bool(0.3) {
            line.push_str("APRL1");
        }
        line.push('|');
        line.push_str(STREAMS[rng.gen_range(0..STREAMS.len())]);
        line.push('|');

        // Event sequence: length 1 + geometric with the configured mean.
        // Records slated for a sort violation need at least two events for
        // the swap to produce one.
        let wants_violation = sort_violation_records.binary_search(&rec).is_ok();
        let extra_mean = (config.mean_events - 1.0).max(0.0);
        let p = 1.0 / (extra_mean + 1.0);
        let mut n_events = if wants_violation { 2 } else { 1 };
        while n_events < config.max_events && rng.gen::<f64>() > p {
            n_events += 1;
        }
        total_events += n_events;
        min_events = min_events.min(n_events);
        max_events = max_events.max(n_events);

        let mut ts: u64 = rng.gen_range(990_000_000..1_080_000_000);
        let mut timestamps = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            ts += rng.gen_range(60..90_000);
            timestamps.push(ts);
        }
        if wants_violation {
            timestamps.swap(0, n_events - 1);
        }
        for (i, ts) in timestamps.iter().enumerate() {
            if i > 0 {
                line.push('|');
            }
            // Weight the named states (LOC_CRTE, LOC_OS_10, EDTF_RDY) so
            // state-to-state queries over small samples find transitions.
            let state_idx = if rng.gen_bool(0.2) {
                rng.gen_range(0..3.min(states.len()))
            } else {
                rng.gen_range(0..states.len())
            };
            line.push_str(&states[state_idx]);
            line.push('|');
            line.push_str(&ts.to_string());
        }

        let mut bytes = line.into_bytes();
        if syntax_error_records.binary_search(&rec).is_ok() {
            corrupt(&mut bytes, &mut rng);
        }
        out.extend_from_slice(&bytes);
        out.push(b'\n');
    }

    let stats = SiriusStats {
        records: config.records,
        total_events,
        min_events: if config.records == 0 { 0 } else { min_events },
        max_events,
        sort_violation_records,
        syntax_error_records,
    };
    (out, stats)
}

/// Injects a syntax error near the start of the record so the record
/// deterministically fails to parse (a common corruption shape in the
/// paper's feeds).
fn corrupt(line: &mut Vec<u8>, rng: &mut StdRng) {
    match rng.gen_range(0..3) {
        0 => {
            // Non-numeric order number.
            line[0] = b'X';
        }
        1 => {
            // Smash the first field separator.
            if let Some(pos) = line.iter().position(|&b| b == b'|') {
                line[pos] = b'*';
            }
        }
        _ => {
            // Truncate the record mid-header.
            let cut = line.len().min(10);
            line.truncate(cut);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads::descriptions;
    use pads::PadsParser;
    use pads_runtime::{BaseMask, Mask, Registry};

    #[test]
    fn statistics_match_configuration() {
        let config = SiriusConfig {
            records: 2_000,
            sort_violations: 1,
            syntax_errors: 10,
            ..SiriusConfig::default()
        };
        let (_, stats) = generate(&config);
        assert_eq!(stats.records, 2_000);
        assert_eq!(stats.sort_violation_records.len(), 1);
        assert_eq!(stats.syntax_error_records.len(), 10);
        assert!(stats.min_events >= 1);
        assert!(stats.max_events <= config.max_events);
        // Mean within 20% of the requested 5.5.
        assert!((stats.avg_events() - 5.5).abs() < 1.1, "avg = {}", stats.avg_events());
    }

    #[test]
    fn generated_data_parses_with_expected_error_counts() {
        let registry = Registry::standard();
        let schema = descriptions::sirius();
        let config = SiriusConfig {
            records: 500,
            sort_violations: 2,
            syntax_errors: 5,
            ..SiriusConfig::default()
        };
        let (data, stats) = generate(&config);
        let parser = PadsParser::new(&schema, &registry);
        let mask = Mask::all(BaseMask::CheckAndSet);
        let (value, pd) = parser.parse_source(&data, &mask);
        // All records materialise.
        assert_eq!(value.at_path("es").unwrap().len(), Some(500));
        // Exactly the injected problems are detected.
        let errors = pd.errors();
        let bad_records: std::collections::BTreeSet<&str> = errors
            .iter()
            .map(|(p, _, _)| {
                let start = p.find('[').expect("error path includes element index");
                let end = p.find(']').expect("closing bracket");
                &p[start..=end]
            })
            .collect();
        assert_eq!(
            bad_records.len(),
            7,
            "expected 2 sort + 5 syntax bad records, got {errors:?}"
        );
        assert!(errors
            .iter()
            .any(|(_, c, _)| *c == pads::ErrorCode::ForallViolation));
        let _ = stats;
    }

    #[test]
    fn deterministic_per_seed() {
        let c = SiriusConfig { records: 100, ..SiriusConfig::default() };
        assert_eq!(generate(&c).0, generate(&c).0);
        let c2 = SiriusConfig { seed: 99, ..c };
        assert_ne!(generate(&c).0, generate(&c2).0);
    }
}
