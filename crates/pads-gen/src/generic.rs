//! Schema-driven random data generation.
//!
//! Given any checked description, produces bytes that parse back cleanly
//! under that description (syntactically; semantic constraints are the
//! caller's business via overrides). This is the paper's future-work item
//! "generate random data that conforms to a given specification,
//! particularly when the real data is proprietary" (§9) — exactly our
//! situation with AT&T's feeds.

use std::collections::HashMap;

use pads::{Prim, Schema};
use pads_check::ir::{MemberIr, TypeId, TypeKind, TyUse};
use pads_syntax::ast::Literal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-path value generation override.
#[derive(Debug, Clone)]
pub enum FieldGen {
    /// Uniform unsigned integer in `[lo, hi]`.
    UintRange(u64, u64),
    /// Uniform signed integer in `[lo, hi]`.
    IntRange(i64, i64),
    /// Random word over `[a-z]` with a length in `[lo, hi]`.
    Word(usize, usize),
    /// Pick uniformly from a fixed set of strings.
    Choice(Vec<String>),
    /// Always the same text.
    Const(String),
    /// Monotonically increasing unsigned counter: starts in `[lo, hi]`,
    /// each subsequent draw (within one array instance) adds a step in
    /// `[1, step]`. Used to satisfy sortedness constraints like the Sirius
    /// event timestamps.
    SortedUint {
        /// Range of the starting value.
        start: (u64, u64),
        /// Maximum step between consecutive values.
        step: u64,
    },
}

/// Configuration for the generic generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed (generation is deterministic given the seed).
    pub seed: u64,
    /// Length used for unbounded arrays: uniform in `[min_len, max_len]`.
    pub min_len: usize,
    /// See `min_len`.
    pub max_len: usize,
    /// Probability a `Popt` value is present.
    pub opt_present: f64,
    /// Per-field overrides keyed by dotted path from the generated type
    /// (array elements contribute no path component).
    pub overrides: HashMap<String, FieldGen>,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            seed: 0x9ad5_7ea1,
            min_len: 0,
            max_len: 5,
            opt_present: 0.7,
            overrides: HashMap::new(),
        }
    }
}

impl GenConfig {
    /// Adds an override at `path` (builder style).
    pub fn with_override(mut self, path: &str, g: FieldGen) -> GenConfig {
        self.overrides.insert(path.to_owned(), g);
        self
    }
}

/// A deterministic random generator for one schema.
pub struct Generator<'s> {
    schema: &'s Schema,
    config: GenConfig,
    rng: StdRng,
    counters: HashMap<String, u64>,
}

impl<'s> Generator<'s> {
    /// Creates a generator.
    pub fn new(schema: &'s Schema, config: GenConfig) -> Generator<'s> {
        let rng = StdRng::seed_from_u64(config.seed);
        Generator { schema, config, rng, counters: HashMap::new() }
    }

    /// Generates one instance of the named type into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not declared in the schema.
    pub fn generate_named(&mut self, name: &str, out: &mut Vec<u8>) {
        let id = self.schema.type_id(name).expect("type not declared in schema");
        self.gen_def(id, &[], "", out);
    }

    /// Generates `n` instances of the named record type (each followed by a
    /// newline, matching the default record discipline).
    pub fn generate_records(&mut self, name: &str, n: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for _ in 0..n {
            self.generate_named(name, &mut out);
            out.push(b'\n');
        }
        out
    }

    fn gen_def(&mut self, id: TypeId, args: &[Prim], path: &str, out: &mut Vec<u8>) {
        let def = self.schema.def(id);
        let params: Vec<(String, Prim)> = def
            .params
            .iter()
            .zip(args)
            .map(|(p, a)| (p.name.clone(), a.clone()))
            .collect();
        match &def.kind {
            TypeKind::Struct { members } => {
                let mut fields: Vec<(String, Prim)> = params.clone();
                for m in members {
                    match m {
                        MemberIr::Lit(l) => emit_literal(l, out),
                        MemberIr::Field(f) => {
                            let fpath = join(path, &f.name);
                            let before = out.len();
                            self.gen_tyuse(&f.ty, &fields, &fpath, out);
                            // Remember scalar fields so later dependent
                            // widths/switches see consistent values.
                            if let Some(p) = scalar_of(&out[before..], &f.ty) {
                                fields.push((f.name.clone(), p));
                            }
                        }
                    }
                }
            }
            TypeKind::Union { switch, branches } => {
                // For switched unions pick the branch the selector demands;
                // for ordered unions pick uniformly.
                let index = match switch {
                    Some(sel) => self
                        .eval_selector(sel, &params, branches)
                        .unwrap_or(branches.len() - 1),
                    None => self.rng.gen_range(0..branches.len()),
                };
                let b = &branches[index];
                let fields: Vec<(String, Prim)> = params.clone();
                self.gen_tyuse(&b.field.ty, &fields, &join(path, &b.field.name), out);
            }
            TypeKind::Array { elem, sep, term, size, .. } => {
                let n = match size {
                    Some(e) => self.const_size(e, &params).unwrap_or(0),
                    None => self.rng.gen_range(self.config.min_len..=self.config.max_len),
                };
                // Counters reset per array instance so sorted sequences
                // restart for each record.
                self.reset_counters(path);
                for i in 0..n {
                    if i > 0 {
                        if let Some(s) = sep {
                            emit_literal(s, out);
                        }
                    }
                    self.gen_tyuse(elem, &params.clone(), path, out);
                }
                if let Some(Literal::Char(_) | Literal::Str(_)) = term {
                    emit_literal(term.as_ref().expect("checked above"), out);
                }
            }
            TypeKind::Enum { variants } => {
                let v = match self.config.overrides.get(path) {
                    Some(FieldGen::Const(s)) => s.clone(),
                    Some(FieldGen::Choice(cs)) => {
                        cs[self.rng.gen_range(0..cs.len())].clone()
                    }
                    _ => variants[self.rng.gen_range(0..variants.len())].clone(),
                };
                out.extend_from_slice(v.as_bytes());
            }
            TypeKind::Typedef { base, .. } => {
                self.gen_tyuse(base, &params, path, out);
            }
        }
    }

    fn reset_counters(&mut self, prefix: &str) {
        self.counters.retain(|k, _| !k.starts_with(prefix));
    }

    /// Picks the branch a `Pswitch` selector demands: evaluates the
    /// selector over the bound parameters and matches it against constant
    /// case labels, falling back to the `Pdefault` branch (or the last).
    fn eval_selector(
        &mut self,
        sel: &pads_syntax::ast::Expr,
        params: &[(String, Prim)],
        branches: &[pads_check::ir::BranchIr],
    ) -> Option<usize> {
        use pads_syntax::ast::CaseLabel;
        let sel_val = self.eval_arg(sel, params)?.as_i64()?;
        let mut default = None;
        for (i, b) in branches.iter().enumerate() {
            match &b.case {
                Some(CaseLabel::Expr(e)) => {
                    if self.eval_arg(e, params).and_then(|p| p.as_i64()) == Some(sel_val) {
                        return Some(i);
                    }
                }
                Some(CaseLabel::Default) => default = Some(i),
                None => {}
            }
        }
        default
    }

    fn const_size(&mut self, e: &pads_syntax::ast::Expr, params: &[(String, Prim)]) -> Option<usize> {
        use pads_syntax::ast::Expr;
        match e {
            Expr::Int(v) => usize::try_from(*v).ok(),
            Expr::Ident(name) => params
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, p)| p.as_u64())
                .and_then(|v| usize::try_from(v).ok()),
            _ => None,
        }
    }

    fn gen_tyuse(
        &mut self,
        ty: &TyUse,
        fields: &[(String, Prim)],
        path: &str,
        out: &mut Vec<u8>,
    ) {
        match ty {
            TyUse::Opt(inner) => {
                if self.rng.gen_bool(self.config.opt_present) {
                    self.gen_tyuse(inner, fields, path, out);
                }
            }
            TyUse::Named { id, args } => {
                let prims: Vec<Prim> = args
                    .iter()
                    .map(|a| self.eval_arg(a, fields).unwrap_or(Prim::Uint(0)))
                    .collect();
                self.gen_def(*id, &prims, path, out);
            }
            TyUse::Base { name, args } => {
                let prims: Vec<Prim> = args
                    .iter()
                    .map(|a| self.eval_arg(a, fields).unwrap_or(Prim::Uint(0)))
                    .collect();
                self.gen_base(name, &prims, path, out);
            }
        }
    }

    fn eval_arg(
        &mut self,
        e: &pads_syntax::ast::Expr,
        fields: &[(String, Prim)],
    ) -> Option<Prim> {
        use pads_syntax::ast::Expr;
        match e {
            Expr::Int(v) => Some(Prim::Int(*v)),
            Expr::Char(c) => Some(Prim::Char(*c)),
            Expr::Str(s) => Some(Prim::String(s.clone())),
            Expr::Ident(name) => fields.iter().find(|(n, _)| n == name).map(|(_, p)| p.clone()),
            _ => None,
        }
    }

    fn override_at(&self, path: &str) -> Option<&FieldGen> {
        self.config.overrides.get(path)
    }

    fn gen_base(&mut self, name: &str, args: &[Prim], path: &str, out: &mut Vec<u8>) {
        // Path overrides first.
        if let Some(g) = self.override_at(path).cloned() {
            match g {
                FieldGen::UintRange(lo, hi) => {
                    let v = self.rng.gen_range(lo..=hi);
                    self.emit_number(name, v as i64, args, out);
                    return;
                }
                FieldGen::IntRange(lo, hi) => {
                    let v = self.rng.gen_range(lo..=hi);
                    self.emit_number(name, v, args, out);
                    return;
                }
                FieldGen::Word(lo, hi) => {
                    let len = self.rng.gen_range(lo..=hi);
                    for _ in 0..len {
                        out.push(self.rng.gen_range(b'a'..=b'z'));
                    }
                    return;
                }
                FieldGen::Choice(cs) => {
                    let s = &cs[self.rng.gen_range(0..cs.len())];
                    out.extend_from_slice(s.as_bytes());
                    return;
                }
                FieldGen::Const(s) => {
                    out.extend_from_slice(s.as_bytes());
                    return;
                }
                FieldGen::SortedUint { start, step } => {
                    let next = match self.counters.get(path) {
                        Some(&cur) => cur + self.rng.gen_range(1..=step.max(1)),
                        None => self.rng.gen_range(start.0..=start.1),
                    };
                    self.counters.insert(path.to_owned(), next);
                    self.emit_number(name, next as i64, args, out);
                    return;
                }
            }
        }
        // Defaults per base family.
        match name {
            _ if name.contains("int") && name.starts_with("Pb_") => {
                // Binary ints: random bytes of the right width.
                let bytes: usize = name
                    .trim_start_matches("Pb_")
                    .trim_start_matches(['i', 'u'])
                    .trim_start_matches("nt")
                    .parse::<usize>()
                    .unwrap_or(32)
                    / 8;
                for _ in 0..bytes {
                    out.push(self.rng.gen());
                }
            }
            _ if name.contains("uint") => {
                let hi = int_cap(name, args, false);
                let v: u64 = self.rng.gen_range(0..=hi as u64);
                self.emit_number(name, v as i64, args, out);
            }
            _ if name.contains("int") => {
                let hi = int_cap(name, args, true);
                let v: i64 = self.rng.gen_range(-hi..=hi);
                self.emit_number(name, v, args, out);
            }
            "Pfloat32" | "Pfloat64" => {
                let v: f64 = self.rng.gen_range(-1000.0..1000.0);
                out.extend_from_slice(format!("{v:.3}").as_bytes());
            }
            "Pchar" | "Pa_char" => out.push(self.rng.gen_range(b'a'..=b'z')),
            "Pe_char" => {
                let c = self.rng.gen_range(b'a'..=b'z');
                out.push(pads_runtime::Charset::Ebcdic.encode(c));
            }
            "Pstring" | "Pstring_SE" => {
                let len = self.rng.gen_range(1..=8);
                for _ in 0..len {
                    out.push(self.rng.gen_range(b'a'..=b'z'));
                }
            }
            "Pstring_FW" => {
                let n = args.first().and_then(Prim::as_u64).unwrap_or(4) as usize;
                for _ in 0..n {
                    out.push(self.rng.gen_range(b'a'..=b'z'));
                }
            }
            "Pstring_ME" => {
                // Regex-conforming generation is limited to the digit-run
                // patterns used in practice; override for anything richer.
                let n = 10;
                for _ in 0..n {
                    out.push(self.rng.gen_range(b'0'..=b'9'));
                }
            }
            "Pip" => {
                let s = format!(
                    "{}.{}.{}.{}",
                    self.rng.gen_range(1..255),
                    self.rng.gen_range(0..256),
                    self.rng.gen_range(0..256),
                    self.rng.gen_range(1..255)
                );
                out.extend_from_slice(s.as_bytes());
            }
            "Phostname" => {
                let labels = self.rng.gen_range(2..=3);
                for i in 0..labels {
                    if i > 0 {
                        out.push(b'.');
                    }
                    let len = self.rng.gen_range(2..=6);
                    for _ in 0..len {
                        out.push(self.rng.gen_range(b'a'..=b'z'));
                    }
                }
            }
            "Pzip" => {
                for _ in 0..5 {
                    out.push(self.rng.gen_range(b'0'..=b'9'));
                }
            }
            "Pdate" => {
                // CLF style by default: the only bundled description using
                // Pdate is the web log.
                let epoch = self.rng.gen_range(850_000_000i64..1_050_000_000);
                let d = pads_runtime::date::PDate {
                    epoch,
                    tz_minutes: -420,
                    style: pads_runtime::date::DateStyle::Clf,
                };
                out.extend_from_slice(d.to_original().as_bytes());
            }
            "Pvoid" => {}
            "Pbits" => {
                // Byte-multiple bit fields only; emit printable bytes so the
                // output stays friendly to newline-framed records.
                let n = args.first().and_then(Prim::as_u64).unwrap_or(8) as usize;
                for _ in 0..n.div_ceil(8) {
                    out.push(self.rng.gen_range(b'A'..=b'Z'));
                }
            }
            "Pebc_zoned" => {
                let n = args.first().and_then(Prim::as_u64).unwrap_or(3) as usize;
                for i in 0..n {
                    let d = self.rng.gen_range(0u8..10);
                    let zone = if i == n - 1 { 0xC0 } else { 0xF0 };
                    out.push(zone | d);
                }
            }
            "Ppacked" => {
                let n = args.first().and_then(Prim::as_u64).unwrap_or(3) as usize;
                let mut nibbles: Vec<u8> = Vec::new();
                if n % 2 == 0 {
                    nibbles.push(0);
                }
                for _ in 0..n {
                    nibbles.push(self.rng.gen_range(0..10));
                }
                nibbles.push(0xC);
                for pair in nibbles.chunks(2) {
                    out.push(pair[0] << 4 | pair[1]);
                }
            }
            _ => {
                // Unknown (user-registered) base type: digits are the safest
                // bet; override for anything else.
                for _ in 0..4 {
                    out.push(self.rng.gen_range(b'0'..=b'9'));
                }
            }
        }
    }

    fn emit_number(&mut self, base: &str, v: i64, args: &[Prim], out: &mut Vec<u8>) {
        let text = if base.ends_with("_FW") {
            let w = args.first().and_then(Prim::as_u64).unwrap_or(4) as usize;
            format!("{:0>width$}", v, width = w)
        } else {
            v.to_string()
        };
        if base.starts_with("Pe_") {
            out.extend(text.bytes().map(|b| pads_runtime::Charset::Ebcdic.encode(b)));
        } else {
            out.extend_from_slice(text.as_bytes());
        }
    }
}

/// Largest magnitude a default-generated integer may take: bounded by the
/// declared bit width, the fixed width in characters (when `_FW`), and a
/// compactness cap of 100 000.
fn int_cap(name: &str, args: &[Prim], signed: bool) -> i64 {
    let bits: u32 = name
        .trim_end_matches("_FW")
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(32);
    let type_max: i64 = if signed {
        ((1u64 << (bits - 1).min(62)) - 1) as i64
    } else {
        ((1u128 << bits.min(63)) - 1).min(i64::MAX as u128) as i64
    };
    let mut cap = type_max.min(100_000);
    if name.ends_with("_FW") {
        let w = args.first().and_then(Prim::as_u64).unwrap_or(4).min(10) as u32;
        let digits = if signed { w.saturating_sub(1).max(1) } else { w };
        cap = cap.min(10i64.pow(digits) - 1);
    }
    cap.max(1)
}

fn scalar_of(bytes: &[u8], ty: &TyUse) -> Option<Prim> {
    // Recover the numeric value of a just-generated scalar field from its
    // text, so dependent fields (widths, switch selectors) can use it.
    if let TyUse::Base { name, .. } = ty {
        if name.contains("int") && !name.starts_with("Pb_") {
            let text = std::str::from_utf8(bytes).ok()?;
            return text.parse::<i64>().ok().map(Prim::Int);
        }
    }
    None
}

fn emit_literal(l: &Literal, out: &mut Vec<u8>) {
    match l {
        Literal::Char(c) => out.push(*c),
        Literal::Str(s) => out.extend_from_slice(s.as_bytes()),
        // A regex literal has no canonical text; emit nothing (callers
        // should avoid regex literals in generated descriptions).
        Literal::Regex(_) => {}
        Literal::Eor | Literal::Eof => {}
    }
}

fn join(path: &str, name: &str) -> String {
    if path.is_empty() {
        name.to_owned()
    } else {
        format!("{path}.{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads::{compile, PadsParser};
    use pads_runtime::{BaseMask, Mask, Registry};

    #[test]
    fn generated_data_parses_cleanly() {
        let registry = Registry::standard();
        let schema = compile(
            r#"
            Penum color_t { RED, GREEN, BLUE };
            Precord Pstruct r_t {
                Puint32 id;
                '|'; color_t color;
                '|'; Popt Pzip zip;
                '|'; Pip addr;
                '|'; Pstring(:'|':) tag;
                '|'; Puint16_FW(:5:) fixed;
            };
            Psource Parray rs_t { r_t[]; };
            "#,
            &registry,
        )
        .unwrap();
        let mut g = Generator::new(&schema, GenConfig::default());
        let data = g.generate_records("r_t", 200);
        let parser = PadsParser::new(&schema, &registry);
        let (v, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
        assert!(pd.is_ok(), "generated data must parse: {:?}", pd.errors().first());
        assert_eq!(v.len(), Some(200));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let registry = Registry::standard();
        let schema = compile(
            "Precord Pstruct r_t { Puint32 a; ','; Pstring(:',':) b; }; Psource Parray rs_t { r_t[]; };",
            &registry,
        )
        .unwrap();
        let a = Generator::new(&schema, GenConfig::default()).generate_records("r_t", 50);
        let b = Generator::new(&schema, GenConfig::default()).generate_records("r_t", 50);
        assert_eq!(a, b);
        let c = Generator::new(&schema, GenConfig { seed: 7, ..GenConfig::default() })
            .generate_records("r_t", 50);
        assert_ne!(a, c);
    }

    #[test]
    fn sorted_override_satisfies_where_clauses() {
        let registry = Registry::standard();
        let schema = compile(
            r#"
            Pstruct ev_t { Pstring(:'|':) s; '|'; Puint32 ts; };
            Parray seq_t { ev_t[] : Psep('|') && Pterm(Peor); } Pwhere {
                Pforall (i Pin [0..length-2] : elts[i].ts <= elts[i+1].ts);
            };
            Precord Pstruct r_t { Puint32 id; '|'; seq_t events; };
            Psource Parray rs_t { r_t[]; };
            "#,
            &registry,
        )
        .unwrap();
        let config = GenConfig {
            min_len: 1,
            max_len: 8,
            ..GenConfig::default()
        }
        .with_override("events.ts", FieldGen::SortedUint { start: (1_000_000, 2_000_000), step: 500 });
        let mut g = Generator::new(&schema, config);
        let data = g.generate_records("r_t", 100);
        let parser = PadsParser::new(&schema, &registry);
        let (_, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
        assert!(pd.is_ok(), "sorted override must satisfy Pwhere: {:?}", pd.errors().first());
    }

    #[test]
    fn dependent_width_fields_are_consistent() {
        let registry = Registry::standard();
        let schema = compile(
            "Precord Pstruct p_t { Puint8 n : n > 0; ':'; Pstring_FW(:n:) body; }; Psource Parray ps_t { p_t[]; };",
            &registry,
        )
        .unwrap();
        let config = GenConfig::default().with_override("n", FieldGen::UintRange(1, 9));
        let mut g = Generator::new(&schema, config);
        let data = g.generate_records("p_t", 100);
        let parser = PadsParser::new(&schema, &registry);
        let (_, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
        assert!(pd.is_ok(), "{:?}", pd.errors().first());
    }
}
