//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no registry access, so external
//! crates are replaced by small in-tree shims (see `[workspace.dependencies]`
//! in the root manifest, which renames this package to `rand`). Only the API
//! surface this workspace actually uses is provided: `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, [`Rng::gen_bool`], [`Rng::gen`] for a few primitive types, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xorshift64* — deterministic, seedable, and statistically
//! good enough for test-data generation and benchmarking workloads, which is
//! all the workspace asks of it. It is NOT cryptographically secure. Streams
//! differ from the real `rand` crate, so seeds produce different (but still
//! stable) corpora.

use std::ops::{Range, RangeInclusive};

/// Seeding constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value methods (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range` (half-open or inclusive integer ranges,
    /// half-open float ranges).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// A uniform value of a primitive type (subset of the `Standard`
    /// distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// Types producible by [`Rng::gen`] (subset of `rand`'s `Standard`).
pub trait Standard {
    /// Samples one uniform value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        f64::sample(rng) as f32
    }
}

/// Types with a uniform sampler over an interval (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform value in `[lo, hi)`.
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// A uniform value in `[lo, hi]`.
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                lo + (<$t as Standard>::sample(rng)) * (hi - lo)
            }
            fn sample_inclusive<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

/// Ranges [`Rng::gen_range`] can sample from (subset of
/// `rand::distributions::uniform::SampleRange`). The single blanket impl
/// per range shape matters: it lets integer-literal ranges unify with the
/// surrounding usage exactly like the real `rand` crate.
pub trait SampleRange<T> {
    /// Samples one uniform value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xorshift64*.
    #[derive(Debug, Clone)]
    pub struct StdRng(u64);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Splittable-mix the seed so small seeds don't start in a
            // low-entropy region; remap 0 (the xorshift fixpoint).
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng(if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z })
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice extension trait providing in-place shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let b = rng.gen_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
