//! Robustness: the lexer and parser must reject garbage with errors, never
//! panics — ad hoc descriptions are themselves ad hoc data.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_text(src in "\\PC{0,200}") {
        let _ = pads_syntax::parse(&src);
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            proptest::sample::select(vec![
                "Pstruct", "Punion", "Parray", "Penum", "Ptypedef", "Popt",
                "Precord", "Psource", "Pwhere", "Pforall", "Pin", "Psep",
                "Pterm", "Peor", "Pcase", "Pswitch", "Pdefault",
                "{", "}", "(", ")", "(:", ":)", "[", "]", ";", ",", ":",
                "..", "=>", "==", "&&", "||", "x", "t", "Puint8", "'a'",
                "\"s\"", "1", "2.5", "if", "return", "true",
            ]),
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = pads_syntax::parse(&src);
    }

    #[test]
    fn expression_parser_never_panics(src in "[-a-z0-9+*/%()<>=&|!?:.\\[\\] ]{0,80}") {
        let _ = pads_syntax::parse_expr(&src);
    }

    #[test]
    fn checker_never_panics_on_parsed_garbage(
        tokens in proptest::collection::vec(
            proptest::sample::select(vec![
                "Pstruct t { Puint8 x; };",
                "Punion u { Puint8 a; Pip b; };",
                "Parray a { Puint8[] : Pterm(Peor); };",
                "Penum e { A, B };",
                "Ptypedef Puint8 d;",
                "Pstruct t2 { unknown_t y; };",
                "Pstruct t3 { Puint8 x : y + z; };",
                "bool f(int a) { return a == 1; };",
            ]),
            0..6,
        )
    ) {
        let src = tokens.join("\n");
        if let Ok(prog) = pads_syntax::parse(&src) {
            let registry = pads_runtime::Registry::standard();
            let _ = pads_check::check(&prog, &registry);
        }
    }
}
