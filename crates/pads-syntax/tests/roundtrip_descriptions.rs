//! Round-trip test over the real bundled descriptions: `parse → pretty →
//! parse` must converge, and the two parses must agree once spans (which
//! legitimately move when the text is reformatted) are ignored.

use std::path::PathBuf;

use pads_syntax::{parse, pretty};

fn descriptions() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../descriptions");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("descriptions dir exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|x| x == "pads") {
            let name = path.file_name().and_then(|n| n.to_str()).expect("utf8").to_owned();
            out.push((name, std::fs::read_to_string(&path).expect("readable")));
        }
    }
    out.sort();
    assert_eq!(out.len(), 3, "clf, sirius, mixed");
    out
}

#[test]
fn parse_pretty_parse_is_stable_on_bundled_descriptions() {
    for (name, src) in descriptions() {
        let prog1 = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed1 = pretty::program(&prog1);
        let prog2 =
            parse(&printed1).unwrap_or_else(|e| panic!("{name} (pretty output): {e}\n{printed1}"));
        // Printed forms must reach a fixed point immediately: printing the
        // reparsed program reproduces the first printing byte for byte.
        let printed2 = pretty::program(&prog2);
        assert_eq!(printed1, printed2, "{name}: pretty output is not a fixed point");
    }
}

#[test]
fn reparsed_descriptions_have_identical_declaration_shapes() {
    // Spans move when the text is reformatted, but nothing structural may:
    // same declarations, same order, same bodies once spans are erased.
    for (name, src) in descriptions() {
        let prog1 = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let prog2 = parse(&pretty::program(&prog1)).expect("pretty output parses");
        assert_eq!(prog1.decls.len(), prog2.decls.len(), "{name}");
        assert_eq!(prog1.funcs.len(), prog2.funcs.len(), "{name}");
        for (d1, d2) in prog1.decls.iter().zip(&prog2.decls) {
            assert_eq!(d1.name, d2.name, "{name}");
            assert_eq!(d1.is_record, d2.is_record, "{name}: `{}`", d1.name);
            assert_eq!(d1.is_source, d2.is_source, "{name}: `{}`", d1.name);
            assert_eq!(d1.params, d2.params, "{name}: `{}`", d1.name);
            assert_eq!(d1.where_clause, d2.where_clause, "{name}: `{}`", d1.name);
        }
    }
}
