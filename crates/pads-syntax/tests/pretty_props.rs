//! Property test: the pretty-printer and parser are mutually inverse on
//! randomly generated expressions and declarations.

use pads_syntax::ast::{BinOp, Expr, UnOp};
use pads_syntax::{parse, parse_expr, pretty};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("avoid keywords and P-words", |s| {
        !matches!(
            s.as_str(),
            "if" | "else" | "return" | "true" | "false" | "bool" | "int" | "uint"
        ) && !s.starts_with('p')
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1_000_000).prop_map(Expr::Int),
        proptest::char::range('a', 'z').prop_map(|c| Expr::Char(c as u8)),
        "[a-zA-Z0-9 _.-]{0,8}".prop_map(Expr::Str),
        any::<bool>().prop_map(Expr::Bool),
        ident().prop_map(Expr::Ident),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div),
                Just(BinOp::Rem), Just(BinOp::Eq), Just(BinOp::Ne), Just(BinOp::Lt),
                Just(BinOp::Le), Just(BinOp::Gt), Just(BinOp::Ge), Just(BinOp::And),
                Just(BinOp::Or),
            ])
                .prop_map(|(a, b, op)| Expr::Binary(op, Box::new(a), Box::new(b))),
            (inner.clone(), prop_oneof![Just(UnOp::Not), Just(UnOp::Neg)])
                .prop_map(|(a, op)| Expr::Unary(op, Box::new(a))),
            (inner.clone(), ident())
                .prop_map(|(a, n)| Expr::Field(Box::new(a), n)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, i)| Expr::Index(Box::new(a), Box::new(i))),
            (ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(n, args)| Expr::Call(n, args)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::Ternary(Box::new(c), Box::new(t), Box::new(e))),
            (ident(), inner.clone(), inner.clone(), inner)
                .prop_map(|(v, lo, hi, body)| Expr::Forall {
                    var: v,
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    body: Box::new(body),
                }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_printed_expressions_reparse_to_the_same_tree(e in arb_expr()) {
        let printed = pretty::expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("pretty output must reparse: {err}\n{printed}"));
        prop_assert_eq!(&reparsed, &e, "printed: {}", printed);
    }

    #[test]
    fn pretty_printed_struct_declarations_reach_a_fixed_point(
        fields in proptest::collection::vec((ident(), 0u8..4), 1..6),
        constraint in proptest::option::of(arb_expr()),
    ) {
        // Build a struct over a few base types with an optional constraint
        // on the last field.
        let mut src = String::from("Pstruct t_t {\n");
        let tys = ["Puint32", "Pint64", "Pchar", "Pstring(:'|':)"];
        let n = fields.len();
        for (i, (name, ty_idx)) in fields.iter().enumerate() {
            src.push_str("    ");
            src.push_str(tys[*ty_idx as usize % tys.len()]);
            src.push(' ');
            src.push_str(name);
            src.push_str(&format!("{i}"));
            if i == n - 1 {
                if let Some(c) = &constraint {
                    src.push_str(" : ");
                    src.push_str(&pretty::expr(c));
                }
            }
            src.push_str(";\n    '|';\n");
        }
        src.push_str("};\n");
        let prog = match parse(&src) {
            Ok(p) => p,
            // Duplicate field names after suffixing cannot happen; any other
            // parse failure is a bug in the generator, not the parser.
            Err(e) => return Err(TestCaseError::fail(format!("{e}\n{src}"))),
        };
        let printed = pretty::program(&prog);
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("pretty output must reparse: {err}\n{printed}"));
        prop_assert_eq!(pretty::program(&reparsed), printed);
    }
}
