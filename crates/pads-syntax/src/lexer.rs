//! Lexer for PADS descriptions.
//!
//! Comment styles: C (`/* … */`), C++ (`// …`), and the PADS line comment
//! `/- …` seen in Figure 4 of the paper.

use crate::token::{Span, Token, TokenKind};
use crate::SyntaxError;

/// Lexes a whole description into tokens (ending with an `Eof` token).
pub fn lex(src: &str) -> Result<Vec<Token>, SyntaxError> {
    let mut lx = Lexer { src: src.as_bytes(), pos: 0 };
    let mut out = Vec::new();
    loop {
        let tok = lx.next_token()?;
        let is_eof = tok.kind == TokenKind::Eof;
        out.push(tok);
        if is_eof {
            return Ok(out);
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn err(&self, msg: impl Into<String>) -> SyntaxError {
        SyntaxError::new(msg, Span::new(self.pos, self.pos + 1))
    }

    fn skip_trivia(&mut self) -> Result<(), SyntaxError> {
        loop {
            match (self.peek(), self.peek2()) {
                (Some(b), _) if b.is_ascii_whitespace() => self.pos += 1,
                (Some(b'/'), Some(b'/')) | (Some(b'/'), Some(b'-')) => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                (Some(b'/'), Some(b'*')) => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(SyntaxError::new(
                                    "unterminated block comment",
                                    Span::new(start, self.pos),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, SyntaxError> {
        self.skip_trivia()?;
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Token { kind: TokenKind::Eof, span: Span::new(start, start) });
        };
        let kind = match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(),
            b'0'..=b'9' => self.number()?,
            b'\'' => self.char_lit()?,
            b'"' => self.string_lit()?,
            b'{' => self.one(TokenKind::LBrace),
            b'}' => self.one(TokenKind::RBrace),
            b'(' => {
                if self.peek2() == Some(b':') {
                    self.pos += 2;
                    TokenKind::LParenColon
                } else {
                    self.one(TokenKind::LParen)
                }
            }
            b')' => self.one(TokenKind::RParen),
            b':' => {
                if self.peek2() == Some(b')') {
                    self.pos += 2;
                    TokenKind::ColonRParen
                } else {
                    self.one(TokenKind::Colon)
                }
            }
            b'[' => self.one(TokenKind::LBracket),
            b']' => self.one(TokenKind::RBracket),
            b';' => self.one(TokenKind::Semi),
            b',' => self.one(TokenKind::Comma),
            b'.' => {
                if self.peek2() == Some(b'.') {
                    self.pos += 2;
                    TokenKind::DotDot
                } else {
                    self.one(TokenKind::Dot)
                }
            }
            b'=' => match self.peek2() {
                Some(b'=') => {
                    self.pos += 2;
                    TokenKind::EqEq
                }
                Some(b'>') => {
                    self.pos += 2;
                    TokenKind::FatArrow
                }
                _ => self.one(TokenKind::Eq),
            },
            b'!' => {
                if self.peek2() == Some(b'=') {
                    self.pos += 2;
                    TokenKind::NotEq
                } else {
                    self.one(TokenKind::Bang)
                }
            }
            b'<' => {
                if self.peek2() == Some(b'=') {
                    self.pos += 2;
                    TokenKind::Le
                } else {
                    self.one(TokenKind::Lt)
                }
            }
            b'>' => {
                if self.peek2() == Some(b'=') {
                    self.pos += 2;
                    TokenKind::Ge
                } else {
                    self.one(TokenKind::Gt)
                }
            }
            b'&' => {
                if self.peek2() == Some(b'&') {
                    self.pos += 2;
                    TokenKind::AndAnd
                } else {
                    return Err(self.err("expected `&&`"));
                }
            }
            b'|' => {
                if self.peek2() == Some(b'|') {
                    self.pos += 2;
                    TokenKind::OrOr
                } else {
                    return Err(self.err("expected `||` (use a char literal for `|` data)"));
                }
            }
            b'+' => self.one(TokenKind::Plus),
            b'-' => self.one(TokenKind::Minus),
            b'*' => self.one(TokenKind::Star),
            b'/' => self.one(TokenKind::Slash),
            b'%' => self.one(TokenKind::Percent),
            b'?' => self.one(TokenKind::Question),
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok(Token { kind, span: Span::new(start, self.pos) })
    }

    fn one(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        TokenKind::Ident(text)
    }

    fn number(&mut self) -> Result<TokenKind, SyntaxError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        // Float only when a digit follows the dot (so `0..9` lexes as
        // Int DotDot Int).
        let is_float = self.peek() == Some(b'.') && self.peek2().is_some_and(|b| b.is_ascii_digit());
        if is_float {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]);
            let v: f64 = text
                .parse()
                .map_err(|_| SyntaxError::new("invalid float literal", Span::new(start, self.pos)))?;
            Ok(TokenKind::Float(v))
        } else {
            let text = String::from_utf8_lossy(&self.src[start..self.pos]);
            let v: i64 = text.parse().map_err(|_| {
                SyntaxError::new("integer literal too large", Span::new(start, self.pos))
            })?;
            Ok(TokenKind::Int(v))
        }
    }

    fn escape(&mut self) -> Result<u8, SyntaxError> {
        // Called after the backslash has been consumed.
        let b = self.peek().ok_or_else(|| self.err("dangling escape"))?;
        self.pos += 1;
        Ok(match b {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            b'x' => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                hi * 16 + lo
            }
            other => other,
        })
    }

    fn hex_digit(&mut self) -> Result<u8, SyntaxError> {
        let b = self.peek().ok_or_else(|| self.err("expected hex digit"))?;
        self.pos += 1;
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(self.err("expected hex digit")),
        }
    }

    fn char_lit(&mut self) -> Result<TokenKind, SyntaxError> {
        self.pos += 1; // opening quote
        let b = self.peek().ok_or_else(|| self.err("unterminated char literal"))?;
        let value = if b == b'\\' {
            self.pos += 1;
            self.escape()?
        } else {
            self.pos += 1;
            b
        };
        if self.peek() != Some(b'\'') {
            return Err(self.err("unterminated char literal"));
        }
        self.pos += 1;
        Ok(TokenKind::Char(value))
    }

    fn string_lit(&mut self) -> Result<TokenKind, SyntaxError> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string literal"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(TokenKind::Str(s));
                }
                b'\\' => {
                    self.pos += 1;
                    s.push(self.escape()? as char);
                }
                _ => {
                    self.pos += 1;
                    s.push(b as char);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_type_parameter_brackets() {
        let ks = kinds("Pstring(:' ':)");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("Pstring".into()),
                TokenKind::LParenColon,
                TokenKind::Char(b' '),
                TokenKind::ColonRParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dotdot_vs_float() {
        assert_eq!(
            kinds("[0..9]"),
            vec![
                TokenKind::LBracket,
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(9),
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
        assert_eq!(kinds("2.5"), vec![TokenKind::Float(2.5), TokenKind::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        let src = "a /- pads comment\nb // c++ comment\nc /* block\nspanning */ d";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Ident("d".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn escapes_in_literals() {
        assert_eq!(kinds(r#"'\"'"#), vec![TokenKind::Char(b'"'), TokenKind::Eof]);
        assert_eq!(kinds(r"'\n'"), vec![TokenKind::Char(b'\n'), TokenKind::Eof]);
        assert_eq!(kinds(r"'\x41'"), vec![TokenKind::Char(b'A'), TokenKind::Eof]);
        assert_eq!(
            kinds(r#""a\tb""#),
            vec![TokenKind::Str("a\tb".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a == b && c <= d => e != f || !g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::EqEq,
                TokenKind::Ident("b".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("c".into()),
                TokenKind::Le,
                TokenKind::Ident("d".into()),
                TokenKind::FatArrow,
                TokenKind::Ident("e".into()),
                TokenKind::NotEq,
                TokenKind::Ident("f".into()),
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Ident("g".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("a @ b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("'ab'").is_err());
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }
}
