//! Pretty-printer: AST back to canonical PADS source.
//!
//! The printer guarantees a round trip: parsing its output yields the same
//! AST (used by the `pads-cobol` translator to emit descriptions, and
//! property-tested in this crate).

use crate::ast::*;

/// Renders a whole program.
pub fn program(prog: &Program) -> String {
    let mut out = String::new();
    let mut first = true;
    for f in &prog.funcs {
        if !first {
            out.push('\n');
        }
        first = false;
        func(f, &mut out);
    }
    for d in &prog.decls {
        if !first {
            out.push('\n');
        }
        first = false;
        decl(d, &mut out);
    }
    out
}

fn escape_char(c: u8) -> String {
    match c {
        b'\n' => "\\n".into(),
        b'\t' => "\\t".into(),
        b'\r' => "\\r".into(),
        0 => "\\0".into(),
        b'\\' => "\\\\".into(),
        b'\'' => "\\'".into(),
        0x20..=0x7E => (c as char).to_string(),
        other => format!("\\x{other:02x}"),
    }
}

fn escape_str(s: &str) -> String {
    let mut out = String::new();
    for c in s.bytes() {
        match c {
            b'\n' => out.push_str("\\n"),
            b'\t' => out.push_str("\\t"),
            b'\r' => out.push_str("\\r"),
            0 => out.push_str("\\0"),
            b'\\' => out.push_str("\\\\"),
            b'"' => out.push_str("\\\""),
            0x20..=0x7E => out.push(c as char),
            other => out.push_str(&format!("\\x{other:02x}")),
        }
    }
    out
}

/// Renders a data literal.
pub fn literal(l: &Literal) -> String {
    match l {
        Literal::Char(c) => format!("'{}'", escape_char(*c)),
        Literal::Str(s) => format!("\"{}\"", escape_str(s)),
        Literal::Regex(p) => format!("Pre \"{}\"", escape_str(p)),
        Literal::Eor => "Peor".into(),
        Literal::Eof => "Peof".into(),
    }
}

/// Renders a type expression.
pub fn ty_expr(ty: &TyExpr) -> String {
    match ty {
        TyExpr::Opt(inner) => format!("Popt {}", ty_expr(inner)),
        TyExpr::App(app) => {
            if app.args.is_empty() {
                app.name.clone()
            } else {
                let args: Vec<String> = app.args.iter().map(expr).collect();
                format!("{}(:{}:)", app.name, args.join(", "))
            }
        }
    }
}

/// Renders an expression.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            let s = v.to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Char(c) => format!("'{}'", escape_char(*c)),
        Expr::Str(s) => format!("\"{}\"", escape_str(s)),
        Expr::Bool(b) => b.to_string(),
        Expr::Ident(s) => s.clone(),
        Expr::Field(base, name) => format!("{}.{name}", postfix_base(base)),
        Expr::Index(base, idx) => format!("{}[{}]", postfix_base(base), expr(idx)),
        Expr::Call(name, args) => {
            let args: Vec<String> = args.iter().map(expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Unary(UnOp::Not, a) => format!("!({})", expr(a)),
        Expr::Unary(UnOp::Neg, a) => format!("-({})", expr(a)),
        Expr::Binary(op, a, b) => format!("({} {} {})", expr(a), op.symbol(), expr(b)),
        Expr::Ternary(c, t, e2) => format!("(({}) ? ({}) : ({}))", expr(c), expr(t), expr(e2)),
        Expr::Forall { var, lo, hi, body } => {
            format!("Pforall ({var} Pin [{}..{}] : {})", expr(lo), expr(hi), expr(body))
        }
    }
}

/// Renders the base of a postfix operation (`.field`, `[idx]`), adding
/// parentheses when the base binds looser than postfix application.
fn postfix_base(base: &Expr) -> String {
    match base {
        Expr::Unary(..) | Expr::Binary(..) | Expr::Ternary(..) | Expr::Forall { .. } => {
            format!("({})", expr(base))
        }
        _ => expr(base),
    }
}

fn field(f: &Field, out: &mut String) {
    out.push_str(&ty_expr(&f.ty));
    out.push(' ');
    out.push_str(&f.name);
    if let Some(c) = &f.constraint {
        out.push_str(" : ");
        out.push_str(&expr(c));
    }
}

fn params(ps: &[Param], out: &mut String) {
    if ps.is_empty() {
        return;
    }
    out.push_str("(:");
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&p.ty);
        out.push(' ');
        out.push_str(&p.name);
    }
    out.push_str(":)");
}

fn where_clause(w: &Option<Expr>, out: &mut String) {
    if let Some(e) = w {
        out.push_str(" Pwhere {\n    ");
        out.push_str(&expr(e));
        out.push_str(";\n}");
    }
}

/// Renders a declaration.
pub fn decl(d: &Decl, out: &mut String) {
    if d.is_record {
        out.push_str("Precord ");
    }
    if d.is_source {
        out.push_str("Psource ");
    }
    match &d.kind {
        DeclKind::Struct { members } => {
            out.push_str("Pstruct ");
            out.push_str(&d.name);
            params(&d.params, out);
            out.push_str(" {\n");
            for m in members {
                out.push_str("    ");
                match m {
                    Member::Lit(l) => out.push_str(&literal(l)),
                    Member::Field(f) => field(f, out),
                }
                out.push_str(";\n");
            }
            out.push('}');
            where_clause(&d.where_clause, out);
            out.push_str(";\n");
        }
        DeclKind::Union { switch, branches } => {
            out.push_str("Punion ");
            out.push_str(&d.name);
            params(&d.params, out);
            if let Some(sel) = switch {
                out.push_str(" Pswitch(");
                out.push_str(&expr(sel));
                out.push(')');
            }
            out.push_str(" {\n");
            for b in branches {
                out.push_str("    ");
                match &b.case {
                    Some(CaseLabel::Expr(e)) => {
                        out.push_str("Pcase ");
                        out.push_str(&expr(e));
                        out.push_str(": ");
                    }
                    Some(CaseLabel::Default) => out.push_str("Pdefault: "),
                    None => {}
                }
                field(&b.field, out);
                out.push_str(";\n");
            }
            out.push('}');
            where_clause(&d.where_clause, out);
            out.push_str(";\n");
        }
        DeclKind::Array { elem, cond } => {
            out.push_str("Parray ");
            out.push_str(&d.name);
            params(&d.params, out);
            out.push_str(" {\n    ");
            out.push_str(&ty_expr(elem));
            out.push('[');
            if let Some(sz) = &cond.size {
                out.push_str(&expr(sz));
            }
            out.push(']');
            let mut conds = Vec::new();
            if let Some(sep) = &cond.sep {
                conds.push(format!("Psep({})", literal(sep)));
            }
            if let Some(term) = &cond.term {
                conds.push(format!("Pterm({})", literal(term)));
            }
            if let Some(ended) = &cond.ended {
                conds.push(format!("Pended({})", expr(ended)));
            }
            if !conds.is_empty() {
                out.push_str(" : ");
                out.push_str(&conds.join(" && "));
            }
            out.push_str(";\n}");
            where_clause(&d.where_clause, out);
            out.push_str(";\n");
        }
        DeclKind::Enum { variants } => {
            out.push_str("Penum ");
            out.push_str(&d.name);
            out.push_str(" {\n    ");
            out.push_str(&variants.join(",\n    "));
            out.push_str("\n};\n");
        }
        DeclKind::Typedef { base, var, pred } => {
            out.push_str("Ptypedef ");
            out.push_str(&ty_expr(base));
            out.push(' ');
            out.push_str(&d.name);
            if let (Some(v), Some(p)) = (var, pred) {
                out.push_str(" :\n    ");
                out.push_str(&d.name);
                out.push(' ');
                out.push_str(v);
                out.push_str(" => { ");
                out.push_str(&expr(p));
                out.push_str(" }");
            }
            out.push_str(";\n");
        }
    }
}

fn stmts(body: &[Stmt], indent: usize, out: &mut String) {
    for s in body {
        stmt(s, indent, out);
    }
}

fn stmt(s: &Stmt, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Return(e) => {
            out.push_str(&pad);
            out.push_str("return ");
            out.push_str(&expr(e));
            out.push_str(";\n");
        }
        Stmt::If { cond, then_body, else_body } => {
            out.push_str(&pad);
            out.push_str("if (");
            out.push_str(&expr(cond));
            out.push_str(") {\n");
            stmts(then_body, indent + 1, out);
            out.push_str(&pad);
            out.push('}');
            if !else_body.is_empty() {
                out.push_str(" else {\n");
                stmts(else_body, indent + 1, out);
                out.push_str(&pad);
                out.push('}');
            }
            out.push('\n');
        }
    }
}

/// Renders a function definition.
pub fn func(f: &FuncDecl, out: &mut String) {
    out.push_str(&f.ret);
    out.push(' ');
    out.push_str(&f.name);
    out.push('(');
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&p.ty);
        out.push(' ');
        out.push_str(&p.name);
    }
    out.push_str(") {\n");
    stmts(&f.body, 1, out);
    out.push_str("};\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trip_struct_union_array() {
        let src = r#"
            Punion client_t {
                Pip ip;
                Phostname host;
            };
            Pstruct request_t {
                '\"'; method_t meth;
                ' '; Pstring(:' ':) req_uri;
                '\"';
            };
            Parray eventSeq {
                event_t[] : Psep('|') && Pterm(Peor);
            } Pwhere {
                Pforall (i Pin [0..length-2] : elts[i].tstamp <= elts[i+1].tstamp);
            };
        "#;
        let prog = parse(src).unwrap();
        let printed = program(&prog);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // Spans differ between the two parses; the printer is the
        // span-insensitive canonical form, so compare its fixed point.
        assert_eq!(printed, program(&reparsed));
    }

    #[test]
    fn round_trip_functions_and_typedefs() {
        let src = r#"
            bool chk(version_t v, method_t m) {
                if ((v.major == 1) && (v.minor == 1)) return true;
                if ((m == LINK) || (m == UNLINK)) return false;
                return true;
            };
            Ptypedef Puint16_FW(:3:) response_t :
                response_t x => { 100 <= x && x < 600 };
        "#;
        let prog = parse(src).unwrap();
        let printed = program(&prog);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(printed, program(&reparsed));
    }

    #[test]
    fn escapes_survive_round_trip() {
        let src = "Pstruct t { '\\n'; \"a\\tb\\\"c\"; Pchar x; };";
        let prog = parse(src).unwrap();
        let printed = program(&prog);
        assert_eq!(printed, program(&parse(&printed).unwrap()));
    }

    #[test]
    fn switched_union_round_trip() {
        let src = r#"
            Punion p_t (:Puint8 k:) Pswitch(k) {
                Pcase 0: Puint32 count;
                Pdefault: Pvoid unknown;
            };
        "#;
        let prog = parse(src).unwrap();
        let printed = program(&prog);
        assert_eq!(printed, program(&parse(&printed).unwrap()));
    }
}
