//! Front-end for the PADS data description language (PLDI 2005).
//!
//! This crate turns description text — the language of Figures 4 and 5 of
//! the paper — into a typed AST:
//!
//! * [`lexer`] — tokens, including the `(: … :)` parameter brackets and the
//!   `/-` PADS comment style;
//! * [`ast`] — declarations (`Pstruct`, `Punion` incl. `Pswitch`, `Parray`,
//!   `Penum`, `Popt`, `Ptypedef`), annotations (`Precord`, `Psource`),
//!   constraints (`Pwhere`, `Pforall`), and the C-like expression/function
//!   sub-language;
//! * [`parser`] — recursive descent with spanned errors;
//! * [`pretty`] — canonical re-printing with a parse∘print round-trip
//!   guarantee.
//!
//! # Examples
//!
//! ```
//! let program = pads_syntax::parse(r#"
//!     Penum method_t { GET, PUT, POST };
//!     Precord Pstruct entry_t {
//!         method_t meth;
//!         ' '; Pstring(:' ':) uri;
//!     };
//! "#)?;
//! assert_eq!(program.decls.len(), 2);
//! assert_eq!(program.source_decl().unwrap().name, "entry_t");
//! # Ok::<(), pads_syntax::SyntaxError>(())
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::Program;
pub use parser::{parse, parse_expr};
pub use token::Span;

/// A lexical or syntactic error with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    msg: String,
    span: Span,
}

impl SyntaxError {
    pub(crate) fn new(msg: impl Into<String>, span: Span) -> SyntaxError {
        SyntaxError { msg: msg.into(), span }
    }

    /// Where the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Computes 1-based `(line, column)` of the error in `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        self.span.line_col(src)
    }
}

impl std::fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "syntax error at {}: {}", self.span, self.msg)
    }
}

impl std::error::Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_reporting() {
        let src = "Pstruct t {\n  Puint8 }\n";
        let err = parse(src).unwrap_err();
        let (line, col) = err.line_col(src);
        assert_eq!(line, 2);
        assert!(col > 1);
    }

    #[test]
    fn parses_the_full_clf_description_from_figure_4() {
        let src = r#"
Punion client_t {
    Pip ip;        /- 135.207.23.32
    Phostname host; /- www.research.att.com
};

Punion auth_id_t {
    Pchar unauthorized : unauthorized == '-';
    Pstring(:' ':) id;
};

Pstruct version_t {
    "HTTP/";
    Puint8 major; '.';
    Puint8 minor;
};

Penum method_t {
    GET, PUT, POST, HEAD,
    DELETE, LINK, UNLINK
};

bool chkVersion(version_t v, method_t m) {
    if ((v.major == 1) && (v.minor == 1)) return true;
    if ((m == LINK) || (m == UNLINK)) return false;
    return true;
};

Pstruct request_t {
    '\"'; method_t meth;
    ' '; Pstring(:' ':) req_uri;
    ' '; version_t version :
        chkVersion(version, meth);
    '\"';
};

Ptypedef Puint16_FW(:3:) response_t :
    response_t x => { 100 <= x && x < 600};

Precord Pstruct entry_t {
    client_t client;
    ' '; auth_id_t remoteID;
    ' '; auth_id_t auth;
    " ["; Pdate(:']':) date;
    "] "; request_t request;
    ' '; response_t response;
    ' '; Puint32 length;
};

Psource Parray clt_t {
    entry_t [];
}
"#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.decls.len(), 8);
        assert_eq!(prog.funcs.len(), 1);
        assert_eq!(prog.source_decl().unwrap().name, "clt_t");
        assert!(prog.decl("entry_t").unwrap().is_record);
    }

    #[test]
    fn parses_the_full_sirius_description_from_figure_5() {
        let src = r#"
Precord Pstruct summary_header_t {
    "0|";
    Puint32 tstamp;
};

Pstruct no_ramp_t {
    "no_ii";
    Puint64 id;
};

Punion dib_ramp_t {
    Pint64 ramp;
    no_ramp_t genRamp;
};

Ptypedef Pstring_ME(:"\d{10}":) pn_t;

Pstruct order_header_t {
    Puint32 order_num;
    '|'; Puint32 att_order_num;
    '|'; Puint32 ord_version;
    '|'; Popt pn_t service_tn;
    '|'; Popt pn_t billing_tn;
    '|'; Popt pn_t nlp_service_tn;
    '|'; Popt pn_t nlp_billing_tn;
    '|'; Popt Pzip zip_code;
    '|'; dib_ramp_t ramp;
    '|'; Pstring(:'|':) order_type;
    '|'; Puint32 order_details;
    '|'; Pstring(:'|':) unused;
    '|'; Pstring(:'|':) stream;
    '|';
};

Pstruct event_t {
    Pstring(:'|':) state; '|';
    Puint32 tstamp;
};

Parray eventSeq {
    event_t[] : Psep ('|') && Pterm ( Peor );
} Pwhere {
    Pforall (i Pin [0..length-2] :
        (elts[i].tstamp <= elts[i+1].tstamp));
};

Precord Pstruct entry_t {
    order_header_t header;
    eventSeq events;
};

Parray entries_t {
    entry_t[];
};

Psource Pstruct out_sum {
    summary_header_t h;
    entries_t es;
};
"#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.source_decl().unwrap().name, "out_sum");
        assert_eq!(prog.decls.len(), 10);
        // Pretty round trip on the whole Sirius description (the printed
        // form is the span-insensitive canonical representation).
        let printed = pretty::program(&prog);
        assert_eq!(printed, pretty::program(&parse(&printed).unwrap()));
    }
}
