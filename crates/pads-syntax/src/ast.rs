//! Abstract syntax of the PADS description language.
//!
//! A description is a sequence of type declarations and predicate function
//! definitions; "types are declared before they are used, so the type that
//! describes the totality of the data source appears at the bottom" (§3).

use crate::token::Span;

/// A whole description file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Type declarations, in source order.
    pub decls: Vec<Decl>,
    /// Predicate function definitions, in source order.
    pub funcs: Vec<FuncDecl>,
}

impl Program {
    /// Finds a type declaration by name.
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.name == name)
    }

    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// The `Psource` declaration, or (per PADS convention) the last type
    /// declaration when none is annotated.
    pub fn source_decl(&self) -> Option<&Decl> {
        self.decls.iter().find(|d| d.is_source).or_else(|| self.decls.last())
    }
}

/// A literal that can appear as data (struct members, separators,
/// terminators).
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A single character, e.g. `'|'`.
    Char(u8),
    /// A string, e.g. `"HTTP/"`.
    Str(String),
    /// A regular expression literal, `Pre "pattern"`.
    Regex(String),
    /// End of record (`Peor`).
    Eor,
    /// End of source (`Peof`).
    Eof,
}

/// A reference to a type with optional value parameters:
/// `Puint16_FW(:3:)`, `Pstring(:'|':)`, `entry_t`.
#[derive(Debug, Clone, PartialEq)]
pub struct TyApp {
    /// Type name (base type or declared type).
    pub name: String,
    /// Parameter expressions from `(: … :)`.
    pub args: Vec<Expr>,
    /// Source span of the reference.
    pub span: Span,
}

/// A type expression: a reference, possibly wrapped in `Popt`.
#[derive(Debug, Clone, PartialEq)]
pub enum TyExpr {
    /// Plain type application.
    App(TyApp),
    /// `Popt T` — optional data (sugar for a union with a void branch, §3).
    Opt(Box<TyExpr>),
}

impl TyExpr {
    /// The innermost type application.
    pub fn app(&self) -> &TyApp {
        match self {
            TyExpr::App(a) => a,
            TyExpr::Opt(inner) => inner.app(),
        }
    }

    /// Source span of the type reference (the innermost application).
    pub fn span(&self) -> Span {
        self.app().span
    }
}

/// A named, constrained field (struct member, union branch).
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TyExpr,
    /// Optional semantic constraint (`: expr`), with the field itself and
    /// all earlier fields in scope.
    pub constraint: Option<Expr>,
    /// Source span.
    pub span: Span,
}

/// One member of a `Pstruct`.
#[derive(Debug, Clone, PartialEq)]
pub enum Member {
    /// A literal that must appear in the data.
    Lit(Literal),
    /// A named field.
    Field(Field),
}

impl Member {
    /// Source span, when the member records one (fields do, literals
    /// don't).
    pub fn span(&self) -> Option<Span> {
        match self {
            Member::Lit(_) => None,
            Member::Field(f) => Some(f.span),
        }
    }
}

/// One branch of a `Punion`.
#[derive(Debug, Clone, PartialEq)]
pub struct Branch {
    /// `Pswitch` case label (`Pcase expr:` or `Pdefault:`); `None` in
    /// ordered unions.
    pub case: Option<CaseLabel>,
    /// The branch's field.
    pub field: Field,
}

impl Branch {
    /// Source span of the branch (its field).
    pub fn span(&self) -> Span {
        self.field.span
    }
}

/// Case label in a switched union.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseLabel {
    /// `Pcase <expr>:` — taken when the selector equals the expression.
    Expr(Expr),
    /// `Pdefault:` — taken when no case matches.
    Default,
}

/// Array termination/separation conditions (§3: separators, max sizes,
/// terminating literals, user predicates).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArrayCond {
    /// `Psep(lit)` — literal between consecutive elements.
    pub sep: Option<Literal>,
    /// `Pterm(lit)` — literal (or `Peor`/`Peof`) ending the sequence.
    pub term: Option<Literal>,
    /// `Pended(pred)` — stop when the predicate over `elts`/`length` holds.
    pub ended: Option<Expr>,
    /// Fixed or maximum size from `[n]`.
    pub size: Option<Expr>,
}

/// A value parameter of a parameterised type or a function argument.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Declared type name (base type or scalar keyword).
    pub ty: String,
    /// Parameter name.
    pub name: String,
}

/// The body of a type declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclKind {
    /// `Pstruct { … }` — fixed sequence of literals and fields.
    Struct {
        /// Members in order.
        members: Vec<Member>,
    },
    /// `Punion { … }` — alternatives tried in order, or switched.
    Union {
        /// Selector of a `Pswitch` union, if any.
        switch: Option<Expr>,
        /// Branches in order.
        branches: Vec<Branch>,
    },
    /// `Parray { elem[…] : conds; }` — homogeneous sequence.
    Array {
        /// Element type.
        elem: TyExpr,
        /// Separation/termination conditions.
        cond: ArrayCond,
    },
    /// `Penum { A, B, … }` — fixed collection of data literals.
    Enum {
        /// Variant names, matched textually in the ambient coding.
        variants: Vec<String>,
    },
    /// `Ptypedef base name : name x => { pred };` — constrained renaming.
    Typedef {
        /// Underlying type.
        base: TyExpr,
        /// Name binding the parsed value inside `pred`.
        var: Option<String>,
        /// The constraint.
        pred: Option<Expr>,
    },
}

/// A type declaration with its annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Declared type name.
    pub name: String,
    /// Value parameters (`Pstruct foo(:int n:){…}`).
    pub params: Vec<Param>,
    /// `Precord` annotation: this type is a record.
    pub is_record: bool,
    /// `Psource` annotation: this type is the whole source.
    pub is_source: bool,
    /// The body.
    pub kind: DeclKind,
    /// Optional `Pwhere { … }` clause.
    pub where_clause: Option<Expr>,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// A predicate function definition, written in the C-like expression
/// language (Figure 4's `chkVersion`).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Return type name (`bool`, `int`, …).
    pub ret: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// Statements allowed in predicate functions.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `if (cond) … else …`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch statements.
        then_body: Vec<Stmt>,
        /// Else-branch statements.
        else_body: Vec<Stmt>,
    },
    /// `return expr;`.
    Return(Expr),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Expressions of the C-like constraint language.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Character literal.
    Char(u8),
    /// String literal.
    Str(String),
    /// `true`/`false`.
    Bool(bool),
    /// Variable reference (field, parameter, enum variant, `elts`,
    /// `length`).
    Ident(String),
    /// Field projection `e.name`.
    Field(Box<Expr>, String),
    /// Indexing `e[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Function call `f(a, b)`.
    Call(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `Pforall (i Pin [lo..hi] : body)`.
    Forall {
        /// Bound index variable.
        var: String,
        /// Inclusive lower bound.
        lo: Box<Expr>,
        /// Inclusive upper bound.
        hi: Box<Expr>,
        /// The per-index predicate.
        body: Box<Expr>,
    },
}

impl Expr {
    /// Collects free identifiers (excluding bound `Pforall` variables and
    /// called function names).
    pub fn free_idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn go<'a>(e: &'a Expr, bound: &mut Vec<&'a str>, out: &mut Vec<&'a str>) {
            match e {
                Expr::Ident(name) => {
                    if !bound.contains(&name.as_str()) && !out.contains(&name.as_str()) {
                        out.push(name);
                    }
                }
                Expr::Field(base, _) => go(base, bound, out),
                Expr::Index(base, idx) => {
                    go(base, bound, out);
                    go(idx, bound, out);
                }
                Expr::Call(_, args) => {
                    for a in args {
                        go(a, bound, out);
                    }
                }
                Expr::Unary(_, a) => go(a, bound, out),
                Expr::Binary(_, a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Expr::Ternary(c, t, e2) => {
                    go(c, bound, out);
                    go(t, bound, out);
                    go(e2, bound, out);
                }
                Expr::Forall { var, lo, hi, body } => {
                    go(lo, bound, out);
                    go(hi, bound, out);
                    bound.push(var);
                    go(body, bound, out);
                    bound.pop();
                }
                _ => {}
            }
        }
        go(self, &mut Vec::new(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_idents_respect_forall_binding() {
        let e = Expr::Forall {
            var: "i".into(),
            lo: Box::new(Expr::Int(0)),
            hi: Box::new(Expr::Binary(
                BinOp::Sub,
                Box::new(Expr::Ident("length".into())),
                Box::new(Expr::Int(2)),
            )),
            body: Box::new(Expr::Binary(
                BinOp::Le,
                Box::new(Expr::Field(
                    Box::new(Expr::Index(
                        Box::new(Expr::Ident("elts".into())),
                        Box::new(Expr::Ident("i".into())),
                    )),
                    "tstamp".into(),
                )),
                Box::new(Expr::Int(0)),
            )),
        };
        assert_eq!(e.free_idents(), vec!["length", "elts"]);
    }

    #[test]
    fn tyexpr_app_unwraps_opt() {
        let app = TyApp { name: "pn_t".into(), args: vec![], span: Span::default() };
        let ty = TyExpr::Opt(Box::new(TyExpr::App(app.clone())));
        assert_eq!(ty.app(), &app);
    }
}
