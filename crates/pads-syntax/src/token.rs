//! Tokens of the PADS description language.

/// A byte range in the description source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Whether this is the zero-width placeholder span (no position known).
    pub fn is_dummy(self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// Computes 1-based `(line, column)` of the span's start in `src`.
    pub fn line_col(self, src: &str) -> (usize, usize) {
        let upto = &src.as_bytes()[..self.start.min(src.len())];
        let line = upto.iter().filter(|&&b| b == b'\n').count() + 1;
        let col = upto.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        (line, col)
    }

    /// The source text the span covers (clamped to `src`).
    pub fn slice(self, src: &str) -> &str {
        let start = self.start.min(src.len());
        let end = self.end.clamp(start, src.len());
        src.get(start..end).unwrap_or("")
    }

    /// The full line(s) of `src` containing the span, with the 0-based byte
    /// offset where the first line starts. Used by diagnostic renderers.
    pub fn line_text(self, src: &str) -> (&str, usize) {
        let start = self.start.min(src.len());
        let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[start..].find('\n').map_or(src.len(), |i| start + i);
        (&src[line_start..line_end], line_start)
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`Pstruct`, `entry_t`, `if`, …).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Character literal, already unescaped.
    Char(u8),
    /// String literal, already unescaped.
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `(:` — opens a type-parameter list.
    LParenColon,
    /// `:)` — closes a type-parameter list.
    ColonRParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `=>`
    FatArrow,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `?`
    Question,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Char(c) => write!(f, "char {:?}", *c as char),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LParenColon => f.write_str("`(:`"),
            TokenKind::ColonRParen => f.write_str("`:)`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::DotDot => f.write_str("`..`"),
            TokenKind::FatArrow => f.write_str("`=>`"),
            TokenKind::EqEq => f.write_str("`==`"),
            TokenKind::NotEq => f.write_str("`!=`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::AndAnd => f.write_str("`&&`"),
            TokenKind::OrOr => f.write_str("`||`"),
            TokenKind::Bang => f.write_str("`!`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Percent => f.write_str("`%`"),
            TokenKind::Question => f.write_str("`?`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}
