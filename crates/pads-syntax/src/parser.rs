//! Recursive-descent parser for PADS descriptions.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};
use crate::SyntaxError;

/// Parses a complete description.
pub fn parse(src: &str) -> Result<Program, SyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser { toks: tokens, pos: 0 };
    p.program()
}

/// Parses a single expression (used by tools and tests).
pub fn parse_expr(src: &str) -> Result<Expr, SyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser { toks: tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

const TYPE_KEYWORDS: &[&str] =
    &["Pstruct", "Punion", "Parray", "Penum", "Ptypedef", "Precord", "Psource"];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> SyntaxError {
        SyntaxError::new(msg, self.span())
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, SyntaxError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<(), SyntaxError> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!("expected end of input, found {}", self.peek())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SyntaxError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, SyntaxError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    // ---- top level ------------------------------------------------------

    fn program(&mut self) -> Result<Program, SyntaxError> {
        let mut prog = Program::default();
        while *self.peek() != TokenKind::Eof {
            if self.at_type_decl() {
                prog.decls.push(self.decl()?);
            } else {
                prog.funcs.push(self.func()?);
            }
        }
        Ok(prog)
    }

    fn at_type_decl(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    fn decl(&mut self) -> Result<Decl, SyntaxError> {
        let start = self.span();
        let mut is_record = false;
        let mut is_source = false;
        loop {
            if self.eat_kw("Precord") {
                is_record = true;
            } else if self.eat_kw("Psource") {
                is_source = true;
            } else {
                break;
            }
        }
        let kw = self.ident()?;
        let mut decl = match kw.as_str() {
            "Pstruct" => self.struct_decl()?,
            "Punion" => self.union_decl()?,
            "Parray" => self.array_decl()?,
            "Penum" => self.enum_decl()?,
            "Ptypedef" => self.typedef_decl()?,
            other => return Err(self.err(format!("expected a type keyword, found `{other}`"))),
        };
        decl.is_record = is_record;
        decl.is_source = is_source;
        decl.span = start.to(self.toks[self.pos.saturating_sub(1)].span);
        Ok(decl)
    }

    fn params(&mut self) -> Result<Vec<Param>, SyntaxError> {
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParenColon) {
            loop {
                let ty = self.ident()?;
                let name = self.ident()?;
                params.push(Param { ty, name });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::ColonRParen)?;
        }
        Ok(params)
    }

    fn where_clause(&mut self) -> Result<Option<Expr>, SyntaxError> {
        if !self.eat_kw("Pwhere") {
            return Ok(None);
        }
        self.expect(&TokenKind::LBrace)?;
        let e = self.expr()?;
        self.eat(&TokenKind::Semi);
        self.expect(&TokenKind::RBrace)?;
        Ok(Some(e))
    }

    fn struct_decl(&mut self) -> Result<Decl, SyntaxError> {
        let name = self.ident()?;
        let params = self.params()?;
        self.expect(&TokenKind::LBrace)?;
        let mut members = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            members.push(self.member()?);
        }
        let where_clause = self.where_clause()?;
        self.eat(&TokenKind::Semi);
        Ok(Decl {
            name,
            params,
            is_record: false,
            is_source: false,
            kind: DeclKind::Struct { members },
            where_clause,
            span: Span::default(),
        })
    }

    fn member(&mut self) -> Result<Member, SyntaxError> {
        if let Some(lit) = self.try_literal()? {
            self.expect(&TokenKind::Semi)?;
            return Ok(Member::Lit(lit));
        }
        let field = self.field()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Member::Field(field))
    }

    /// Parses a data literal if one starts here: char, string, or
    /// `Pre "…"` regex.
    fn try_literal(&mut self) -> Result<Option<Literal>, SyntaxError> {
        match self.peek().clone() {
            TokenKind::Char(c) => {
                self.bump();
                Ok(Some(Literal::Char(c)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Some(Literal::Str(s)))
            }
            TokenKind::Ident(s) if s == "Pre" => {
                self.bump();
                match self.peek().clone() {
                    TokenKind::Str(pat) => {
                        self.bump();
                        Ok(Some(Literal::Regex(pat)))
                    }
                    other => Err(self.err(format!("expected pattern string after `Pre`, found {other}"))),
                }
            }
            TokenKind::Ident(s) if s == "Peor" => {
                self.bump();
                Ok(Some(Literal::Eor))
            }
            TokenKind::Ident(s) if s == "Peof" => {
                self.bump();
                Ok(Some(Literal::Eof))
            }
            _ => Ok(None),
        }
    }

    fn ty_expr(&mut self) -> Result<TyExpr, SyntaxError> {
        if self.eat_kw("Popt") {
            let inner = self.ty_expr()?;
            return Ok(TyExpr::Opt(Box::new(inner)));
        }
        let start = self.span();
        let name = self.ident()?;
        let mut args = Vec::new();
        if self.eat(&TokenKind::LParenColon) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::ColonRParen)?;
        }
        let span = start.to(self.toks[self.pos.saturating_sub(1)].span);
        Ok(TyExpr::App(TyApp { name, args, span }))
    }

    fn field(&mut self) -> Result<Field, SyntaxError> {
        let start = self.span();
        let ty = self.ty_expr()?;
        let name = self.ident()?;
        let constraint =
            if self.eat(&TokenKind::Colon) { Some(self.expr()?) } else { None };
        let span = start.to(self.toks[self.pos.saturating_sub(1)].span);
        Ok(Field { name, ty, constraint, span })
    }

    fn union_decl(&mut self) -> Result<Decl, SyntaxError> {
        let name = self.ident()?;
        let params = self.params()?;
        let switch = if self.eat_kw("Pswitch") {
            self.expect(&TokenKind::LParen)?;
            let e = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            Some(e)
        } else {
            None
        };
        self.expect(&TokenKind::LBrace)?;
        let mut branches = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let case = if switch.is_some() {
                if self.eat_kw("Pdefault") {
                    self.expect(&TokenKind::Colon)?;
                    Some(CaseLabel::Default)
                } else {
                    self.expect_kw("Pcase")?;
                    let e = self.expr()?;
                    self.expect(&TokenKind::Colon)?;
                    Some(CaseLabel::Expr(e))
                }
            } else {
                None
            };
            let field = self.field()?;
            self.expect(&TokenKind::Semi)?;
            branches.push(Branch { case, field });
        }
        let where_clause = self.where_clause()?;
        self.eat(&TokenKind::Semi);
        Ok(Decl {
            name,
            params,
            is_record: false,
            is_source: false,
            kind: DeclKind::Union { switch, branches },
            where_clause,
            span: Span::default(),
        })
    }

    fn array_decl(&mut self) -> Result<Decl, SyntaxError> {
        let name = self.ident()?;
        let params = self.params()?;
        self.expect(&TokenKind::LBrace)?;
        let elem = self.ty_expr()?;
        self.expect(&TokenKind::LBracket)?;
        let mut cond = ArrayCond::default();
        if *self.peek() != TokenKind::RBracket {
            cond.size = Some(self.expr()?);
        }
        self.expect(&TokenKind::RBracket)?;
        if self.eat(&TokenKind::Colon) {
            loop {
                self.array_cond(&mut cond)?;
                if !self.eat(&TokenKind::AndAnd) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::Semi)?;
        self.expect(&TokenKind::RBrace)?;
        let where_clause = self.where_clause()?;
        self.eat(&TokenKind::Semi);
        Ok(Decl {
            name,
            params,
            is_record: false,
            is_source: false,
            kind: DeclKind::Array { elem, cond },
            where_clause,
            span: Span::default(),
        })
    }

    fn array_cond(&mut self, cond: &mut ArrayCond) -> Result<(), SyntaxError> {
        if self.eat_kw("Psep") {
            self.expect(&TokenKind::LParen)?;
            let lit = self
                .try_literal()?
                .ok_or_else(|| self.err("expected a literal in Psep(…)"))?;
            self.expect(&TokenKind::RParen)?;
            if cond.sep.replace(lit).is_some() {
                return Err(self.err("duplicate Psep condition"));
            }
        } else if self.eat_kw("Pterm") {
            self.expect(&TokenKind::LParen)?;
            let lit = self
                .try_literal()?
                .ok_or_else(|| self.err("expected a literal, Peor, or Peof in Pterm(…)"))?;
            self.expect(&TokenKind::RParen)?;
            if cond.term.replace(lit).is_some() {
                return Err(self.err("duplicate Pterm condition"));
            }
        } else if self.eat_kw("Pended") {
            self.expect(&TokenKind::LParen)?;
            let e = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            if cond.ended.replace(e).is_some() {
                return Err(self.err("duplicate Pended condition"));
            }
        } else {
            return Err(self.err(format!(
                "expected Psep, Pterm, or Pended, found {}",
                self.peek()
            )));
        }
        Ok(())
    }

    fn enum_decl(&mut self) -> Result<Decl, SyntaxError> {
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut variants = Vec::new();
        loop {
            variants.push(self.ident()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        self.eat(&TokenKind::Semi);
        Ok(Decl {
            name,
            params: Vec::new(),
            is_record: false,
            is_source: false,
            kind: DeclKind::Enum { variants },
            where_clause: None,
            span: Span::default(),
        })
    }

    fn typedef_decl(&mut self) -> Result<Decl, SyntaxError> {
        let base = self.ty_expr()?;
        let name = self.ident()?;
        let (var, pred) = if self.eat(&TokenKind::Colon) {
            // `: response_t x => { expr }` — the type name is repeated.
            let tyname = self.ident()?;
            if tyname != name {
                return Err(self.err(format!(
                    "typedef constraint names type `{tyname}` but the typedef declares `{name}`"
                )));
            }
            let var = self.ident()?;
            self.expect(&TokenKind::FatArrow)?;
            self.expect(&TokenKind::LBrace)?;
            let e = self.expr()?;
            self.eat(&TokenKind::Semi);
            self.expect(&TokenKind::RBrace)?;
            (Some(var), Some(e))
        } else {
            (None, None)
        };
        self.eat(&TokenKind::Semi);
        Ok(Decl {
            name,
            params: Vec::new(),
            is_record: false,
            is_source: false,
            kind: DeclKind::Typedef { base, var, pred },
            where_clause: None,
            span: Span::default(),
        })
    }

    fn func(&mut self) -> Result<FuncDecl, SyntaxError> {
        let start = self.span();
        let ret = self.ident()?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let ty = self.ident()?;
                let pname = self.ident()?;
                params.push(Param { ty, name: pname });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        self.eat(&TokenKind::Semi);
        let span = start.to(self.toks[self.pos.saturating_sub(1)].span);
        Ok(FuncDecl { name, ret, params, body, span })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, SyntaxError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, SyntaxError> {
        if self.eat_kw("if") {
            self.expect(&TokenKind::LParen)?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            let then_body = self.stmt_or_block()?;
            let else_body =
                if self.eat_kw("else") { self.stmt_or_block()? } else { Vec::new() };
            Ok(Stmt::If { cond, then_body, else_body })
        } else if self.eat_kw("return") {
            let e = self.expr()?;
            self.expect(&TokenKind::Semi)?;
            Ok(Stmt::Return(e))
        } else {
            Err(self.err(format!("expected `if` or `return`, found {}", self.peek())))
        }
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, SyntaxError> {
        if *self.peek() == TokenKind::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    // ---- expressions ----------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Expr, SyntaxError> {
        let cond = self.or_expr()?;
        if self.eat(&TokenKind::Question) {
            let then = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let els = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(then), Box::new(els)))
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                TokenKind::Le => BinOp::Le,
                TokenKind::Ge => BinOp::Ge,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Gt => BinOp::Gt,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn add_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, SyntaxError> {
        if self.eat(&TokenKind::Bang) {
            Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
        } else if self.eat(&TokenKind::Minus) {
            Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
        } else {
            self.postfix_expr()
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                let name = self.ident()?;
                e = Expr::Field(Box::new(e), name);
            } else if self.eat(&TokenKind::LBracket) {
                let idx = self.expr()?;
                self.expect(&TokenKind::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if *self.peek() == TokenKind::LParen {
                match e {
                    Expr::Ident(name) => {
                        self.bump();
                        let mut args = Vec::new();
                        if *self.peek() != TokenKind::RParen {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                        e = Expr::Call(name, args);
                    }
                    _ => return Err(self.err("only named functions can be called")),
                }
            } else {
                return Ok(e);
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, SyntaxError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(Expr::Char(c))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::Ident(s) if s == "true" => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            TokenKind::Ident(s) if s == "false" => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            TokenKind::Ident(s) if s == "Pforall" => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let var = self.ident()?;
                self.expect_kw("Pin")?;
                self.expect(&TokenKind::LBracket)?;
                let lo = self.expr()?;
                self.expect(&TokenKind::DotDot)?;
                let hi = self.expr()?;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Colon)?;
                let body = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Forall {
                    var,
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    body: Box::new(body),
                })
            }
            TokenKind::Ident(s) => {
                self.bump();
                Ok(Expr::Ident(s))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_version_t_struct() {
        let src = r#"
            Pstruct version_t {
                "HTTP/";
                Puint8 major; '.';
                Puint8 minor;
            };
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.decls.len(), 1);
        let d = &prog.decls[0];
        assert_eq!(d.name, "version_t");
        match &d.kind {
            DeclKind::Struct { members } => {
                assert_eq!(members.len(), 4);
                assert!(matches!(&members[0], Member::Lit(Literal::Str(s)) if s == "HTTP/"));
                assert!(matches!(&members[2], Member::Lit(Literal::Char(b'.'))));
                match &members[1] {
                    Member::Field(f) => {
                        assert_eq!(f.name, "major");
                        assert_eq!(f.ty.app().name, "Puint8");
                    }
                    other => panic!("expected field, got {other:?}"),
                }
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn parses_union_with_constraint() {
        let src = r#"
            Punion auth_id_t {
                Pchar unauthorized : unauthorized == '-';
                Pstring(:' ':) id;
            };
        "#;
        let prog = parse(src).unwrap();
        match &prog.decls[0].kind {
            DeclKind::Union { switch, branches } => {
                assert!(switch.is_none());
                assert_eq!(branches.len(), 2);
                assert!(branches[0].field.constraint.is_some());
                assert_eq!(branches[1].field.ty.app().args.len(), 1);
            }
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn parses_switched_union() {
        let src = r#"
            Punion payload_t (:Puint8 kind:) Pswitch(kind) {
                Pcase 0: Puint32 count;
                Pcase 1: Pstring(:'|':) text;
                Pdefault: Pvoid unknown;
            };
        "#;
        let prog = parse(src).unwrap();
        match &prog.decls[0].kind {
            DeclKind::Union { switch, branches } => {
                assert!(switch.is_some());
                assert!(matches!(branches[0].case, Some(CaseLabel::Expr(Expr::Int(0)))));
                assert!(matches!(branches[2].case, Some(CaseLabel::Default)));
            }
            other => panic!("expected union, got {other:?}"),
        }
        assert_eq!(prog.decls[0].params.len(), 1);
    }

    #[test]
    fn parses_array_with_conditions_and_where() {
        let src = r#"
            Parray eventSeq {
                event_t[] : Psep ('|') && Pterm ( Peor );
            } Pwhere {
                Pforall (i Pin [0..length-2] :
                    (elts[i].tstamp <= elts[i+1].tstamp));
            };
        "#;
        let prog = parse(src).unwrap();
        let d = &prog.decls[0];
        match &d.kind {
            DeclKind::Array { elem, cond } => {
                assert_eq!(elem.app().name, "event_t");
                assert_eq!(cond.sep, Some(Literal::Char(b'|')));
                assert_eq!(cond.term, Some(Literal::Eor));
                assert!(cond.size.is_none());
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(matches!(d.where_clause, Some(Expr::Forall { .. })));
    }

    #[test]
    fn parses_enum_and_typedef() {
        let src = r#"
            Penum method_t { GET, PUT, POST, HEAD, DELETE, LINK, UNLINK };
            Ptypedef Puint16_FW(:3:) response_t :
                response_t x => { 100 <= x && x < 600};
        "#;
        let prog = parse(src).unwrap();
        match &prog.decls[0].kind {
            DeclKind::Enum { variants } => assert_eq!(variants.len(), 7),
            other => panic!("expected enum, got {other:?}"),
        }
        match &prog.decls[1].kind {
            DeclKind::Typedef { base, var, pred } => {
                assert_eq!(base.app().name, "Puint16_FW");
                assert_eq!(base.app().args, vec![Expr::Int(3)]);
                assert_eq!(var.as_deref(), Some("x"));
                assert!(pred.is_some());
            }
            other => panic!("expected typedef, got {other:?}"),
        }
    }

    #[test]
    fn parses_function_with_if_return() {
        let src = r#"
            bool chkVersion(version_t v, method_t m) {
                if ((v.major == 1) && (v.minor == 1)) return true;
                if ((m == LINK) || (m == UNLINK)) return false;
                return true;
            };
        "#;
        let prog = parse(src).unwrap();
        let f = &prog.funcs[0];
        assert_eq!(f.name, "chkVersion");
        assert_eq!(f.ret, "bool");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.body.len(), 3);
        assert!(matches!(f.body[2], Stmt::Return(Expr::Bool(true))));
    }

    #[test]
    fn parses_popt_fields_and_annotations() {
        let src = r#"
            Precord Pstruct order_header_t {
                Puint32 order_num;
                '|'; Popt pn_t service_tn;
                '|'; Popt Pzip zip_code;
            };
            Psource Parray entries_t { entry_t[]; };
        "#;
        let prog = parse(src).unwrap();
        assert!(prog.decls[0].is_record);
        assert!(prog.decls[1].is_source);
        match &prog.decls[0].kind {
            DeclKind::Struct { members } => {
                let f = match &members[2] {
                    Member::Field(f) => f,
                    other => panic!("expected field, got {other:?}"),
                };
                assert!(matches!(f.ty, TyExpr::Opt(_)));
                assert_eq!(f.ty.app().name, "pn_t");
            }
            other => panic!("expected struct, got {other:?}"),
        }
        assert_eq!(prog.source_decl().unwrap().name, "entries_t");
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3 == 7 && !x || y").unwrap();
        // ((1 + (2*3)) == 7 && !x) || y
        match e {
            Expr::Binary(BinOp::Or, lhs, _) => match *lhs {
                Expr::Binary(BinOp::And, cmp, _) => match *cmp {
                    Expr::Binary(BinOp::Eq, add, _) => {
                        assert!(matches!(*add, Expr::Binary(BinOp::Add, _, _)));
                    }
                    other => panic!("expected ==, got {other:?}"),
                },
                other => panic!("expected &&, got {other:?}"),
            },
            other => panic!("expected ||, got {other:?}"),
        }
    }

    #[test]
    fn ternary_and_calls() {
        let e = parse_expr("f(a, b.c[2]) ? 1 : g()").unwrap();
        assert!(matches!(e, Expr::Ternary(_, _, _)));
    }

    #[test]
    fn error_reporting_has_spans() {
        let err = parse("Pstruct t { Puint8 }").unwrap_err();
        assert!(err.to_string().contains("expected"));
        assert!(err.span().start > 0);
    }

    #[test]
    fn rejects_duplicate_array_conditions() {
        let src = "Parray a { b[] : Psep('|') && Psep(','); };";
        assert!(parse(src).is_err());
    }

    #[test]
    fn typedef_without_constraint() {
        let prog = parse("Ptypedef Puint32 id_t;").unwrap();
        match &prog.decls[0].kind {
            DeclKind::Typedef { var, pred, .. } => {
                assert!(var.is_none());
                assert!(pred.is_none());
            }
            other => panic!("expected typedef, got {other:?}"),
        }
    }

    #[test]
    fn array_with_size_expression() {
        let prog = parse("Parray fixed_t (:Puint32 n:) { Puint8[n]; };").unwrap();
        match &prog.decls[0].kind {
            DeclKind::Array { cond, .. } => {
                assert_eq!(cond.size, Some(Expr::Ident("n".into())));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
}
