//! The metrics sink: aggregate counters and latency summaries over a
//! parse, with Prometheus text-format and JSON exposition.
//!
//! All counters are exact and deterministic for a given input — the JSON
//! `counts` section is diffable across runs and machines and is what the
//! CI golden snapshots pin. Timings (wall-clock latencies, throughput)
//! are inherently non-deterministic and are kept in a separate `timings`
//! section / separate Prometheus metric families.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use pads_runtime::observe::{Observer, RecoveryEvent};
use pads_runtime::{ErrorCode, Loc, ParseDesc, Pos};

use crate::summary::{Histogram, Quantiles};
use crate::util::esc;

/// Records per wall-clock sample in the latency path. Calling
/// `Instant::now()` once per record dominates the observer's overhead on
/// small records (ROADMAP item 3); batching amortises it to one clock
/// read per `LATENCY_BATCH` records, crediting each record in the batch
/// with the batch's mean latency. Counts are unaffected — only the
/// latency distribution is smoothed within a batch.
const LATENCY_BATCH: u32 = 64;

/// Version tag leading a [`MetricsSink::snapshot`] payload.
const SNAPSHOT_VERSION: u8 = 1;

/// Per-type aggregate: how often a named type parsed and how many bytes
/// and errors its parses covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TypeStat {
    /// Completed parses of the type (failed attempts included).
    pub hits: u64,
    /// Total bytes spanned by those parses.
    pub bytes: u64,
    /// Total descriptor errors reported at those parses' exits.
    pub errors: u64,
}

/// An [`Observer`] that aggregates parse events into counters and
/// latency summaries.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    start: Instant,
    last_record: Instant,
    types: BTreeMap<String, TypeStat>,
    errors_by_code: BTreeMap<&'static str, u64>,
    errors_total: u64,
    records: u64,
    records_with_errors: u64,
    records_skipped: u64,
    record_bytes: u64,
    panic_skip_events: u64,
    panic_skipped_bytes: u64,
    budget_exhausted: BTreeMap<&'static str, u64>,
    latency_us: Histogram,
    latency_q: Quantiles,
    /// Records closed since the last latency sample was taken.
    batch_pending: u32,
}

impl Default for MetricsSink {
    fn default() -> MetricsSink {
        MetricsSink::new()
    }
}

impl MetricsSink {
    /// Creates an empty sink; the throughput clock starts now.
    pub fn new() -> MetricsSink {
        let now = Instant::now();
        MetricsSink {
            start: now,
            last_record: now,
            types: BTreeMap::new(),
            errors_by_code: BTreeMap::new(),
            errors_total: 0,
            records: 0,
            records_with_errors: 0,
            records_skipped: 0,
            record_bytes: 0,
            panic_skip_events: 0,
            panic_skipped_bytes: 0,
            budget_exhausted: BTreeMap::new(),
            latency_us: Histogram::new(32),
            latency_q: Quantiles::new(1024, 42),
            batch_pending: 0,
        }
    }

    /// Records closed (skipped records included).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records skipped wholesale by the budget machinery.
    pub fn records_skipped(&self) -> u64 {
        self.records_skipped
    }

    /// Total bytes discarded by panic-mode resynchronisation.
    pub fn panic_skipped_bytes(&self) -> u64 {
        self.panic_skipped_bytes
    }

    /// Total descriptor errors observed.
    pub fn errors_total(&self) -> u64 {
        self.errors_total
    }

    /// Per-type aggregates, in name order.
    pub fn types(&self) -> &BTreeMap<String, TypeStat> {
        &self.types
    }

    /// Error counts keyed by `ErrorCode` variant name, in name order.
    pub fn errors_by_code(&self) -> &BTreeMap<&'static str, u64> {
        &self.errors_by_code
    }

    /// Folds another sink's deterministic counters into this one — the
    /// merge step of a parallel record-sharded parse, where each worker
    /// thread aggregates into its own sink. Counter merging is exact and
    /// order-independent, so `counts_json` over the merged sink matches a
    /// sequential run. Latency summaries are wall-clock samples of the
    /// *worker's* cadence and are deliberately not folded in; timings are
    /// excluded from golden snapshots for the same reason.
    pub fn merge(&mut self, other: &MetricsSink) {
        for (name, t) in &other.types {
            let e = self.types.entry(name.clone()).or_default();
            e.hits += t.hits;
            e.bytes += t.bytes;
            e.errors += t.errors;
        }
        for (code, n) in &other.errors_by_code {
            *self.errors_by_code.entry(code).or_insert(0) += n;
        }
        self.errors_total += other.errors_total;
        self.records += other.records;
        self.records_with_errors += other.records_with_errors;
        self.records_skipped += other.records_skipped;
        self.record_bytes += other.record_bytes;
        self.panic_skip_events += other.panic_skip_events;
        self.panic_skipped_bytes += other.panic_skipped_bytes;
        for (mode, n) in &other.budget_exhausted {
            *self.budget_exhausted.entry(mode).or_insert(0) += n;
        }
    }

    /// Serialises the deterministic counters to a compact binary payload
    /// for embedding in a checkpoint journal frame. Timings (latency
    /// summaries, the throughput clock) are wall-clock state of *this*
    /// process and are deliberately excluded: a restored sink reproduces
    /// `counts_json` exactly and starts its clocks fresh.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut o = Vec::new();
        o.push(SNAPSHOT_VERSION);
        for v in [
            self.records,
            self.records_with_errors,
            self.records_skipped,
            self.record_bytes,
            self.errors_total,
            self.panic_skip_events,
            self.panic_skipped_bytes,
        ] {
            o.extend_from_slice(&v.to_le_bytes());
        }
        let put_str = |o: &mut Vec<u8>, s: &str| {
            o.extend_from_slice(&(s.len() as u16).to_le_bytes());
            o.extend_from_slice(s.as_bytes());
        };
        o.extend_from_slice(&(self.errors_by_code.len() as u32).to_le_bytes());
        for (code, n) in &self.errors_by_code {
            put_str(&mut o, code);
            o.extend_from_slice(&n.to_le_bytes());
        }
        o.extend_from_slice(&(self.budget_exhausted.len() as u32).to_le_bytes());
        for (mode, n) in &self.budget_exhausted {
            put_str(&mut o, mode);
            o.extend_from_slice(&n.to_le_bytes());
        }
        o.extend_from_slice(&(self.types.len() as u32).to_le_bytes());
        for (name, t) in &self.types {
            put_str(&mut o, name);
            o.extend_from_slice(&t.hits.to_le_bytes());
            o.extend_from_slice(&t.bytes.to_le_bytes());
            o.extend_from_slice(&t.errors.to_le_bytes());
        }
        o
    }

    /// Rebuilds a sink from a [`snapshot`](Self::snapshot) payload.
    /// Returns `None` on a malformed or wrong-version payload. Error-code
    /// keys that no longer name an [`ErrorCode`] variant are dropped
    /// (their counts stay in `errors_total`); timings start fresh.
    pub fn restore(bytes: &[u8]) -> Option<MetricsSink> {
        let mut r = Reader { bytes, pos: 0 };
        if r.u8()? != SNAPSHOT_VERSION {
            return None;
        }
        let mut m = MetricsSink::new();
        m.records = r.u64()?;
        m.records_with_errors = r.u64()?;
        m.records_skipped = r.u64()?;
        m.record_bytes = r.u64()?;
        m.errors_total = r.u64()?;
        m.panic_skip_events = r.u64()?;
        m.panic_skipped_bytes = r.u64()?;
        for _ in 0..r.u32()? {
            let name = r.str()?;
            let n = r.u64()?;
            // Map back to the variant's own &'static str so the key has
            // the lifetime the table wants.
            if let Some(code) = ErrorCode::from_name(&name) {
                *m.errors_by_code.entry(code.name()).or_insert(0) += n;
            }
        }
        for _ in 0..r.u32()? {
            let name = r.str()?;
            let n = r.u64()?;
            let key = match name.as_str() {
                "Stop" => "Stop",
                "SkipRecord" => "SkipRecord",
                "BestEffort" => "BestEffort",
                _ => continue,
            };
            *m.budget_exhausted.entry(key).or_insert(0) += n;
        }
        for _ in 0..r.u32()? {
            let name = r.str()?;
            let t = TypeStat { hits: r.u64()?, bytes: r.u64()?, errors: r.u64()? };
            m.types.insert(name, t);
        }
        if r.pos != r.bytes.len() {
            return None;
        }
        Some(m)
    }

    /// The deterministic counters as a pretty-printed JSON object. This
    /// is the golden-snapshot format: no timings, stable key order.
    pub fn counts_json(&self) -> String {
        let mut o = String::new();
        o.push_str("{\n");
        let _ = writeln!(o, "  \"records\": {},", self.records);
        let _ = writeln!(o, "  \"records_with_errors\": {},", self.records_with_errors);
        let _ = writeln!(o, "  \"records_skipped\": {},", self.records_skipped);
        let _ = writeln!(o, "  \"record_bytes\": {},", self.record_bytes);
        let _ = writeln!(o, "  \"errors_total\": {},", self.errors_total);
        o.push_str("  \"errors_by_code\": {");
        for (i, (code, n)) in self.errors_by_code.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(o, "{sep}    \"{code}\": {n}");
        }
        o.push_str(if self.errors_by_code.is_empty() { "},\n" } else { "\n  },\n" });
        o.push_str("  \"recovery\": {\n");
        let _ = writeln!(o, "    \"panic_skip_events\": {},", self.panic_skip_events);
        let _ = writeln!(o, "    \"panic_skipped_bytes\": {},", self.panic_skipped_bytes);
        o.push_str("    \"budget_exhausted\": {");
        for (i, (mode, n)) in self.budget_exhausted.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(o, "{sep}      \"{mode}\": {n}");
        }
        o.push_str(if self.budget_exhausted.is_empty() { "}\n" } else { "\n    }\n" });
        o.push_str("  },\n");
        o.push_str("  \"types\": {");
        for (i, (name, t)) in self.types.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                o,
                "{sep}    \"{}\": {{\"hits\": {}, \"bytes\": {}, \"errors\": {}}}",
                esc(name),
                t.hits,
                t.bytes,
                t.errors
            );
        }
        o.push_str(if self.types.is_empty() { "}\n" } else { "\n  }\n" });
        o.push('}');
        o
    }

    /// Full JSON exposition: `{"counts": …, "timings": …}`. Strip or
    /// ignore `timings` when diffing.
    pub fn json(&self) -> String {
        let counts = indent(&self.counts_json(), "  ");
        let timings = indent(&self.timings_json(), "  ");
        format!("{{\n  \"counts\": {counts},\n  \"timings\": {timings}\n}}")
    }

    fn timings_json(&self) -> String {
        let elapsed = self.start.elapsed().as_secs_f64();
        let mut o = String::new();
        o.push_str("{\n");
        let _ = writeln!(o, "  \"elapsed_seconds\": {:.6},", elapsed);
        let _ = writeln!(o, "  \"records_per_second\": {:.1},", self.rate(self.records, elapsed));
        let _ = writeln!(o, "  \"bytes_per_second\": {:.1},", self.rate(self.record_bytes, elapsed));
        o.push_str("  \"record_latency_us\": {");
        let qs: Vec<(f64, &str)> =
            vec![(0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (1.0, "max")];
        let mut first = true;
        for (q, name) in qs {
            if let Some(v) = self.latency_q.quantile(q) {
                let sep = if first { "" } else { ", " };
                let _ = write!(o, "{sep}\"{name}\": {v:.1}");
                first = false;
            }
        }
        o.push_str("}\n");
        o.push('}');
        o
    }

    fn rate(&self, n: u64, elapsed: f64) -> f64 {
        if elapsed > 0.0 {
            n as f64 / elapsed
        } else {
            0.0
        }
    }

    /// Prometheus text exposition format (counters plus latency
    /// quantiles as a summary metric).
    pub fn prometheus(&self) -> String {
        let mut o = String::new();
        let c = |o: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(o, "# HELP {name} {help}");
            let _ = writeln!(o, "# TYPE {name} counter");
            let _ = writeln!(o, "{name} {v}");
        };
        c(&mut o, "pads_records_total", "Records closed (skipped included).", self.records);
        c(
            &mut o,
            "pads_records_with_errors_total",
            "Records closed with at least one error.",
            self.records_with_errors,
        );
        c(
            &mut o,
            "pads_records_skipped_total",
            "Records skipped wholesale under OnExhausted::SkipRecord.",
            self.records_skipped,
        );
        c(&mut o, "pads_record_bytes_total", "Bytes covered by closed records.", self.record_bytes);
        c(&mut o, "pads_errors_total", "Descriptor errors observed.", self.errors_total);

        let _ = writeln!(o, "# HELP pads_errors_by_code_total Errors by ErrorCode variant.");
        let _ = writeln!(o, "# TYPE pads_errors_by_code_total counter");
        for (code, n) in &self.errors_by_code {
            let _ = writeln!(o, "pads_errors_by_code_total{{code=\"{code}\"}} {n}");
        }

        c(
            &mut o,
            "pads_panic_skip_events_total",
            "Panic-mode resynchronisation events.",
            self.panic_skip_events,
        );
        c(
            &mut o,
            "pads_panic_skipped_bytes_total",
            "Bytes discarded by panic-mode resynchronisation.",
            self.panic_skipped_bytes,
        );
        let _ = writeln!(o, "# HELP pads_budget_exhausted_total Budget exhaustion transitions.");
        let _ = writeln!(o, "# TYPE pads_budget_exhausted_total counter");
        for (mode, n) in &self.budget_exhausted {
            let _ = writeln!(o, "pads_budget_exhausted_total{{mode=\"{mode}\"}} {n}");
        }

        let _ = writeln!(o, "# HELP pads_type_hits_total Parses per named type.");
        let _ = writeln!(o, "# TYPE pads_type_hits_total counter");
        for (name, t) in &self.types {
            let _ = writeln!(o, "pads_type_hits_total{{type=\"{}\"}} {}", esc(name), t.hits);
        }
        let _ = writeln!(o, "# HELP pads_type_bytes_total Bytes spanned per named type.");
        let _ = writeln!(o, "# TYPE pads_type_bytes_total counter");
        for (name, t) in &self.types {
            let _ = writeln!(o, "pads_type_bytes_total{{type=\"{}\"}} {}", esc(name), t.bytes);
        }
        let _ = writeln!(o, "# HELP pads_type_errors_total Errors per named type.");
        let _ = writeln!(o, "# TYPE pads_type_errors_total counter");
        for (name, t) in &self.types {
            let _ = writeln!(o, "pads_type_errors_total{{type=\"{}\"}} {}", esc(name), t.errors);
        }

        let _ = writeln!(o, "# HELP pads_record_latency_seconds Per-record parse latency.");
        let _ = writeln!(o, "# TYPE pads_record_latency_seconds summary");
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            if let Some(us) = self.latency_q.quantile(q) {
                let _ = writeln!(
                    o,
                    "pads_record_latency_seconds{{quantile=\"{label}\"}} {:.9}",
                    us / 1e6
                );
            }
        }
        let _ = writeln!(
            o,
            "pads_record_latency_seconds_count {}",
            self.latency_q.count() + u64::from(self.batch_pending)
        );
        o
    }

    /// A one-line human summary for stderr, alongside the CLI's per-code
    /// error listing.
    pub fn summary_line(&self) -> String {
        let elapsed = self.start.elapsed().as_secs_f64();
        let mb = self.record_bytes as f64 / (1024.0 * 1024.0);
        let mbps = if elapsed > 0.0 { mb / elapsed } else { 0.0 };
        format!(
            "metrics: {} records ({} bad, {} skipped), {} errors, {} bytes in {:.1} ms ({:.1} MiB/s)",
            self.records,
            self.records_with_errors,
            self.records_skipped,
            self.errors_total,
            self.record_bytes,
            elapsed * 1e3,
            mbps
        )
    }
}

/// Bounds-checked little-endian reader over a snapshot payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)?.try_into().ok().map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)?.try_into().ok().map(u64::from_le_bytes)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.take(2)?.try_into().ok().map(u16::from_le_bytes)?;
        let s = self.take(len as usize)?;
        String::from_utf8(s.to_vec()).ok()
    }
}

/// Re-indents every line after the first by `pad` (for nesting one
/// pretty-printed object inside another).
fn indent(s: &str, pad: &str) -> String {
    let mut out = String::new();
    for (i, line) in s.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(pad);
        }
        out.push_str(line);
    }
    out
}

impl Observer for MetricsSink {
    fn type_exit(&mut self, name: &str, start: Pos, end: Pos, pd: &ParseDesc) {
        let t = self.types.entry(name.to_owned()).or_default();
        t.hits += 1;
        t.bytes += end.offset.saturating_sub(start.offset) as u64;
        t.errors += pd.nerr as u64;
    }

    fn error(&mut self, _path: &str, code: ErrorCode, _loc: Option<Loc>) {
        self.errors_total += 1;
        *self.errors_by_code.entry(code.name()).or_insert(0) += 1;
    }

    fn recovery(&mut self, event: RecoveryEvent, _pos: Pos) {
        match event {
            RecoveryEvent::PanicSkip { bytes } => {
                self.panic_skip_events += 1;
                self.panic_skipped_bytes += bytes;
            }
            RecoveryEvent::SkipRecord => self.records_skipped += 1,
            RecoveryEvent::BudgetExhausted { mode } => {
                let name = match mode {
                    pads_runtime::OnExhausted::Stop => "Stop",
                    pads_runtime::OnExhausted::SkipRecord => "SkipRecord",
                    pads_runtime::OnExhausted::BestEffort => "BestEffort",
                };
                *self.budget_exhausted.entry(name).or_insert(0) += 1;
            }
        }
    }

    fn record(&mut self, _index: usize, span: Loc, nerr: u32) {
        self.records += 1;
        if nerr > 0 {
            self.records_with_errors += 1;
        }
        self.record_bytes += span.end.offset.saturating_sub(span.begin.offset) as u64;
        // Batched latency sampling: one clock read per LATENCY_BATCH
        // records, with the batch's mean credited to each record in it.
        self.batch_pending += 1;
        if self.batch_pending >= LATENCY_BATCH {
            let now = Instant::now();
            let us = now.duration_since(self.last_record).as_secs_f64() * 1e6
                / f64::from(self.batch_pending);
            self.last_record = now;
            for _ in 0..self.batch_pending {
                self.latency_us.add(us);
                self.latency_q.add(us);
            }
            self.batch_pending = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::OnExhausted;

    #[test]
    fn counts_json_is_deterministic_and_ordered() {
        let mut m = MetricsSink::new();
        m.type_exit("b_t", Pos::default(), Pos { offset: 4, record: 0, byte: 4 }, &ParseDesc::default());
        m.type_exit("a_t", Pos::default(), Pos { offset: 2, record: 0, byte: 2 }, &ParseDesc::default());
        m.error("x", ErrorCode::LitMismatch, None);
        m.record(0, Loc::default(), 1);
        let a = m.counts_json();
        let b = m.counts_json();
        assert_eq!(a, b);
        // BTreeMap ordering: a_t before b_t.
        let ia = a.find("a_t").unwrap();
        let ib = a.find("b_t").unwrap();
        assert!(ia < ib, "{a}");
        assert!(a.contains("\"errors_total\": 1"));
        assert!(a.contains("\"records\": 1"));
    }

    #[test]
    fn recovery_events_tally() {
        let mut m = MetricsSink::new();
        m.recovery(RecoveryEvent::PanicSkip { bytes: 7 }, Pos::default());
        m.recovery(RecoveryEvent::SkipRecord, Pos::default());
        m.recovery(
            RecoveryEvent::BudgetExhausted { mode: OnExhausted::BestEffort },
            Pos::default(),
        );
        assert_eq!(m.panic_skipped_bytes(), 7);
        assert_eq!(m.records_skipped(), 1);
        assert!(m.counts_json().contains("\"BestEffort\": 1"));
    }

    #[test]
    fn merge_folds_counters_exactly() {
        let mut a = MetricsSink::new();
        a.type_exit("t", Pos::default(), Pos { offset: 4, record: 0, byte: 4 }, &ParseDesc::default());
        a.error("x", ErrorCode::LitMismatch, None);
        a.record(0, Loc::default(), 1);
        let mut b = MetricsSink::new();
        b.type_exit("t", Pos::default(), Pos { offset: 2, record: 0, byte: 2 }, &ParseDesc::default());
        b.error("y", ErrorCode::RangeError, None);
        b.recovery(RecoveryEvent::SkipRecord, Pos::default());
        b.record(1, Loc::default(), 0);

        // One sink fed both streams sequentially == two sinks merged.
        let mut seq = MetricsSink::new();
        seq.type_exit("t", Pos::default(), Pos { offset: 4, record: 0, byte: 4 }, &ParseDesc::default());
        seq.error("x", ErrorCode::LitMismatch, None);
        seq.record(0, Loc::default(), 1);
        seq.type_exit("t", Pos::default(), Pos { offset: 2, record: 0, byte: 2 }, &ParseDesc::default());
        seq.error("y", ErrorCode::RangeError, None);
        seq.recovery(RecoveryEvent::SkipRecord, Pos::default());
        seq.record(1, Loc::default(), 0);

        a.merge(&b);
        assert_eq!(a.counts_json(), seq.counts_json());
    }

    #[test]
    fn prometheus_has_core_families() {
        let mut m = MetricsSink::new();
        m.record(0, Loc::default(), 0);
        let text = m.prometheus();
        assert!(text.contains("pads_records_total 1"));
        assert!(text.contains("# TYPE pads_records_total counter"));
        assert!(text.contains("pads_record_latency_seconds_count 1"));
    }

    #[test]
    fn snapshot_restore_reproduces_counts_json() {
        let mut m = MetricsSink::new();
        m.type_exit("b_t", Pos::default(), Pos { offset: 4, record: 0, byte: 4 }, &ParseDesc::default());
        m.type_exit("a_t", Pos::default(), Pos { offset: 2, record: 0, byte: 2 }, &ParseDesc::default());
        m.error("x", ErrorCode::LitMismatch, None);
        m.error("x", ErrorCode::RangeError, None);
        m.recovery(RecoveryEvent::PanicSkip { bytes: 7 }, Pos::default());
        m.recovery(RecoveryEvent::SkipRecord, Pos::default());
        m.recovery(RecoveryEvent::BudgetExhausted { mode: OnExhausted::Stop }, Pos::default());
        m.record(0, Loc::default(), 1);
        m.record(1, Loc::default(), 0);
        let restored = MetricsSink::restore(&m.snapshot()).expect("roundtrips");
        assert_eq!(restored.counts_json(), m.counts_json());
    }

    #[test]
    fn restore_rejects_malformed_payloads() {
        let m = MetricsSink::new();
        let snap = m.snapshot();
        assert!(MetricsSink::restore(&[]).is_none(), "empty");
        assert!(MetricsSink::restore(&snap[..snap.len() - 1]).is_none(), "truncated");
        let mut wrong = snap.clone();
        wrong[0] = SNAPSHOT_VERSION + 1;
        assert!(MetricsSink::restore(&wrong).is_none(), "wrong version");
        let mut trailing = snap;
        trailing.push(0);
        assert!(MetricsSink::restore(&trailing).is_none(), "trailing bytes");
    }

    #[test]
    fn latency_samples_batch_but_count_every_record() {
        let mut m = MetricsSink::new();
        for i in 0..(LATENCY_BATCH as usize * 2 + 5) {
            m.record(i, Loc::default(), 0);
        }
        // Two full batches sampled; 5 records still pending.
        assert_eq!(m.latency_q.count(), u64::from(LATENCY_BATCH) * 2);
        assert_eq!(m.batch_pending, 5);
        let expect = format!(
            "pads_record_latency_seconds_count {}",
            u64::from(LATENCY_BATCH) * 2 + 5
        );
        assert!(m.prometheus().contains(&expect));
    }

    #[test]
    fn json_wraps_counts_and_timings() {
        let m = MetricsSink::new();
        let j = m.json();
        assert!(j.contains("\"counts\""));
        assert!(j.contains("\"timings\""));
        assert!(j.contains("\"elapsed_seconds\""));
    }
}
