//! The metrics sink: exposition surfaces over the dense-id
//! [`MetricsCore`], with Prometheus text-format and JSON output.
//!
//! Aggregation lives in [`pads_runtime::metrics`]: the core is a plain
//! `Send` struct bumping flat `Vec`-indexed counter slabs by node id, so
//! the hot path never touches a string — names are rejoined here, at
//! exposition time. `MetricsSink` wraps one core and renders it; it also
//! still implements the legacy [`Observer`] trait (interning names per
//! event) as a compatibility surface for event-stream plumbing such as
//! [`Fanout`](crate::Fanout).
//!
//! All counters are exact and deterministic for a given input — the JSON
//! `counts` section is diffable across runs and machines and is what the
//! CI golden snapshots pin. Timings (wall-clock latencies, throughput)
//! are inherently non-deterministic and are kept in a separate `timings`
//! section / separate Prometheus metric families.

use std::fmt::Write as _;

use pads_runtime::metrics::MetricsCore;
use pads_runtime::observe::{Observer, RecoveryEvent};
use pads_runtime::{ErrorCode, Loc, ParseDesc, Pos};

use crate::util::esc;

pub use pads_runtime::metrics::TypeStat;

/// Aggregated parse metrics with Prometheus and JSON exposition: a thin
/// rendering wrapper around a [`MetricsCore`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    core: MetricsCore,
}

impl MetricsSink {
    /// Creates an empty sink; the throughput clock starts now. The
    /// wrapped core interns type names lazily — when the schema's type
    /// list is known, prefer building a
    /// [`MetricsCore::with_names`] core and attaching it directly to the
    /// cursor so the hot path runs on dense ids.
    pub fn new() -> MetricsSink {
        MetricsSink { core: MetricsCore::new() }
    }

    /// Wraps an existing core (e.g. one harvested from a worker shard or
    /// drained from a cursor attachment) for exposition.
    pub fn from_core(core: MetricsCore) -> MetricsSink {
        MetricsSink { core }
    }

    /// The wrapped core.
    pub fn core(&self) -> &MetricsCore {
        &self.core
    }

    /// The wrapped core, mutably.
    pub fn core_mut(&mut self) -> &mut MetricsCore {
        &mut self.core
    }

    /// Unwraps into the core.
    pub fn into_core(self) -> MetricsCore {
        self.core
    }

    /// Records closed (skipped records included).
    pub fn records(&self) -> u64 {
        self.core.records()
    }

    /// Records skipped wholesale by the budget machinery.
    pub fn records_skipped(&self) -> u64 {
        self.core.records_skipped()
    }

    /// Total bytes discarded by panic-mode resynchronisation.
    pub fn panic_skipped_bytes(&self) -> u64 {
        self.core.panic_skipped_bytes()
    }

    /// Total descriptor errors observed.
    pub fn errors_total(&self) -> u64 {
        self.core.errors_total()
    }

    /// Per-type aggregates with at least one event, in name order.
    pub fn types(&self) -> Vec<(&str, TypeStat)> {
        self.core.sorted_types()
    }

    /// Nonzero error counts keyed by `ErrorCode` variant name, in name
    /// order.
    pub fn errors_by_code(&self) -> Vec<(&'static str, u64)> {
        self.core.sorted_error_codes()
    }

    /// Folds another sink's deterministic counters into this one — the
    /// merge step of a parallel record-sharded parse, where each worker
    /// thread aggregates into its own sink. The fold is name-keyed and
    /// order-independent, so `counts_json` over the merged sink matches
    /// a sequential run. Latency summaries are wall-clock samples of the
    /// *worker's* cadence and are deliberately not folded in; timings
    /// are excluded from golden snapshots for the same reason.
    pub fn merge(&mut self, other: &MetricsSink) {
        self.core.merge(&other.core);
    }

    /// Serialises the deterministic counters to a compact binary payload
    /// for embedding in a checkpoint journal frame; see
    /// [`MetricsCore::snapshot`] (the byte format is unchanged from the
    /// pre-dense sink).
    pub fn snapshot(&self) -> Vec<u8> {
        self.core.snapshot()
    }

    /// Rebuilds a sink from a [`snapshot`](Self::snapshot) payload;
    /// `None` on a malformed or wrong-version payload. See
    /// [`MetricsCore::restore`].
    pub fn restore(bytes: &[u8]) -> Option<MetricsSink> {
        MetricsCore::restore(bytes).map(MetricsSink::from_core)
    }

    /// The deterministic counters as a pretty-printed JSON object. This
    /// is the golden-snapshot format: no timings, stable key order.
    pub fn counts_json(&self) -> String {
        let mut o = String::new();
        o.push_str("{\n");
        let _ = writeln!(o, "  \"records\": {},", self.core.records());
        let _ = writeln!(o, "  \"records_with_errors\": {},", self.core.records_with_errors());
        let _ = writeln!(o, "  \"records_skipped\": {},", self.core.records_skipped());
        let _ = writeln!(o, "  \"record_bytes\": {},", self.core.record_bytes());
        let _ = writeln!(o, "  \"errors_total\": {},", self.core.errors_total());
        o.push_str("  \"errors_by_code\": {");
        let codes = self.core.sorted_error_codes();
        for (i, (code, n)) in codes.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(o, "{sep}    \"{code}\": {n}");
        }
        o.push_str(if codes.is_empty() { "},\n" } else { "\n  },\n" });
        o.push_str("  \"recovery\": {\n");
        let _ = writeln!(o, "    \"panic_skip_events\": {},", self.core.panic_skip_events());
        let _ = writeln!(o, "    \"panic_skipped_bytes\": {},", self.core.panic_skipped_bytes());
        o.push_str("    \"budget_exhausted\": {");
        let modes = self.core.sorted_budget_modes();
        for (i, (mode, n)) in modes.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(o, "{sep}      \"{mode}\": {n}");
        }
        o.push_str(if modes.is_empty() { "}\n" } else { "\n    }\n" });
        o.push_str("  },\n");
        o.push_str("  \"types\": {");
        let types = self.core.sorted_types();
        for (i, (name, t)) in types.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                o,
                "{sep}    \"{}\": {{\"hits\": {}, \"bytes\": {}, \"errors\": {}}}",
                esc(name),
                t.hits,
                t.bytes,
                t.errors
            );
        }
        o.push_str(if types.is_empty() { "}\n" } else { "\n  }\n" });
        o.push('}');
        o
    }

    /// Full JSON exposition: `{"counts": …, "timings": …}`. Strip or
    /// ignore `timings` when diffing.
    pub fn json(&self) -> String {
        let counts = indent(&self.counts_json(), "  ");
        let timings = indent(&self.timings_json(), "  ");
        format!("{{\n  \"counts\": {counts},\n  \"timings\": {timings}\n}}")
    }

    fn timings_json(&self) -> String {
        let elapsed = self.core.elapsed_seconds();
        let mut o = String::new();
        o.push_str("{\n");
        let _ = writeln!(o, "  \"elapsed_seconds\": {:.6},", elapsed);
        let _ =
            writeln!(o, "  \"records_per_second\": {:.1},", rate(self.core.records(), elapsed));
        let _ = writeln!(
            o,
            "  \"bytes_per_second\": {:.1},",
            rate(self.core.record_bytes(), elapsed)
        );
        o.push_str("  \"record_latency_us\": {");
        let qs: Vec<(f64, &str)> =
            vec![(0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (1.0, "max")];
        let mut first = true;
        for (q, name) in qs {
            if let Some(v) = self.core.latency_quantile(q) {
                let sep = if first { "" } else { ", " };
                let _ = write!(o, "{sep}\"{name}\": {v:.1}");
                first = false;
            }
        }
        o.push_str("}\n");
        o.push('}');
        o
    }

    /// Prometheus text exposition format: every family led by its
    /// `# HELP` / `# TYPE` headers, label values escaped (counters plus
    /// latency quantiles as a summary metric).
    pub fn prometheus(&self) -> String {
        let mut o = String::new();
        let c = |o: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(o, "# HELP {name} {help}");
            let _ = writeln!(o, "# TYPE {name} counter");
            let _ = writeln!(o, "{name} {v}");
        };
        c(&mut o, "pads_records_total", "Records closed (skipped included).", self.core.records());
        c(
            &mut o,
            "pads_records_with_errors_total",
            "Records closed with at least one error.",
            self.core.records_with_errors(),
        );
        c(
            &mut o,
            "pads_records_skipped_total",
            "Records skipped wholesale under OnExhausted::SkipRecord.",
            self.core.records_skipped(),
        );
        c(
            &mut o,
            "pads_record_bytes_total",
            "Bytes covered by closed records.",
            self.core.record_bytes(),
        );
        c(&mut o, "pads_errors_total", "Descriptor errors observed.", self.core.errors_total());

        let _ = writeln!(o, "# HELP pads_errors_by_code_total Errors by ErrorCode variant.");
        let _ = writeln!(o, "# TYPE pads_errors_by_code_total counter");
        for (code, n) in self.core.sorted_error_codes() {
            let _ = writeln!(o, "pads_errors_by_code_total{{code=\"{code}\"}} {n}");
        }

        c(
            &mut o,
            "pads_panic_skip_events_total",
            "Panic-mode resynchronisation events.",
            self.core.panic_skip_events(),
        );
        c(
            &mut o,
            "pads_panic_skipped_bytes_total",
            "Bytes discarded by panic-mode resynchronisation.",
            self.core.panic_skipped_bytes(),
        );
        let _ = writeln!(o, "# HELP pads_budget_exhausted_total Budget exhaustion transitions.");
        let _ = writeln!(o, "# TYPE pads_budget_exhausted_total counter");
        for (mode, n) in self.core.sorted_budget_modes() {
            let _ = writeln!(o, "pads_budget_exhausted_total{{mode=\"{mode}\"}} {n}");
        }

        let types = self.core.sorted_types();
        let _ = writeln!(o, "# HELP pads_type_hits_total Parses per named type.");
        let _ = writeln!(o, "# TYPE pads_type_hits_total counter");
        for (name, t) in &types {
            let _ = writeln!(o, "pads_type_hits_total{{type=\"{}\"}} {}", esc(name), t.hits);
        }
        let _ = writeln!(o, "# HELP pads_type_bytes_total Bytes spanned per named type.");
        let _ = writeln!(o, "# TYPE pads_type_bytes_total counter");
        for (name, t) in &types {
            let _ = writeln!(o, "pads_type_bytes_total{{type=\"{}\"}} {}", esc(name), t.bytes);
        }
        let _ = writeln!(o, "# HELP pads_type_errors_total Errors per named type.");
        let _ = writeln!(o, "# TYPE pads_type_errors_total counter");
        for (name, t) in &types {
            let _ = writeln!(o, "pads_type_errors_total{{type=\"{}\"}} {}", esc(name), t.errors);
        }

        let _ = writeln!(o, "# HELP pads_record_latency_seconds Per-record parse latency.");
        let _ = writeln!(o, "# TYPE pads_record_latency_seconds summary");
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            if let Some(us) = self.core.latency_quantile(q) {
                let _ = writeln!(
                    o,
                    "pads_record_latency_seconds{{quantile=\"{label}\"}} {:.9}",
                    us / 1e6
                );
            }
        }
        let _ = writeln!(o, "pads_record_latency_seconds_count {}", self.core.latency_count());
        o
    }

    /// A one-line human summary for stderr, alongside the CLI's per-code
    /// error listing.
    pub fn summary_line(&self) -> String {
        let elapsed = self.core.elapsed_seconds();
        let mb = self.core.record_bytes() as f64 / (1024.0 * 1024.0);
        let mbps = if elapsed > 0.0 { mb / elapsed } else { 0.0 };
        format!(
            "metrics: {} records ({} bad, {} skipped), {} errors, {} bytes in {:.1} ms ({:.1} MiB/s)",
            self.core.records(),
            self.core.records_with_errors(),
            self.core.records_skipped(),
            self.core.errors_total(),
            self.core.record_bytes(),
            elapsed * 1e3,
            mbps
        )
    }
}

fn rate(n: u64, elapsed: f64) -> f64 {
    if elapsed > 0.0 {
        n as f64 / elapsed
    } else {
        0.0
    }
}

/// Re-indents every line after the first by `pad` (for nesting one
/// pretty-printed object inside another).
fn indent(s: &str, pad: &str) -> String {
    let mut out = String::new();
    for (i, line) in s.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(pad);
        }
        out.push_str(line);
    }
    out
}

/// Legacy event-stream compatibility: a sink driven through the
/// [`Observer`] trait interns each event's name into its core. The dense
/// cursor attachment ([`Cursor::with_metrics`]) is the fast path; this
/// impl keeps `Fanout`, tests, and existing plumbing working unchanged.
///
/// [`Cursor::with_metrics`]: pads_runtime::Cursor::with_metrics
impl Observer for MetricsSink {
    fn type_exit(&mut self, name: &str, start: Pos, end: Pos, pd: &ParseDesc) {
        self.core.note_type(name, end.offset.saturating_sub(start.offset) as u64, pd.nerr);
    }

    fn error(&mut self, _path: &str, code: ErrorCode, _loc: Option<Loc>) {
        self.core.note_error(code);
    }

    fn recovery(&mut self, event: RecoveryEvent, _pos: Pos) {
        self.core.note_recovery(event);
    }

    fn record(&mut self, _index: usize, span: Loc, nerr: u32) {
        self.core.note_record(span.end.offset.saturating_sub(span.begin.offset) as u64, nerr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::metrics::MetricsCore;
    use pads_runtime::OnExhausted;

    #[test]
    fn counts_json_is_deterministic_and_ordered() {
        let mut m = MetricsSink::new();
        m.type_exit("b_t", Pos::default(), Pos { offset: 4, record: 0, byte: 4 }, &ParseDesc::default());
        m.type_exit("a_t", Pos::default(), Pos { offset: 2, record: 0, byte: 2 }, &ParseDesc::default());
        m.error("x", ErrorCode::LitMismatch, None);
        m.record(0, Loc::default(), 1);
        let a = m.counts_json();
        let b = m.counts_json();
        assert_eq!(a, b);
        // Name-sorted exposition: a_t before b_t.
        let ia = a.find("a_t").unwrap();
        let ib = a.find("b_t").unwrap();
        assert!(ia < ib, "{a}");
        assert!(a.contains("\"errors_total\": 1"));
        assert!(a.contains("\"records\": 1"));
    }

    #[test]
    fn recovery_events_tally() {
        let mut m = MetricsSink::new();
        m.recovery(RecoveryEvent::PanicSkip { bytes: 7 }, Pos::default());
        m.recovery(RecoveryEvent::SkipRecord, Pos::default());
        m.recovery(
            RecoveryEvent::BudgetExhausted { mode: OnExhausted::BestEffort },
            Pos::default(),
        );
        assert_eq!(m.panic_skipped_bytes(), 7);
        assert_eq!(m.records_skipped(), 1);
        assert!(m.counts_json().contains("\"BestEffort\": 1"));
    }

    #[test]
    fn merge_folds_counters_exactly() {
        let mut a = MetricsSink::new();
        a.type_exit("t", Pos::default(), Pos { offset: 4, record: 0, byte: 4 }, &ParseDesc::default());
        a.error("x", ErrorCode::LitMismatch, None);
        a.record(0, Loc::default(), 1);
        let mut b = MetricsSink::new();
        b.type_exit("t", Pos::default(), Pos { offset: 2, record: 0, byte: 2 }, &ParseDesc::default());
        b.error("y", ErrorCode::RangeError, None);
        b.recovery(RecoveryEvent::SkipRecord, Pos::default());
        b.record(1, Loc::default(), 0);

        // One sink fed both streams sequentially == two sinks merged.
        let mut seq = MetricsSink::new();
        seq.type_exit("t", Pos::default(), Pos { offset: 4, record: 0, byte: 4 }, &ParseDesc::default());
        seq.error("x", ErrorCode::LitMismatch, None);
        seq.record(0, Loc::default(), 1);
        seq.type_exit("t", Pos::default(), Pos { offset: 2, record: 0, byte: 2 }, &ParseDesc::default());
        seq.error("y", ErrorCode::RangeError, None);
        seq.recovery(RecoveryEvent::SkipRecord, Pos::default());
        seq.record(1, Loc::default(), 0);

        a.merge(&b);
        assert_eq!(a.counts_json(), seq.counts_json());
    }

    #[test]
    fn dense_core_exposition_matches_legacy_observer_feed() {
        // The same event stream fed (a) through the legacy Observer impl
        // and (b) into a schema-built dense core must render to the same
        // bytes — the property that keeps golden snapshots unchanged.
        let mut legacy = MetricsSink::new();
        legacy.type_exit(
            "entry_t",
            Pos::default(),
            Pos { offset: 10, record: 0, byte: 10 },
            &ParseDesc::default(),
        );
        legacy.type_exit(
            "client_t",
            Pos::default(),
            Pos { offset: 4, record: 0, byte: 4 },
            &ParseDesc::default(),
        );
        legacy.error("p", ErrorCode::LitMismatch, None);
        legacy.record(0, Loc::default(), 1);

        let mut core = MetricsCore::with_names(["entry_t", "client_t", "unused_t"]);
        core.exit_id(0, "entry_t", 0, 10, 0);
        core.exit_id(1, "client_t", 0, 4, 0);
        core.note_error(ErrorCode::LitMismatch);
        core.note_record(0, 1);
        let dense = MetricsSink::from_core(core);
        assert_eq!(dense.counts_json(), legacy.counts_json());
        // Timing families aside, the Prometheus counter lines agree too.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("latency"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&dense.prometheus()), strip(&legacy.prometheus()));
    }

    #[test]
    fn prometheus_has_core_families() {
        let mut m = MetricsSink::new();
        m.record(0, Loc::default(), 0);
        let text = m.prometheus();
        assert!(text.contains("pads_records_total 1"));
        assert!(text.contains("# TYPE pads_records_total counter"));
        assert!(text.contains("pads_record_latency_seconds_count 1"));
    }

    #[test]
    fn prometheus_headers_precede_every_family() {
        let mut m = MetricsSink::new();
        m.type_exit("t", Pos::default(), Pos { offset: 1, record: 0, byte: 1 }, &ParseDesc::default());
        m.record(0, Loc::default(), 0);
        let text = m.prometheus();
        for family in [
            "pads_records_total",
            "pads_records_with_errors_total",
            "pads_records_skipped_total",
            "pads_record_bytes_total",
            "pads_errors_total",
            "pads_errors_by_code_total",
            "pads_panic_skip_events_total",
            "pads_panic_skipped_bytes_total",
            "pads_budget_exhausted_total",
            "pads_type_hits_total",
            "pads_type_bytes_total",
            "pads_type_errors_total",
            "pads_record_latency_seconds",
        ] {
            let help = format!("# HELP {family} ");
            let ty = format!("# TYPE {family} ");
            let h = text.find(&help).unwrap_or_else(|| panic!("no HELP for {family}"));
            let t = text.find(&ty).unwrap_or_else(|| panic!("no TYPE for {family}"));
            assert!(h < t, "HELP after TYPE for {family}");
            // The first sample of the family comes after its headers.
            let sample = text.find(&format!("\n{family}")).unwrap_or(usize::MAX);
            assert!(t < sample, "sample before headers for {family}");
        }
    }

    /// Golden snapshot for label-value escaping: a hostile type name must
    /// come out byte-exactly escaped in both expositions.
    #[test]
    fn escaping_of_type_names_is_pinned() {
        let mut m = MetricsSink::new();
        m.type_exit(
            "weird\"name\\with\nnasties",
            Pos::default(),
            Pos { offset: 3, record: 0, byte: 3 },
            &ParseDesc::default(),
        );
        let prom = m.prometheus();
        assert!(
            prom.contains(r#"pads_type_hits_total{type="weird\"name\\with\nnasties"} 1"#),
            "{prom}"
        );
        let json = m.counts_json();
        assert!(
            json.contains(r#""weird\"name\\with\nnasties": {"hits": 1, "bytes": 3, "errors": 0}"#),
            "{json}"
        );
    }

    #[test]
    fn snapshot_restore_reproduces_counts_json() {
        let mut m = MetricsSink::new();
        m.type_exit("b_t", Pos::default(), Pos { offset: 4, record: 0, byte: 4 }, &ParseDesc::default());
        m.type_exit("a_t", Pos::default(), Pos { offset: 2, record: 0, byte: 2 }, &ParseDesc::default());
        m.error("x", ErrorCode::LitMismatch, None);
        m.error("x", ErrorCode::RangeError, None);
        m.recovery(RecoveryEvent::PanicSkip { bytes: 7 }, Pos::default());
        m.recovery(RecoveryEvent::SkipRecord, Pos::default());
        m.recovery(RecoveryEvent::BudgetExhausted { mode: OnExhausted::Stop }, Pos::default());
        m.record(0, Loc::default(), 1);
        m.record(1, Loc::default(), 0);
        let restored = MetricsSink::restore(&m.snapshot()).expect("roundtrips");
        assert_eq!(restored.counts_json(), m.counts_json());
    }

    #[test]
    fn restore_rejects_malformed_payloads() {
        let m = MetricsSink::new();
        let snap = m.snapshot();
        assert!(MetricsSink::restore(&[]).is_none(), "empty");
        assert!(MetricsSink::restore(&snap[..snap.len() - 1]).is_none(), "truncated");
        let mut wrong = snap.clone();
        wrong[0] = wrong[0].wrapping_add(1);
        assert!(MetricsSink::restore(&wrong).is_none(), "wrong version");
        let mut trailing = snap;
        trailing.push(0);
        assert!(MetricsSink::restore(&trailing).is_none(), "trailing bytes");
    }

    /// Codec edge case: a sink that never sampled a latency batch (fewer
    /// than LATENCY_BATCH records — the empty-histogram case) must
    /// round-trip and expose cleanly.
    #[test]
    fn snapshot_with_empty_latency_histogram_roundtrips() {
        let mut m = MetricsSink::new();
        m.record(0, Loc::default(), 0);
        let restored = MetricsSink::restore(&m.snapshot()).expect("roundtrips");
        assert_eq!(restored.counts_json(), m.counts_json());
        // The live sink counts the record even though no batch has been
        // sampled yet; latency state is wall-clock and is not persisted,
        // so the restored sink starts its summary fresh.
        assert!(m.prometheus().contains("pads_record_latency_seconds_count 1"));
        assert!(restored.prometheus().contains("pads_record_latency_seconds_count 0"));
        // And no quantile lines, since the histogram is empty.
        assert!(!restored.prometheus().contains("quantile=\"0.5\""));
    }

    /// Codec edge case: counters at or near u64::MAX must saturate, not
    /// wrap, through snapshot → restore (restore folds with
    /// saturating_add) and through merge.
    #[test]
    fn saturating_counters_survive_restore_and_merge() {
        let mut m = MetricsSink::new();
        m.type_exit(
            "t",
            Pos::default(),
            Pos { offset: 4, record: 0, byte: 4 },
            &ParseDesc::default(),
        );
        m.core_mut().note_type("t", u64::MAX - 2, 0);
        let mut other = MetricsSink::new();
        other.core_mut().note_type("t", 100, 0);
        m.merge(&other);
        let types = m.types();
        assert_eq!(types[0].1.bytes, u64::MAX, "merge saturates");
        let restored = MetricsSink::restore(&m.snapshot()).expect("roundtrips");
        assert_eq!(restored.types()[0].1.bytes, u64::MAX, "codec preserves the rail");
    }

    /// Codec edge case: an unknown error-code name (a journal written by
    /// newer code with more ErrorCode variants) must restore without
    /// error — the unknown code's count is dropped from the by-code
    /// table but stays in errors_total. This is the journal-resume
    /// forward-compatibility contract.
    #[test]
    fn unknown_error_code_names_are_forward_compatible() {
        let mut m = MetricsSink::new();
        m.error("p", ErrorCode::LitMismatch, None);
        m.error("p", ErrorCode::LitMismatch, None);
        let snap = m.snapshot();
        // Hand-craft a payload replacing the code name "LitMismatch"
        // with an equal-length name no current variant has.
        let needle = b"LitMismatch";
        let pos = snap
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("code name present");
        let mut futuristic = snap.clone();
        futuristic[pos..pos + needle.len()].copy_from_slice(b"FutureCode?");
        let restored = MetricsSink::restore(&futuristic).expect("restores despite unknown code");
        assert_eq!(restored.errors_total(), 2, "total keeps the count");
        assert!(restored.errors_by_code().is_empty(), "unknown code dropped from table");
        // And the restored sink keeps aggregating normally.
        let mut sink = restored;
        sink.error("p", ErrorCode::RangeError, None);
        assert_eq!(sink.errors_total(), 3);
    }

    #[test]
    fn latency_samples_batch_but_count_every_record() {
        let mut m = MetricsSink::new();
        for i in 0..(64 * 2 + 5) {
            m.record(i, Loc::default(), 0);
        }
        // Two full batches sampled; 5 records still pending.
        let expect = format!("pads_record_latency_seconds_count {}", 64 * 2 + 5);
        assert!(m.prometheus().contains(&expect));
    }

    #[test]
    fn json_wraps_counts_and_timings() {
        let m = MetricsSink::new();
        let j = m.json();
        assert!(j.contains("\"counts\""));
        assert!(j.contains("\"timings\""));
        assert!(j.contains("\"elapsed_seconds\""));
    }
}
