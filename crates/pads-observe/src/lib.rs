//! Observability sinks for the PADS data path.
//!
//! The runtime defines the event vocabulary and emission points
//! ([`pads_runtime::observe`]); this crate provides the things that
//! listen:
//!
//! * [`metrics::MetricsSink`] — per-type hit counts and byte spans,
//!   error counts by code, record throughput, and latency summaries
//!   built on the bounded-memory [`summary`] machinery, exposed in
//!   Prometheus text format and JSON;
//! * [`trace::TraceSink`] — a depth-bounded span tree showing exactly
//!   how each record was consumed, dumped as JSONL or rendered text;
//! * [`Fanout`] — drives several sinks from one cursor hook.
//!
//! Both parsing engines (the `pads-core` interpreter and
//! `pads-codegen`-generated modules) emit identical event streams for
//! the same input, so a sink never needs to know which engine ran.
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use pads_observe::metrics::MetricsSink;
//! use pads_runtime::{Cursor, ObsHandle};
//!
//! let sink = Rc::new(RefCell::new(MetricsSink::new()));
//! let cur = Cursor::new(b"data").with_observer(ObsHandle::from_rc(sink.clone()));
//! // ... parse with either engine ...
//! # drop(cur);
//! println!("{}", sink.borrow().counts_json());
//! ```

pub mod metrics;
pub mod summary;
pub mod trace;
mod util;

pub use metrics::MetricsSink;
pub use pads_runtime::metrics::{MetricsCore, MetricsHandle, ObsSchema, TypeStat, WorkerObs};
pub use pads_runtime::observe::{ObsHandle, Observer, RecoveryEvent};
pub use trace::TraceSink;

use pads_runtime::{ErrorCode, Loc, ParseDesc, Pos};

/// An [`Observer`] that forwards every event to several sinks.
#[derive(Clone, Debug, Default)]
pub struct Fanout(Vec<ObsHandle>);

impl Fanout {
    /// Creates a fanout over `handles`, invoked in order.
    pub fn new(handles: Vec<ObsHandle>) -> Fanout {
        Fanout(handles)
    }
}

impl Observer for Fanout {
    fn type_enter(&mut self, name: &str, pos: Pos) {
        for h in &self.0 {
            h.with(|o| o.type_enter(name, pos));
        }
    }

    fn type_exit(&mut self, name: &str, start: Pos, end: Pos, pd: &ParseDesc) {
        for h in &self.0 {
            h.with(|o| o.type_exit(name, start, end, pd));
        }
    }

    fn error(&mut self, path: &str, code: ErrorCode, loc: Option<Loc>) {
        for h in &self.0 {
            h.with(|o| o.error(path, code, loc));
        }
    }

    fn recovery(&mut self, event: RecoveryEvent, pos: Pos) {
        for h in &self.0 {
            h.with(|o| o.recovery(event, pos));
        }
    }

    fn record(&mut self, index: usize, span: Loc, nerr: u32) {
        for h in &self.0 {
            h.with(|o| o.record(index, span, nerr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn fanout_reaches_every_sink() {
        let m = Rc::new(RefCell::new(MetricsSink::new()));
        let t = Rc::new(RefCell::new(TraceSink::new()));
        let mut fan = Fanout::new(vec![
            ObsHandle::from_rc(m.clone()),
            ObsHandle::from_rc(t.clone()),
        ]);
        fan.record(0, Loc::default(), 2);
        assert_eq!(m.borrow().records(), 1);
        assert_eq!(t.borrow().roots().len(), 1);
    }
}
