//! The trace sink: a depth-bounded span tree showing exactly how a
//! record was consumed — which types were tried, over which byte
//! ranges, and what the recovery machinery did in between.
//!
//! Union backtracking means failed attempts appear too: a span whose
//! descriptor is not ok is an alternative the engine tried and
//! abandoned, which is precisely the information grammar debugging
//! needs (cf. Saggitarius's "which alternatives were tried" traces).

use std::fmt::Write as _;

use pads_runtime::observe::{Observer, RecoveryEvent};
use pads_runtime::{ErrorCode, Loc, ParseDesc, Pos};

use crate::util::esc;

/// One node of the trace tree, in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A completed type parse and everything observed inside it.
    Span(Span),
    /// A descriptor error surfaced at record close (or a source-level
    /// root error).
    Error {
        /// Dotted field path within the record type (`""` at the root).
        path: String,
        /// The error code's stable name.
        code: &'static str,
        /// Error location start offset, when the descriptor recorded one.
        offset: Option<usize>,
    },
    /// A recovery action.
    Recovery {
        /// Human-readable action (e.g. `PanicSkip { bytes: 12 }`).
        what: String,
        /// Byte offset where the action completed.
        offset: usize,
    },
    /// A record boundary.
    Record {
        /// Zero-based record index.
        index: usize,
        /// First byte of the record.
        start: usize,
        /// One past the last byte of the record.
        end: usize,
        /// Errors charged to the record.
        nerr: u32,
    },
}

/// A completed type parse: byte range, outcome, and children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The named type parsed.
    pub name: String,
    /// Byte offset where the parse began.
    pub start: usize,
    /// Byte offset where the parse ended.
    pub end: usize,
    /// Errors in the final descriptor.
    pub nerr: u32,
    /// Whether the final descriptor was ok.
    pub ok: bool,
    /// Nested events, in order.
    pub children: Vec<Node>,
}

/// A pending span (entered, not yet exited). `None` marks an
/// unrecorded frame — beyond the depth/span bounds — kept on the stack
/// only so enter/exit stay balanced.
#[derive(Debug)]
struct Open(Option<Span>);

/// An [`Observer`] that collects a depth- and size-bounded trace tree.
#[derive(Debug)]
pub struct TraceSink {
    max_depth: usize,
    max_spans: usize,
    total_spans: usize,
    truncated: u64,
    stack: Vec<Open>,
    roots: Vec<Node>,
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::new()
    }
}

impl TraceSink {
    /// Default bounds: depth 8, 10 000 spans.
    pub fn new() -> TraceSink {
        TraceSink::with_bounds(8, 10_000)
    }

    /// Creates a sink keeping spans down to `max_depth` nesting levels
    /// and at most `max_spans` spans overall; deeper or later spans are
    /// counted but not stored.
    pub fn with_bounds(max_depth: usize, max_spans: usize) -> TraceSink {
        TraceSink {
            max_depth: max_depth.max(1),
            max_spans,
            total_spans: 0,
            truncated: 0,
            stack: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// Spans dropped because of the depth/size bounds.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// The collected top-level nodes (valid once the parse is done; any
    /// still-open spans are not included).
    pub fn roots(&self) -> &[Node] {
        &self.roots
    }

    fn push(&mut self, node: Node) {
        // Attach to the innermost recorded open span, or to the roots.
        for open in self.stack.iter_mut().rev() {
            if let Open(Some(span)) = open {
                span.children.push(node);
                return;
            }
        }
        self.roots.push(node);
    }

    /// Renders the tree as indented text, one node per line.
    pub fn render(&self) -> String {
        fn go(out: &mut String, nodes: &[Node], depth: usize) {
            for node in nodes {
                let pad = "  ".repeat(depth);
                match node {
                    Node::Span(s) => {
                        let status = if s.ok {
                            "ok".to_owned()
                        } else {
                            format!("FAILED nerr={}", s.nerr)
                        };
                        let _ = writeln!(
                            out,
                            "{pad}{} [{}..{}) {status}",
                            s.name, s.start, s.end
                        );
                        go(out, &s.children, depth + 1);
                    }
                    Node::Error { path, code, offset } => {
                        let at = offset.map(|o| format!(" @{o}")).unwrap_or_default();
                        let p = if path.is_empty() { "<root>" } else { path.as_str() };
                        let _ = writeln!(out, "{pad}! {p}: {code}{at}");
                    }
                    Node::Recovery { what, offset } => {
                        let _ = writeln!(out, "{pad}~ recovery {what} @{offset}");
                    }
                    Node::Record { index, start, end, nerr } => {
                        let _ = writeln!(
                            out,
                            "{pad}= record {index} [{start}..{end}) nerr={nerr}"
                        );
                    }
                }
            }
        }
        let mut out = String::new();
        go(&mut out, &self.roots, 0);
        if self.truncated > 0 {
            let _ = writeln!(out, "({} spans beyond bounds not shown)", self.truncated);
        }
        out
    }

    /// Dumps the tree as JSONL: one JSON object per node in document
    /// order, each carrying its nesting `depth`.
    pub fn jsonl(&self) -> String {
        fn go(out: &mut String, nodes: &[Node], depth: usize) {
            for node in nodes {
                match node {
                    Node::Span(s) => {
                        let _ = writeln!(
                            out,
                            "{{\"ev\":\"span\",\"name\":\"{}\",\"depth\":{depth},\"start\":{},\"end\":{},\"nerr\":{},\"ok\":{}}}",
                            esc(&s.name), s.start, s.end, s.nerr, s.ok
                        );
                        go(out, &s.children, depth + 1);
                    }
                    Node::Error { path, code, offset } => {
                        let at = offset.map(|o| o.to_string()).unwrap_or_else(|| "null".into());
                        let _ = writeln!(
                            out,
                            "{{\"ev\":\"error\",\"depth\":{depth},\"path\":\"{}\",\"code\":\"{code}\",\"offset\":{at}}}",
                            esc(path)
                        );
                    }
                    Node::Recovery { what, offset } => {
                        let _ = writeln!(
                            out,
                            "{{\"ev\":\"recovery\",\"depth\":{depth},\"action\":\"{}\",\"offset\":{offset}}}",
                            esc(what)
                        );
                    }
                    Node::Record { index, start, end, nerr } => {
                        let _ = writeln!(
                            out,
                            "{{\"ev\":\"record\",\"depth\":{depth},\"index\":{index},\"start\":{start},\"end\":{end},\"nerr\":{nerr}}}"
                        );
                    }
                }
            }
        }
        let mut out = String::new();
        go(&mut out, &self.roots, 0);
        if self.truncated > 0 {
            let _ = writeln!(out, "{{\"ev\":\"truncated\",\"spans\":{}}}", self.truncated);
        }
        out
    }
}

impl Observer for TraceSink {
    fn type_enter(&mut self, name: &str, pos: Pos) {
        let parent_recorded = self.stack.last().is_none_or(|o| o.0.is_some());
        let record = parent_recorded
            && self.stack.len() < self.max_depth
            && self.total_spans < self.max_spans;
        if record {
            self.total_spans += 1;
            self.stack.push(Open(Some(Span {
                name: name.to_owned(),
                start: pos.offset,
                end: pos.offset,
                nerr: 0,
                ok: true,
                children: Vec::new(),
            })));
        } else {
            self.truncated += 1;
            self.stack.push(Open(None));
        }
    }

    fn type_exit(&mut self, _name: &str, _start: Pos, end: Pos, pd: &ParseDesc) {
        if let Some(Open(Some(mut span))) = self.stack.pop() {
            span.end = end.offset;
            span.nerr = pd.nerr;
            span.ok = pd.is_ok();
            self.push(Node::Span(span));
        }
    }

    fn error(&mut self, path: &str, code: ErrorCode, loc: Option<Loc>) {
        self.push(Node::Error {
            path: path.to_owned(),
            code: code.name(),
            offset: loc.map(|l| l.begin.offset),
        });
    }

    fn recovery(&mut self, event: RecoveryEvent, pos: Pos) {
        self.push(Node::Recovery { what: format!("{event:?}"), offset: pos.offset });
    }

    fn record(&mut self, index: usize, span: Loc, nerr: u32) {
        self.push(Node::Record {
            index,
            start: span.begin.offset,
            end: span.end.offset,
            nerr,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(offset: usize) -> Pos {
        Pos { offset, record: 0, byte: offset }
    }

    #[test]
    fn spans_nest_and_render() {
        let mut t = TraceSink::new();
        t.type_enter("outer_t", pos(0));
        t.type_enter("inner_t", pos(0));
        t.type_exit("inner_t", pos(0), pos(4), &ParseDesc::default());
        t.record(0, Loc::new(pos(0), pos(5)), 0);
        t.type_exit("outer_t", pos(0), pos(5), &ParseDesc::default());
        assert_eq!(t.roots().len(), 1);
        let text = t.render();
        assert!(text.contains("outer_t [0..5) ok"), "{text}");
        assert!(text.contains("  inner_t [0..4) ok"), "{text}");
        assert!(text.contains("  = record 0 [0..5) nerr=0"), "{text}");
        let jsonl = t.jsonl();
        assert!(jsonl.contains("\"ev\":\"span\",\"name\":\"inner_t\",\"depth\":1"), "{jsonl}");
    }

    #[test]
    fn depth_bound_truncates_but_stays_balanced() {
        let mut t = TraceSink::with_bounds(1, 100);
        t.type_enter("a", pos(0));
        t.type_enter("b", pos(0)); // beyond depth 1 — dropped
        t.type_exit("b", pos(0), pos(1), &ParseDesc::default());
        t.type_exit("a", pos(0), pos(1), &ParseDesc::default());
        assert_eq!(t.truncated(), 1);
        assert_eq!(t.roots().len(), 1);
        assert!(t.render().contains("not shown"));
    }

    #[test]
    fn span_cap_stops_recording() {
        let mut t = TraceSink::with_bounds(8, 1);
        for i in 0..3 {
            t.type_enter("x", pos(i));
            t.type_exit("x", pos(i), pos(i + 1), &ParseDesc::default());
        }
        assert_eq!(t.roots().len(), 1);
        assert_eq!(t.truncated(), 2);
    }
}
