//! Small-space statistical summaries: streaming histograms and quantile
//! estimates.
//!
//! The implementations moved to [`pads_runtime::summary`] so the
//! `Send`-able [`pads_runtime::metrics::MetricsCore`] can own latency
//! state; this module re-exports them for existing callers
//! (`pads_tools` and the accumulator machinery).

pub use pads_runtime::summary::{Histogram, Quantiles};
