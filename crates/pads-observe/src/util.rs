//! Tiny shared helpers for the hand-rolled expositions (the workspace
//! deliberately carries no serde dependency).

/// Escapes a string for embedding inside a JSON double-quoted literal
/// (also safe for Prometheus label values, which use the same escapes).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::esc;

    #[test]
    fn escapes_json_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
        assert_eq!(esc("plain"), "plain");
    }
}
