//! Recursive-descent parser from pattern text to [`Ast`].

use crate::ast::{predefined_class, Ast, ByteSet};

/// Error produced when a pattern fails to parse or compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    pos: usize,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>, pos: usize) -> Error {
        Error { msg: msg.into(), pos }
    }

    /// Byte offset in the pattern where the error was detected.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex parse error at offset {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parses a pattern into its syntax tree.
pub fn parse(pattern: &str) -> Result<Ast, Error> {
    let mut p = Parser { input: pattern.as_bytes(), pos: 0 };
    let ast = p.alternate()?;
    if p.pos != p.input.len() {
        return Err(Error::new("unexpected `)`", p.pos));
    }
    Ok(ast)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternate(&mut self) -> Result<Ast, Error> {
        let mut branches = vec![self.concat()?];
        while self.eat(b'|') {
            branches.push(self.concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("non-empty"))
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    fn concat(&mut self) -> Result<Ast, Error> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        match parts.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(parts.pop().expect("non-empty")),
            _ => Ok(Ast::Concat(parts)),
        }
    }

    fn repeat(&mut self) -> Result<Ast, Error> {
        let atom = self.atom()?;
        let mut node = atom;
        loop {
            let (min, max) = match self.peek() {
                Some(b'*') => (0, None),
                Some(b'+') => (1, None),
                Some(b'?') => (0, Some(1)),
                Some(b'{') => {
                    // `{` opens a bound only when a digit follows; otherwise
                    // it is an ordinary literal (Perl-compatible behaviour).
                    if !self.input.get(self.pos + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    self.pos += 1;
                    self.counted_bounds()?
                }
                _ => break,
            };
            if !matches!(self.peek(), Some(b'{')) {
                self.pos += 1; // consume * + ?
            }
            if matches!(node, Ast::AssertStart | Ast::AssertEnd | Ast::Empty) {
                return Err(Error::new("repetition of empty or anchor expression", self.pos));
            }
            if let Some(mx) = max {
                if min > mx {
                    return Err(Error::new("repetition bounds out of order", self.pos));
                }
            }
            node = Ast::Repeat { node: Box::new(node), min, max };
        }
        Ok(node)
    }

    /// Parses `m}`, `m,}`, or `m,n}` after the opening brace has been
    /// consumed, leaving the cursor *on* the closing brace so `repeat` can
    /// uniformly consume one trailing byte.
    fn counted_bounds(&mut self) -> Result<(u32, Option<u32>), Error> {
        let min = self.number()?;
        let bounds = if self.eat(b',') {
            if self.peek() == Some(b'}') {
                (min, None)
            } else {
                (min, Some(self.number()?))
            }
        } else {
            (min, Some(min))
        };
        if self.peek() != Some(b'}') {
            return Err(Error::new("expected `}` in repetition", self.pos));
        }
        if let (m, Some(n)) = bounds {
            if m > n {
                return Err(Error::new("repetition bounds out of order", self.pos));
            }
        }
        Ok(bounds)
    }

    fn number(&mut self) -> Result<u32, Error> {
        let start = self.pos;
        let mut val: u32 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            val = val
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as u32))
                .ok_or_else(|| Error::new("repetition bound too large", self.pos))?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(Error::new("expected number", self.pos));
        }
        if val > 10_000 {
            return Err(Error::new("repetition bound too large", self.pos));
        }
        Ok(val)
    }

    fn atom(&mut self) -> Result<Ast, Error> {
        match self.bump() {
            None => Err(Error::new("unexpected end of pattern", self.pos)),
            Some(b'(') => {
                // Optional non-capturing marker; we never capture anyway.
                if self.peek() == Some(b'?') {
                    let save = self.pos;
                    self.pos += 1;
                    if !self.eat(b':') {
                        self.pos = save;
                        return Err(Error::new("unsupported group flag", self.pos));
                    }
                }
                let inner = self.alternate()?;
                if !self.eat(b')') {
                    return Err(Error::new("missing closing `)`", self.pos));
                }
                Ok(inner)
            }
            Some(b'[') => self.class(),
            Some(b'.') => Ok(Ast::AnyByte),
            Some(b'^') => Ok(Ast::AssertStart),
            Some(b'$') => Ok(Ast::AssertEnd),
            Some(b'\\') => self.escape(),
            Some(b @ (b'*' | b'+' | b'?')) => {
                Err(Error::new(format!("dangling quantifier `{}`", b as char), self.pos - 1))
            }
            Some(b) => Ok(Ast::Byte(b)),
        }
    }

    fn escape(&mut self) -> Result<Ast, Error> {
        match self.bump() {
            None => Err(Error::new("dangling escape", self.pos)),
            Some(b'n') => Ok(Ast::Byte(b'\n')),
            Some(b'r') => Ok(Ast::Byte(b'\r')),
            Some(b't') => Ok(Ast::Byte(b'\t')),
            Some(b'0') => Ok(Ast::Byte(0)),
            Some(b'x') => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                Ok(Ast::Byte(hi * 16 + lo))
            }
            Some(b @ (b'd' | b'D' | b'w' | b'W' | b's' | b'S')) => {
                Ok(Ast::Class(predefined_class(b as char)))
            }
            Some(b) if b.is_ascii_alphanumeric() => {
                Err(Error::new(format!("unknown escape `\\{}`", b as char), self.pos - 1))
            }
            Some(b) => Ok(Ast::Byte(b)),
        }
    }

    fn hex_digit(&mut self) -> Result<u8, Error> {
        match self.bump() {
            Some(b @ b'0'..=b'9') => Ok(b - b'0'),
            Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
            Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
            _ => Err(Error::new("expected hex digit", self.pos)),
        }
    }

    fn class(&mut self) -> Result<Ast, Error> {
        let mut set = ByteSet::new();
        let negate = self.eat(b'^');
        let mut first = true;
        loop {
            let b = match self.bump() {
                None => return Err(Error::new("unterminated character class", self.pos)),
                Some(b']') if !first => break,
                Some(b) => b,
            };
            first = false;
            let lo = if b == b'\\' { self.class_escape(&mut set)? } else { Some(b) };
            let Some(lo) = lo else { continue }; // escape was a predefined class
            // Range?
            if self.peek() == Some(b'-')
                && self.input.get(self.pos + 1).is_some_and(|&n| n != b']')
            {
                self.pos += 1; // '-'
                let hb = self.bump().ok_or_else(|| {
                    Error::new("unterminated character class", self.pos)
                })?;
                let hi = if hb == b'\\' {
                    self.class_escape(&mut set)?.ok_or_else(|| {
                        Error::new("class shorthand cannot end a range", self.pos)
                    })?
                } else {
                    hb
                };
                if lo > hi {
                    return Err(Error::new("class range out of order", self.pos));
                }
                set.insert_range(lo, hi);
            } else {
                set.insert(lo);
            }
        }
        if negate {
            set.negate();
        }
        if set.is_empty() {
            return Err(Error::new("empty character class", self.pos));
        }
        Ok(Ast::Class(set))
    }

    /// Handles an escape inside a class. Returns `Some(byte)` for a literal
    /// byte escape, or `None` after unioning a predefined class into `set`.
    fn class_escape(&mut self, set: &mut ByteSet) -> Result<Option<u8>, Error> {
        match self.bump() {
            None => Err(Error::new("dangling escape in class", self.pos)),
            Some(b'n') => Ok(Some(b'\n')),
            Some(b'r') => Ok(Some(b'\r')),
            Some(b't') => Ok(Some(b'\t')),
            Some(b'0') => Ok(Some(0)),
            Some(b'x') => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                Ok(Some(hi * 16 + lo))
            }
            Some(b @ (b'd' | b'D' | b'w' | b'W' | b's' | b'S')) => {
                set.union(&predefined_class(b as char));
                Ok(None)
            }
            Some(b) => Ok(Some(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_alternation_tree() {
        let ast = parse("a|b|c").unwrap();
        assert!(matches!(ast, Ast::Alternate(ref v) if v.len() == 3));
    }

    #[test]
    fn parses_counted_repeat() {
        let ast = parse("a{2,5}").unwrap();
        assert!(matches!(ast, Ast::Repeat { min: 2, max: Some(5), .. }));
    }

    #[test]
    fn literal_brace_without_bound() {
        // `{x}` is not a valid bound, so `{` is a literal.
        let ast = parse("a{x}").unwrap();
        assert!(matches!(ast, Ast::Concat(ref v) if v.len() == 4));
    }

    #[test]
    fn class_shorthand_inside_class() {
        let ast = parse(r"[\d_]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(set.contains(b'5'));
                assert!(set.contains(b'_'));
                assert!(!set.contains(b'a'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn leading_close_bracket_is_literal() {
        let ast = parse(r"[]a]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(set.contains(b']'));
                assert!(set.contains(b'a'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_range() {
        assert!(parse("[5-1]").is_err());
    }

    #[test]
    fn rejects_repeating_anchor() {
        assert!(parse("^*").is_err());
    }
}
