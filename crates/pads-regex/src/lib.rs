//! A small, dependency-free, byte-oriented regular expression engine.
//!
//! This crate is the regex substrate of the `pads-rs` workspace. The original
//! PADS system (PLDI 2005) leaned on the AT&T AST/SFIO libraries for regular
//! expression support in base types such as `Pstring_ME` and for terminating
//! literals; the paper's Perl baseline (§7, Figure 9) is likewise built around
//! a compiled regular expression. Both uses are served by this engine.
//!
//! The engine compiles patterns to a Thompson NFA and executes them with a
//! Pike-style virtual machine, so matching runs in `O(pattern × text)` time
//! with no exponential backtracking. It operates on `&[u8]`, because ad hoc
//! data is bytes: ASCII, EBCDIC, and binary payloads all flow through it
//! unchanged.
//!
//! # Supported syntax
//!
//! * literals, `.` (any byte except `\n`)
//! * escapes: `\d \D \w \W \s \S \n \r \t \0 \xHH` and escaped punctuation
//! * character classes `[a-z0-9_]`, negated classes `[^|]`
//! * quantifiers `* + ?` and bounded repetition `{m}`, `{m,}`, `{m,n}`
//! * alternation `|`, grouping `( … )` and `(?: … )`
//! * anchors `^` (start of haystack) and `$` (end of haystack)
//!
//! # Examples
//!
//! ```
//! use pads_regex::Regex;
//!
//! # fn main() -> Result<(), pads_regex::Error> {
//! let re = Regex::new(r"^(\d+)\|")?;
//! assert!(re.is_match(b"9152|9152|1|"));
//! assert_eq!(re.match_at(b"9152|x", 0), Some(5));
//! # Ok(())
//! # }
//! ```

mod ast;
mod compile;
mod exec;
mod parse;

pub use ast::Ast;
pub use parse::Error;

use compile::Program;

/// A compiled regular expression over bytes.
///
/// Construction compiles the pattern once; matching never backtracks.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), pads_regex::Error> {
/// let re = pads_regex::Regex::new(r"[A-Z]+/\d+\.\d+")?;
/// assert!(re.is_match(b"HTTP/1.0"));
/// assert!(!re.is_match(b"http/1.0"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    prog: Program,
}

impl Regex {
    /// Compiles `pattern` into a `Regex`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the pattern is syntactically invalid (unbalanced
    /// parentheses, bad repetition bounds, dangling escapes, …).
    pub fn new(pattern: &str) -> Result<Regex, Error> {
        let ast = parse::parse(pattern)?;
        let prog = compile::compile(&ast)?;
        Ok(Regex { pattern: pattern.to_owned(), prog })
    }

    /// Returns the source pattern this regex was compiled from.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Returns the end offset of the *longest* match beginning exactly at
    /// `at`, or `None` when the pattern does not match there.
    ///
    /// This is the primitive the PADS runtime uses to consume a regex literal
    /// at the current cursor position.
    pub fn match_at(&self, haystack: &[u8], at: usize) -> Option<usize> {
        exec::match_at(&self.prog, haystack, at)
    }

    /// Returns the `(start, end)` byte range of the leftmost match at or after
    /// `start`, preferring the longest match at that leftmost position.
    pub fn find_at(&self, haystack: &[u8], start: usize) -> Option<(usize, usize)> {
        exec::find_at(&self.prog, haystack, start)
    }

    /// Returns the `(start, end)` byte range of the leftmost match.
    pub fn find(&self, haystack: &[u8]) -> Option<(usize, usize)> {
        self.find_at(haystack, 0)
    }

    /// Reports whether the pattern matches anywhere in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        exec::is_match(&self.prog, haystack)
    }

    /// Reports whether the pattern matches the *entire* haystack.
    pub fn is_full_match(&self, haystack: &[u8]) -> bool {
        self.match_at(haystack, 0) == Some(haystack.len())
    }
}

impl std::fmt::Display for Regex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.pattern)
    }
}

impl std::str::FromStr for Regex {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Regex::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap_or_else(|e| panic!("pattern {p:?} failed: {e}"))
    }

    #[test]
    fn literal_match() {
        let r = re("abc");
        assert!(r.is_match(b"xxabcxx"));
        assert_eq!(r.find(b"xxabcxx"), Some((2, 5)));
        assert!(!r.is_match(b"ab c"));
    }

    #[test]
    fn empty_pattern_matches_empty() {
        let r = re("");
        assert_eq!(r.match_at(b"abc", 1), Some(1));
        assert!(r.is_match(b""));
    }

    #[test]
    fn dot_excludes_newline() {
        let r = re("a.c");
        assert!(r.is_match(b"abc"));
        assert!(!r.is_match(b"a\nc"));
    }

    #[test]
    fn star_is_greedy_longest() {
        let r = re("a*");
        assert_eq!(r.match_at(b"aaab", 0), Some(3));
        assert_eq!(r.match_at(b"b", 0), Some(0));
    }

    #[test]
    fn plus_requires_one() {
        let r = re(r"\d+");
        assert_eq!(r.match_at(b"123x", 0), Some(3));
        assert_eq!(r.match_at(b"x123", 0), None);
        assert_eq!(r.find(b"x123"), Some((1, 4)));
    }

    #[test]
    fn optional() {
        let r = re("colou?r");
        assert!(r.is_full_match(b"color"));
        assert!(r.is_full_match(b"colour"));
    }

    #[test]
    fn alternation_prefers_longest_at_position() {
        let r = re("ab|abc");
        assert_eq!(r.match_at(b"abcd", 0), Some(3));
    }

    #[test]
    fn class_ranges_and_negation() {
        let r = re("[a-fA-F0-9]+");
        assert_eq!(r.match_at(b"DeadBeef!", 0), Some(8));
        let n = re(r"[^|]*");
        assert_eq!(n.match_at(b"abc|def", 0), Some(3));
    }

    #[test]
    fn class_with_literal_dash_and_bracket() {
        let r = re(r"[-a-z\]]+");
        assert!(r.is_full_match(b"a-b]c"));
    }

    #[test]
    fn bounded_repetition() {
        let r = re(r"\d{3}");
        assert!(r.is_full_match(b"123"));
        assert_eq!(r.match_at(b"12", 0), None);
        let r = re(r"\d{2,4}");
        assert_eq!(r.match_at(b"12345", 0), Some(4));
        assert_eq!(r.match_at(b"1", 0), None);
        let r = re(r"a{2,}");
        assert_eq!(r.match_at(b"aaaa", 0), Some(4));
        assert_eq!(r.match_at(b"a", 0), None);
    }

    #[test]
    fn anchors() {
        let r = re("^abc$");
        assert!(r.is_match(b"abc"));
        assert!(!r.is_match(b"xabc"));
        assert!(!r.is_match(b"abcx"));
        let r = re("^ab");
        assert_eq!(r.find_at(b"abab", 2), None);
    }

    #[test]
    fn groups_and_nesting() {
        let r = re("(ab)+c");
        assert!(r.is_full_match(b"ababc"));
        assert!(!r.is_full_match(b"abac"));
        let r = re("(?:a|b)*c");
        assert!(r.is_full_match(b"abbac"));
    }

    #[test]
    fn escapes() {
        assert!(re(r"\.").is_full_match(b"."));
        assert!(re(r"\|").is_full_match(b"|"));
        assert!(re(r"\\").is_full_match(b"\\"));
        assert!(re(r"\t\n\r").is_full_match(b"\t\n\r"));
        assert!(re(r"\x41\x42").is_full_match(b"AB"));
        assert!(re(r"\w+").is_full_match(b"ab_9"));
        assert!(re(r"\s").is_full_match(b" "));
        assert!(re(r"\S+").is_full_match(b"q!"));
        assert!(re(r"\D+").is_full_match(b"ab"));
        assert!(!re(r"\D").is_match(b"7"));
    }

    #[test]
    fn perl_selection_pattern_from_figure_9() {
        // The heart of the paper's Perl selection program.
        let state = "LOC_CRTE";
        let pat = format!(r"^(\d+)\|(?:[^|]*\|){{12}}(?:[^|]*\|[^|]*\|)*{state}\|");
        let r = re(&pat);
        let line = b"9153|9153|1|0|0|0|0||152268|LOC_6|0|FRDW1|DUO|LOC_CRTE|1001476800|LOC_OS_10|1001649601|";
        assert!(r.is_match(line));
        let miss = b"9152|9152|1|9735551212|0||9085551212|07988|no_ii152272|EDTF_6|0|APRL1|DUO|10|1000295291|";
        assert!(!r.is_match(miss));
    }

    #[test]
    fn invalid_patterns_error() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new(")").is_err());
        assert!(Regex::new("a{5,2}").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("*a").is_err());
    }

    #[test]
    fn leftmost_longest_find() {
        let r = re("ab+");
        assert_eq!(r.find(b"zzabbbz-ab"), Some((2, 6)));
    }

    #[test]
    fn binary_bytes() {
        let r = re(r"\x00\xff+");
        assert_eq!(r.match_at(&[0x00, 0xff, 0xff, 0x01], 0), Some(3));
    }
}
