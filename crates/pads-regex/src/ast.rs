//! Abstract syntax for regular expressions.

/// A 256-bit byte-set used for character classes.
#[derive(Clone, PartialEq, Eq)]
pub struct ByteSet {
    bits: [u64; 4],
}

impl ByteSet {
    /// Creates an empty set.
    pub fn new() -> ByteSet {
        ByteSet { bits: [0; 4] }
    }

    /// Inserts a single byte.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Inserts the inclusive range `lo..=hi`.
    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Tests membership.
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Complements the set in place.
    pub fn negate(&mut self) {
        for w in &mut self.bits {
            *w = !*w;
        }
    }

    /// Unions `other` into `self`.
    pub fn union(&mut self, other: &ByteSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
    }

    /// Removes every byte of `other` from `self`.
    pub(crate) fn subtract(&mut self, other: &ByteSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a &= !*b;
        }
    }

    /// Number of bytes in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

impl Default for ByteSet {
    fn default() -> Self {
        ByteSet::new()
    }
}

impl std::fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteSet({} bytes)", self.len())
    }
}

/// Parsed regular-expression syntax tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// Matches exactly one byte.
    Byte(u8),
    /// Matches any byte except `\n`.
    AnyByte,
    /// Matches any byte in the set.
    Class(ByteSet),
    /// Start-of-haystack anchor `^`.
    AssertStart,
    /// End-of-haystack anchor `$`.
    AssertEnd,
    /// Concatenation of sub-expressions.
    Concat(Vec<Ast>),
    /// Alternation of sub-expressions.
    Alternate(Vec<Ast>),
    /// Repetition: `min..=max` copies (`max == None` means unbounded).
    Repeat {
        /// Repeated sub-expression.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions; `None` for unbounded.
        max: Option<u32>,
    },
}

/// Builds the byte-set for a `\d`-style predefined class.
pub fn predefined_class(kind: char) -> ByteSet {
    let mut set = ByteSet::new();
    match kind {
        'd' | 'D' => set.insert_range(b'0', b'9'),
        'w' | 'W' => {
            set.insert_range(b'a', b'z');
            set.insert_range(b'A', b'Z');
            set.insert_range(b'0', b'9');
            set.insert(b'_');
        }
        's' | 'S' => {
            for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                set.insert(b);
            }
        }
        _ => unreachable!("not a predefined class: {kind}"),
    }
    if kind.is_ascii_uppercase() {
        set.negate();
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byteset_basics() {
        let mut s = ByteSet::new();
        assert!(s.is_empty());
        s.insert(b'a');
        s.insert_range(b'0', b'9');
        assert!(s.contains(b'a'));
        assert!(s.contains(b'5'));
        assert!(!s.contains(b'b'));
        assert_eq!(s.len(), 11);
        s.negate();
        assert!(!s.contains(b'a'));
        assert!(s.contains(b'b'));
        assert_eq!(s.len(), 256 - 11);
    }

    #[test]
    fn predefined_classes() {
        assert!(predefined_class('d').contains(b'7'));
        assert!(!predefined_class('d').contains(b'a'));
        assert!(predefined_class('D').contains(b'a'));
        assert!(predefined_class('w').contains(b'_'));
        assert!(predefined_class('s').contains(b'\t'));
        assert!(predefined_class('S').contains(b'x'));
    }
}
