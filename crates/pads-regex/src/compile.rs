//! Compilation from [`Ast`] to a Thompson-NFA bytecode program.

use crate::ast::{Ast, ByteSet};
use crate::parse::Error;

/// Index of an instruction within a [`Program`].
pub type InstPtr = u32;

/// A single NFA instruction.
#[derive(Debug, Clone)]
pub enum Inst {
    /// Match one specific byte, then continue at the next instruction.
    Byte(u8),
    /// Match any byte except `\n`.
    AnyByte,
    /// Match any byte in the referenced class (index into `Program::classes`).
    Class(u32),
    /// Succeed only at haystack start.
    AssertStart,
    /// Succeed only at haystack end.
    AssertEnd,
    /// Fork execution: try `a` first, then `b`.
    Split(InstPtr, InstPtr),
    /// Unconditional jump.
    Jmp(InstPtr),
    /// Accept.
    Match,
}

/// A compiled NFA program.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) insts: Vec<Inst>,
    pub(crate) classes: Vec<ByteSet>,
    /// True when every match must begin at haystack start, letting `find`
    /// skip the scan loop.
    pub(crate) anchored_start: bool,
}

const MAX_PROGRAM: usize = 1 << 20;

/// Compiles an AST into a program.
pub fn compile(ast: &Ast) -> Result<Program, Error> {
    let mut c = Compiler { insts: Vec::new(), classes: Vec::new() };
    c.emit_ast(ast)?;
    c.push(Inst::Match)?;
    let anchored_start = starts_anchored(ast);
    Ok(Program { insts: c.insts, classes: c.classes, anchored_start })
}

fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::AssertStart => true,
        Ast::Concat(parts) => parts.first().is_some_and(starts_anchored),
        Ast::Alternate(branches) => branches.iter().all(starts_anchored),
        _ => false,
    }
}

struct Compiler {
    insts: Vec<Inst>,
    classes: Vec<ByteSet>,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> Result<InstPtr, Error> {
        if self.insts.len() >= MAX_PROGRAM {
            return Err(Error::new("pattern too large", 0));
        }
        self.insts.push(inst);
        Ok((self.insts.len() - 1) as InstPtr)
    }

    fn next_ptr(&self) -> InstPtr {
        self.insts.len() as InstPtr
    }

    fn class_id(&mut self, set: &ByteSet) -> u32 {
        if let Some(i) = self.classes.iter().position(|c| c == set) {
            return i as u32;
        }
        self.classes.push(set.clone());
        (self.classes.len() - 1) as u32
    }

    fn emit_ast(&mut self, ast: &Ast) -> Result<(), Error> {
        match ast {
            Ast::Empty => Ok(()),
            Ast::Byte(b) => self.push(Inst::Byte(*b)).map(drop),
            Ast::AnyByte => self.push(Inst::AnyByte).map(drop),
            Ast::Class(set) => {
                let id = self.class_id(set);
                self.push(Inst::Class(id)).map(drop)
            }
            Ast::AssertStart => self.push(Inst::AssertStart).map(drop),
            Ast::AssertEnd => self.push(Inst::AssertEnd).map(drop),
            Ast::Concat(parts) => {
                for p in parts {
                    self.emit_ast(p)?;
                }
                Ok(())
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) -> Result<(), Error> {
        // For branches b1..bn emit:
        //   split L1, S2; L1: b1; jmp END
        //   S2: split L2, S3; L2: b2; jmp END ...
        let mut jmp_ends = Vec::new();
        let n = branches.len();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < n {
                let split = self.push(Inst::Split(0, 0))?;
                let l = self.next_ptr();
                self.emit_ast(branch)?;
                let jmp = self.push(Inst::Jmp(0))?;
                jmp_ends.push(jmp);
                let next_branch = self.next_ptr();
                self.insts[split as usize] = Inst::Split(l, next_branch);
            } else {
                self.emit_ast(branch)?;
            }
        }
        let end = self.next_ptr();
        for j in jmp_ends {
            self.insts[j as usize] = Inst::Jmp(end);
        }
        Ok(())
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) -> Result<(), Error> {
        match (min, max) {
            (0, Some(1)) => {
                // e? : split L, END; L: e
                let split = self.push(Inst::Split(0, 0))?;
                let l = self.next_ptr();
                self.emit_ast(node)?;
                let end = self.next_ptr();
                self.insts[split as usize] = Inst::Split(l, end);
                Ok(())
            }
            (0, None) => {
                // e* : S: split L, END; L: e; jmp S
                let split = self.push(Inst::Split(0, 0))?;
                let l = self.next_ptr();
                self.emit_ast(node)?;
                self.push(Inst::Jmp(split))?;
                let end = self.next_ptr();
                self.insts[split as usize] = Inst::Split(l, end);
                Ok(())
            }
            (1, None) => {
                // e+ : L: e; split L, END
                let l = self.next_ptr();
                self.emit_ast(node)?;
                let split = self.push(Inst::Split(0, 0))?;
                self.insts[split as usize] = Inst::Split(l, self.next_ptr());
                Ok(())
            }
            (min, max) => {
                // Counted repetition unrolls: min mandatory copies followed by
                // either (max-min) optional copies or a Kleene star.
                for _ in 0..min {
                    self.emit_ast(node)?;
                }
                match max {
                    None => self.emit_repeat(node, 0, None),
                    Some(mx) => {
                        let extra = mx - min;
                        let mut splits = Vec::new();
                        for _ in 0..extra {
                            let split = self.push(Inst::Split(0, 0))?;
                            let l = self.next_ptr();
                            self.emit_ast(node)?;
                            splits.push((split, l));
                        }
                        let end = self.next_ptr();
                        for (split, l) in splits {
                            self.insts[split as usize] = Inst::Split(l, end);
                        }
                        Ok(())
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn anchoring_detection() {
        let p = compile(&parse("^ab").unwrap()).unwrap();
        assert!(p.anchored_start);
        let p = compile(&parse("ab").unwrap()).unwrap();
        assert!(!p.anchored_start);
        let p = compile(&parse("^a|^b").unwrap()).unwrap();
        assert!(p.anchored_start);
        let p = compile(&parse("^a|b").unwrap()).unwrap();
        assert!(!p.anchored_start);
    }

    #[test]
    fn class_deduplication() {
        let p = compile(&parse(r"\d\d\d").unwrap()).unwrap();
        assert_eq!(p.classes.len(), 1);
    }

    #[test]
    fn program_ends_with_match() {
        let p = compile(&parse("a(b|c)*").unwrap()).unwrap();
        assert!(matches!(p.insts.last(), Some(Inst::Match)));
    }
}
