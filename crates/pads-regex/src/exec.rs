//! Pike-VM execution over compiled programs.
//!
//! The VM advances a set of NFA threads one haystack position at a time.
//! Because thread sets are deduplicated per position, matching is
//! `O(insts × bytes)` with no backtracking. Threads are ordered, and we keep
//! scanning after the first accepting thread so `match_at` reports the
//! *longest* match at its start position — the semantics the PADS runtime
//! needs when consuming a regex literal.

use crate::ast::ByteSet;
use crate::compile::{Inst, InstPtr, Program};

/// Deduplicating worklist of thread program counters.
struct ThreadList {
    dense: Vec<InstPtr>,
    sparse_gen: Vec<u32>,
    gen: u32,
}

impl ThreadList {
    fn new(n: usize) -> ThreadList {
        ThreadList { dense: Vec::with_capacity(n), sparse_gen: vec![0; n], gen: 0 }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.gen += 1;
    }

    fn contains(&self, pc: InstPtr) -> bool {
        self.sparse_gen[pc as usize] == self.gen
    }

    fn insert(&mut self, pc: InstPtr) {
        self.sparse_gen[pc as usize] = self.gen;
        self.dense.push(pc);
    }
}

struct Vm<'p> {
    prog: &'p Program,
    clist: ThreadList,
    nlist: ThreadList,
    /// Scratch list for the star-loop fast path's steady-state check.
    scratch: ThreadList,
}

impl<'p> Vm<'p> {
    fn new(prog: &'p Program) -> Vm<'p> {
        let n = prog.insts.len();
        Vm { prog, clist: ThreadList::new(n), nlist: ThreadList::new(n), scratch: ThreadList::new(n) }
    }

    /// Follows epsilon transitions from `pc`, adding consuming instructions
    /// (and `Match`) to `list`. `pos` is the current haystack offset, needed
    /// for anchors.
    fn add_thread(list: &mut ThreadList, prog: &Program, pc: InstPtr, pos: usize, len: usize) {
        let mut stack = vec![pc];
        while let Some(pc) = stack.pop() {
            if list.contains(pc) {
                continue;
            }
            list.insert(pc);
            match prog.insts[pc as usize] {
                Inst::Jmp(t) => stack.push(t),
                Inst::Split(a, b) => {
                    // Push b first so a is processed first (priority order).
                    stack.push(b);
                    stack.push(a);
                }
                Inst::AssertStart => {
                    if pos == 0 {
                        stack.push(pc + 1);
                    }
                }
                Inst::AssertEnd => {
                    if pos == len {
                        stack.push(pc + 1);
                    }
                }
                Inst::Byte(_) | Inst::AnyByte | Inst::Class(_) | Inst::Match => {}
            }
        }
    }

    /// Runs the VM with all threads started at haystack offset `at`.
    /// Returns the end offset of the longest match.
    fn run_from(&mut self, haystack: &[u8], at: usize) -> Option<usize> {
        let len = haystack.len();
        self.clist.clear();
        Self::add_thread(&mut self.clist, self.prog, 0, at, len);
        let mut last_match = None;
        let mut pos = at;
        loop {
            if self.clist.dense.is_empty() {
                break;
            }
            // Record a match if any current thread accepts at `pos`.
            if self.clist.dense.iter().any(|&pc| matches!(self.prog.insts[pc as usize], Inst::Match)) {
                last_match = Some(pos);
            }
            if pos >= len {
                break;
            }
            let skipped = self.try_bulk_skip(haystack, pos);
            if skipped > 0 {
                pos += skipped;
                // The thread set is unchanged across the skip, so a pending
                // Match thread accepts at every skipped position; only the
                // last one matters.
                if self.clist.dense.iter().any(|&pc| matches!(self.prog.insts[pc as usize], Inst::Match)) {
                    last_match = Some(pos);
                }
            }
            let byte = haystack[pos];
            self.nlist.clear();
            for i in 0..self.clist.dense.len() {
                let pc = self.clist.dense[i];
                let advance = match self.prog.insts[pc as usize] {
                    Inst::Byte(b) => b == byte,
                    Inst::AnyByte => byte != b'\n',
                    Inst::Class(id) => self.prog.classes[id as usize].contains(byte),
                    _ => false,
                };
                if advance {
                    Self::add_thread(&mut self.nlist, self.prog, pc + 1, pos + 1, len);
                }
            }
            std::mem::swap(&mut self.clist, &mut self.nlist);
            pos += 1;
        }
        last_match
    }

    /// Star-loop fast path: when the live thread set is the steady state of a
    /// single `e*`/`e+` loop over one consuming instruction, whole runs of
    /// bytes that *only* the loop body can consume map the thread set onto
    /// itself. Those bytes are skipped in bulk instead of being stepped one
    /// NFA generation at a time — this is what makes `[^|]*\|`-style
    /// field scans linear with a small constant, as in the paper's Sirius
    /// projections.
    ///
    /// Returns the number of haystack bytes that can be consumed without
    /// changing the thread set (0 when the fast path does not apply).
    fn try_bulk_skip(&mut self, haystack: &[u8], pos: usize) -> usize {
        // Anchors make thread closures position-dependent at the haystack
        // edges, so the fast path only runs strictly inside the haystack.
        if pos == 0 || self.clist.dense.len() > 8 {
            return 0;
        }
        // Exactly one live thread may be a star-loop body.
        let mut found: Option<(InstPtr, InstPtr)> = None;
        for &pc in &self.clist.dense {
            if let Some(reentry) = self.loop_reentry(pc) {
                if found.is_some() {
                    return 0;
                }
                found = Some((pc, reentry));
            }
        }
        let Some((body_pc, reentry)) = found else { return 0 };
        let body_set = self.consume_set(body_pc);
        // Cheap pre-check: only bother with the closure comparison when at
        // least a two-byte run is in front of us.
        let Some(&b0) = haystack.get(pos) else { return 0 };
        let Some(&b1) = haystack.get(pos + 1) else { return 0 };
        if !body_set.contains(b0) || !body_set.contains(b1) {
            return 0;
        }
        // The state must be the loop's steady state: stepping the body thread
        // re-enters via `reentry`, so closure(reentry) must reproduce the
        // current thread set exactly.
        let len = haystack.len();
        self.scratch.clear();
        Self::add_thread(&mut self.scratch, self.prog, reentry, pos, len);
        if self.scratch.dense.len() != self.clist.dense.len()
            || !self.clist.dense.iter().all(|&pc| self.scratch.contains(pc))
        {
            return 0;
        }
        // Bytes consumable by any *other* live thread would fork the state;
        // restrict the skip to bytes only the loop body matches.
        let mut skip_set = body_set;
        for &pc in &self.clist.dense {
            if pc == body_pc {
                continue;
            }
            match self.prog.insts[pc as usize] {
                Inst::Byte(_) | Inst::AnyByte | Inst::Class(_) => {
                    skip_set.subtract(&self.consume_set(pc));
                }
                _ => {}
            }
        }
        // Leave the final byte to the normal loop so end-anchor closures are
        // never computed mid-skip.
        let limit = len - 1;
        let mut k = 0;
        while pos + k < limit && skip_set.contains(haystack[pos + k]) {
            k += 1;
        }
        k
    }

    /// If `pc` is the body of a star/plus loop — a consuming instruction that
    /// loops back to a `Split` re-entering it — returns the re-entry pc whose
    /// closure is the loop's steady state.
    fn loop_reentry(&self, pc: InstPtr) -> Option<InstPtr> {
        if !matches!(self.prog.insts[pc as usize], Inst::Byte(_) | Inst::AnyByte | Inst::Class(_)) {
            return None;
        }
        match self.prog.insts.get(pc as usize + 1)? {
            // e+ : body; Split(body, end)
            Inst::Split(l, _) if *l == pc => Some(pc + 1),
            // e* : Split(body, end); body; Jmp(split)
            Inst::Jmp(s) => match self.prog.insts.get(*s as usize)? {
                Inst::Split(l, _) if *l == pc => Some(*s),
                _ => None,
            },
            _ => None,
        }
    }

    /// The set of bytes a consuming instruction advances on.
    fn consume_set(&self, pc: InstPtr) -> ByteSet {
        let mut set = ByteSet::new();
        match self.prog.insts[pc as usize] {
            Inst::Byte(b) => set.insert(b),
            Inst::AnyByte => {
                set.insert_range(0, 255);
                let mut nl = ByteSet::new();
                nl.insert(b'\n');
                set.subtract(&nl);
            }
            Inst::Class(id) => set.union(&self.prog.classes[id as usize]),
            _ => {}
        }
        set
    }
}

/// Longest match starting exactly at `at`.
pub fn match_at(prog: &Program, haystack: &[u8], at: usize) -> Option<usize> {
    if at > haystack.len() {
        return None;
    }
    Vm::new(prog).run_from(haystack, at)
}

/// Leftmost match at or after `start`; longest at that position.
pub fn find_at(prog: &Program, haystack: &[u8], start: usize) -> Option<(usize, usize)> {
    if start > haystack.len() {
        return None;
    }
    let mut vm = Vm::new(prog);
    if prog.anchored_start {
        // Anchored patterns can only match at offset 0.
        if start > 0 {
            return None;
        }
        return vm.run_from(haystack, 0).map(|end| (0, end));
    }
    for at in start..=haystack.len() {
        if let Some(end) = vm.run_from(haystack, at) {
            return Some((at, end));
        }
    }
    None
}

/// Whether the pattern matches anywhere.
pub fn is_match(prog: &Program, haystack: &[u8]) -> bool {
    find_at(prog, haystack, 0).is_some()
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    // Reference implementation: naive backtracking matcher over the AST, used
    // to cross-check the VM on random inputs.
    mod oracle {
        use crate::ast::Ast;

        pub fn match_lengths(ast: &Ast, hay: &[u8], at: usize, total: usize) -> Vec<usize> {
            let mut out = Vec::new();
            go(ast, hay, at, total, &mut |end| out.push(end));
            out.sort_unstable();
            out.dedup();
            out
        }

        fn go(ast: &Ast, hay: &[u8], at: usize, total: usize, k: &mut dyn FnMut(usize)) {
            match ast {
                Ast::Empty => k(at),
                Ast::Byte(b) => {
                    if hay.get(at) == Some(b) {
                        k(at + 1)
                    }
                }
                Ast::AnyByte => {
                    if hay.get(at).is_some_and(|&b| b != b'\n') {
                        k(at + 1)
                    }
                }
                Ast::Class(set) => {
                    if hay.get(at).is_some_and(|&b| set.contains(b)) {
                        k(at + 1)
                    }
                }
                Ast::AssertStart => {
                    if at == 0 {
                        k(at)
                    }
                }
                Ast::AssertEnd => {
                    if at == total {
                        k(at)
                    }
                }
                Ast::Concat(parts) => concat(parts, hay, at, total, k),
                Ast::Alternate(bs) => {
                    for b in bs {
                        go(b, hay, at, total, k)
                    }
                }
                Ast::Repeat { node, min, max } => {
                    repeat(node, *min, *max, hay, at, total, &mut Vec::new(), k)
                }
            }
        }

        fn concat(parts: &[Ast], hay: &[u8], at: usize, total: usize, k: &mut dyn FnMut(usize)) {
            match parts.split_first() {
                None => k(at),
                Some((head, rest)) => {
                    go(head, hay, at, total, &mut |mid| concat(rest, hay, mid, total, k))
                }
            }
        }

        fn repeat(
            node: &Ast,
            min: u32,
            max: Option<u32>,
            hay: &[u8],
            at: usize,
            total: usize,
            seen: &mut Vec<(u32, usize)>,
            k: &mut dyn FnMut(usize),
        ) {
            if min == 0 {
                k(at);
            }
            if max == Some(0) {
                return;
            }
            let depth = min; // counts down toward zero
            if seen.contains(&(depth, at)) {
                return;
            }
            seen.push((depth, at));
            go(node, hay, at, total, &mut |mid| {
                if mid == at {
                    return; // empty-width loop; avoid infinite recursion
                }
                let nmin = min.saturating_sub(1);
                let nmax = max.map(|m| m - 1);
                repeat(node, nmin, nmax, hay, mid, total, seen, k);
            });
        }
    }

    proptest::proptest! {
        #[test]
        fn vm_agrees_with_backtracking_oracle(
            pat_idx in 0usize..12,
            hay in proptest::collection::vec(
                proptest::sample::select(vec![b'a', b'b', b'c', b'|', b'0', b'1', b' ']), 0..24),
        ) {
            let pats = [
                r"a+b*", r"(a|b)+c?", r"[ab]{2,4}", r"a.c", r"\d+",
                r"(?:ab)*", r"a|bc|", r"[^|]*\|", r"^(a|b)+$", r"a{3}",
                r"(a*)*b", r"\w+\s?",
            ];
            let pat = pats[pat_idx];
            let re = Regex::new(pat).unwrap();
            let ast = crate::parse::parse(pat).unwrap();
            for at in 0..=hay.len() {
                let got = re.match_at(&hay, at);
                let want = oracle::match_lengths(&ast, &hay, at, hay.len()).into_iter().max();
                proptest::prop_assert_eq!(got, want, "pattern {} at {} on {:?}", pat, at, hay);
            }
        }
    }

    #[test]
    fn bulk_skip_long_runs_match_exactly() {
        // Shapes that trigger the star-loop fast path, on runs long enough
        // that the bulk skip dominates. Expected values are computed by hand.
        let mut hay = vec![b'x'; 10_000];
        hay.push(b'|');
        hay.extend_from_slice(b"rest");

        // e* with a trailing delimiter: steady state {class-body, Byte('|')}.
        let re = Regex::new(r"[^|]*\|").unwrap();
        assert_eq!(re.match_at(&hay, 0), Some(10_001));
        assert_eq!(re.match_at(&hay, 3), Some(10_001));

        // Bare e*: steady state includes a live Match thread, so the skip
        // must keep reporting the longest accepted position.
        let re = Regex::new(r"[^|]*").unwrap();
        assert_eq!(re.match_at(&hay, 0), Some(10_000));
        assert_eq!(re.match_at(&hay, 9_999), Some(10_000));

        // e+ shape (Split directly after the body).
        let re = Regex::new(r"x+").unwrap();
        assert_eq!(re.match_at(&hay, 0), Some(10_000));
        assert_eq!(re.match_at(&hay, 10_000), None);

        // Run ending exactly at the haystack end with an end anchor: the
        // final byte is stepped normally so the anchor closure stays correct.
        let digits = vec![b'7'; 4_096];
        let re = Regex::new(r"^\d+$").unwrap();
        assert_eq!(re.match_at(&digits, 0), Some(4_096));
        let re = Regex::new(r"\d*$").unwrap();
        assert_eq!(re.match_at(&digits, 1), Some(4_096));
    }

    #[test]
    fn bulk_skip_respects_competing_threads() {
        // `a*ab` — the exit path consumes 'a' too, so the skip set is empty
        // and the VM must still find the right answer by stepping.
        let re = Regex::new("a*ab").unwrap();
        let mut hay = vec![b'a'; 512];
        hay.push(b'b');
        assert_eq!(re.match_at(&hay, 0), Some(513));

        // Two star-loop bodies live at once (`a*b*`): the fast path declines
        // rather than corrupting the state.
        let re = Regex::new("a*b*c").unwrap();
        let mut hay = vec![b'a'; 512];
        hay.push(b'c');
        assert_eq!(re.match_at(&hay, 0), Some(513));
        let mut hay = vec![b'a'; 256];
        hay.extend(vec![b'b'; 256]);
        hay.push(b'c');
        assert_eq!(re.match_at(&hay, 0), Some(513));
    }

    #[test]
    fn no_blowup_on_pathological_pattern() {
        // (a*)*b on a long run of 'a' with no 'b' is exponential for
        // backtracking engines; the VM must finish instantly.
        let re = Regex::new("(a*)*b").unwrap();
        let hay = vec![b'a'; 4096];
        assert!(!re.is_match(&hay));
    }
}
