//! Pike-VM execution over compiled programs.
//!
//! The VM advances a set of NFA threads one haystack position at a time.
//! Because thread sets are deduplicated per position, matching is
//! `O(insts × bytes)` with no backtracking. Threads are ordered, and we keep
//! scanning after the first accepting thread so `match_at` reports the
//! *longest* match at its start position — the semantics the PADS runtime
//! needs when consuming a regex literal.

use crate::compile::{Inst, InstPtr, Program};

/// Deduplicating worklist of thread program counters.
struct ThreadList {
    dense: Vec<InstPtr>,
    sparse_gen: Vec<u32>,
    gen: u32,
}

impl ThreadList {
    fn new(n: usize) -> ThreadList {
        ThreadList { dense: Vec::with_capacity(n), sparse_gen: vec![0; n], gen: 0 }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.gen += 1;
    }

    fn contains(&self, pc: InstPtr) -> bool {
        self.sparse_gen[pc as usize] == self.gen
    }

    fn insert(&mut self, pc: InstPtr) {
        self.sparse_gen[pc as usize] = self.gen;
        self.dense.push(pc);
    }
}

struct Vm<'p> {
    prog: &'p Program,
    clist: ThreadList,
    nlist: ThreadList,
}

impl<'p> Vm<'p> {
    fn new(prog: &'p Program) -> Vm<'p> {
        let n = prog.insts.len();
        Vm { prog, clist: ThreadList::new(n), nlist: ThreadList::new(n) }
    }

    /// Follows epsilon transitions from `pc`, adding consuming instructions
    /// (and `Match`) to `list`. `pos` is the current haystack offset, needed
    /// for anchors.
    fn add_thread(list: &mut ThreadList, prog: &Program, pc: InstPtr, pos: usize, len: usize) {
        let mut stack = vec![pc];
        while let Some(pc) = stack.pop() {
            if list.contains(pc) {
                continue;
            }
            list.insert(pc);
            match prog.insts[pc as usize] {
                Inst::Jmp(t) => stack.push(t),
                Inst::Split(a, b) => {
                    // Push b first so a is processed first (priority order).
                    stack.push(b);
                    stack.push(a);
                }
                Inst::AssertStart => {
                    if pos == 0 {
                        stack.push(pc + 1);
                    }
                }
                Inst::AssertEnd => {
                    if pos == len {
                        stack.push(pc + 1);
                    }
                }
                Inst::Byte(_) | Inst::AnyByte | Inst::Class(_) | Inst::Match => {}
            }
        }
    }

    /// Runs the VM with all threads started at haystack offset `at`.
    /// Returns the end offset of the longest match.
    fn run_from(&mut self, haystack: &[u8], at: usize) -> Option<usize> {
        let len = haystack.len();
        self.clist.clear();
        Self::add_thread(&mut self.clist, self.prog, 0, at, len);
        let mut last_match = None;
        let mut pos = at;
        loop {
            if self.clist.dense.is_empty() {
                break;
            }
            // Record a match if any current thread accepts at `pos`.
            if self.clist.dense.iter().any(|&pc| matches!(self.prog.insts[pc as usize], Inst::Match)) {
                last_match = Some(pos);
            }
            if pos >= len {
                break;
            }
            let byte = haystack[pos];
            self.nlist.clear();
            for i in 0..self.clist.dense.len() {
                let pc = self.clist.dense[i];
                let advance = match self.prog.insts[pc as usize] {
                    Inst::Byte(b) => b == byte,
                    Inst::AnyByte => byte != b'\n',
                    Inst::Class(id) => self.prog.classes[id as usize].contains(byte),
                    _ => false,
                };
                if advance {
                    Self::add_thread(&mut self.nlist, self.prog, pc + 1, pos + 1, len);
                }
            }
            std::mem::swap(&mut self.clist, &mut self.nlist);
            pos += 1;
        }
        last_match
    }
}

/// Longest match starting exactly at `at`.
pub fn match_at(prog: &Program, haystack: &[u8], at: usize) -> Option<usize> {
    if at > haystack.len() {
        return None;
    }
    Vm::new(prog).run_from(haystack, at)
}

/// Leftmost match at or after `start`; longest at that position.
pub fn find_at(prog: &Program, haystack: &[u8], start: usize) -> Option<(usize, usize)> {
    if start > haystack.len() {
        return None;
    }
    let mut vm = Vm::new(prog);
    if prog.anchored_start {
        // Anchored patterns can only match at offset 0.
        if start > 0 {
            return None;
        }
        return vm.run_from(haystack, 0).map(|end| (0, end));
    }
    for at in start..=haystack.len() {
        if let Some(end) = vm.run_from(haystack, at) {
            return Some((at, end));
        }
    }
    None
}

/// Whether the pattern matches anywhere.
pub fn is_match(prog: &Program, haystack: &[u8]) -> bool {
    find_at(prog, haystack, 0).is_some()
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    // Reference implementation: naive backtracking matcher over the AST, used
    // to cross-check the VM on random inputs.
    mod oracle {
        use crate::ast::Ast;

        pub fn match_lengths(ast: &Ast, hay: &[u8], at: usize, total: usize) -> Vec<usize> {
            let mut out = Vec::new();
            go(ast, hay, at, total, &mut |end| out.push(end));
            out.sort_unstable();
            out.dedup();
            out
        }

        fn go(ast: &Ast, hay: &[u8], at: usize, total: usize, k: &mut dyn FnMut(usize)) {
            match ast {
                Ast::Empty => k(at),
                Ast::Byte(b) => {
                    if hay.get(at) == Some(b) {
                        k(at + 1)
                    }
                }
                Ast::AnyByte => {
                    if hay.get(at).is_some_and(|&b| b != b'\n') {
                        k(at + 1)
                    }
                }
                Ast::Class(set) => {
                    if hay.get(at).is_some_and(|&b| set.contains(b)) {
                        k(at + 1)
                    }
                }
                Ast::AssertStart => {
                    if at == 0 {
                        k(at)
                    }
                }
                Ast::AssertEnd => {
                    if at == total {
                        k(at)
                    }
                }
                Ast::Concat(parts) => concat(parts, hay, at, total, k),
                Ast::Alternate(bs) => {
                    for b in bs {
                        go(b, hay, at, total, k)
                    }
                }
                Ast::Repeat { node, min, max } => {
                    repeat(node, *min, *max, hay, at, total, &mut Vec::new(), k)
                }
            }
        }

        fn concat(parts: &[Ast], hay: &[u8], at: usize, total: usize, k: &mut dyn FnMut(usize)) {
            match parts.split_first() {
                None => k(at),
                Some((head, rest)) => {
                    go(head, hay, at, total, &mut |mid| concat(rest, hay, mid, total, k))
                }
            }
        }

        fn repeat(
            node: &Ast,
            min: u32,
            max: Option<u32>,
            hay: &[u8],
            at: usize,
            total: usize,
            seen: &mut Vec<(u32, usize)>,
            k: &mut dyn FnMut(usize),
        ) {
            if min == 0 {
                k(at);
            }
            if max == Some(0) {
                return;
            }
            let depth = min; // counts down toward zero
            if seen.contains(&(depth, at)) {
                return;
            }
            seen.push((depth, at));
            go(node, hay, at, total, &mut |mid| {
                if mid == at {
                    return; // empty-width loop; avoid infinite recursion
                }
                let nmin = min.saturating_sub(1);
                let nmax = max.map(|m| m - 1);
                repeat(node, nmin, nmax, hay, mid, total, seen, k);
            });
        }
    }

    proptest::proptest! {
        #[test]
        fn vm_agrees_with_backtracking_oracle(
            pat_idx in 0usize..12,
            hay in proptest::collection::vec(
                proptest::sample::select(vec![b'a', b'b', b'c', b'|', b'0', b'1', b' ']), 0..24),
        ) {
            let pats = [
                r"a+b*", r"(a|b)+c?", r"[ab]{2,4}", r"a.c", r"\d+",
                r"(?:ab)*", r"a|bc|", r"[^|]*\|", r"^(a|b)+$", r"a{3}",
                r"(a*)*b", r"\w+\s?",
            ];
            let pat = pats[pat_idx];
            let re = Regex::new(pat).unwrap();
            let ast = crate::parse::parse(pat).unwrap();
            for at in 0..=hay.len() {
                let got = re.match_at(&hay, at);
                let want = oracle::match_lengths(&ast, &hay, at, hay.len()).into_iter().max();
                proptest::prop_assert_eq!(got, want, "pattern {} at {} on {:?}", pat, at, hay);
            }
        }
    }

    #[test]
    fn no_blowup_on_pathological_pattern() {
        // (a*)*b on a long run of 'a' with no 'b' is exponential for
        // backtracking engines; the VM must finish instantly.
        let re = Regex::new("(a*)*b").unwrap();
        let hay = vec![b'a'; 4096];
        assert!(!re.is_match(&hay));
    }
}
