//! The fixed runtime prelude emitted at the top of every generated module.
//!
//! Generated parsers are self-contained: they depend only on
//! `pads_runtime` plus these helper functions, which mirror the framing,
//! literal-matching, and base-type reading semantics of the interpreting
//! parser. The text below is injected verbatim by [`crate::generate_rust`].

/// Helper source injected into every generated module.
pub const PRELUDE: &str = r#"
use pads_runtime::date::PDate;
use pads_runtime::{
    Charset, Cursor, Endian, ErrorCode, Loc, Mask, ParseDesc, ParseState, PdKind, Pos, Prim,
    Registry,
};

fn registry() -> &'static Registry {
    static R: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    R.get_or_init(Registry::standard)
}

// ---- value coercions for compiled constraints -------------------------------

pub trait PcVal {
    fn pc_num(&self) -> i64;
    fn pc_str(&self) -> Option<&str> {
        None
    }
}

macro_rules! pc_num_impl {
    ($($t:ty),*) => {$(
        impl PcVal for $t {
            fn pc_num(&self) -> i64 { *self as i64 }
        }
    )*};
}
pc_num_impl!(u8, u16, u32, u64, i8, i16, i32, i64, bool);

impl PcVal for f64 {
    fn pc_num(&self) -> i64 {
        *self as i64
    }
}

impl PcVal for f32 {
    fn pc_num(&self) -> i64 {
        *self as i64
    }
}

impl PcVal for String {
    fn pc_num(&self) -> i64 {
        0
    }
    fn pc_str(&self) -> Option<&str> {
        Some(self)
    }
}

impl PcVal for str {
    fn pc_num(&self) -> i64 {
        0
    }
    fn pc_str(&self) -> Option<&str> {
        Some(self)
    }
}

impl PcVal for PDate {
    fn pc_num(&self) -> i64 {
        self.epoch
    }
}

impl PcVal for [u8; 4] {
    fn pc_num(&self) -> i64 {
        u32::from_be_bytes(*self) as i64
    }
}

impl PcVal for Prim {
    fn pc_num(&self) -> i64 {
        self.as_i64().unwrap_or(0)
    }
    fn pc_str(&self) -> Option<&str> {
        self.as_str()
    }
}

impl<T: PcVal> PcVal for Option<T> {
    fn pc_num(&self) -> i64 {
        self.as_ref().map(PcVal::pc_num).unwrap_or(0)
    }
    fn pc_str(&self) -> Option<&str> {
        self.as_ref().and_then(PcVal::pc_str)
    }
}

pub fn pc_eq<A: PcVal + ?Sized, B: PcVal + ?Sized>(a: &A, b: &B) -> bool {
    match (a.pc_str(), b.pc_str()) {
        (Some(x), Some(y)) => x == y,
        (None, None) => a.pc_num() == b.pc_num(),
        _ => false,
    }
}

pub fn pc_cmp<A: PcVal + ?Sized, B: PcVal + ?Sized>(a: &A, b: &B) -> std::cmp::Ordering {
    match (a.pc_str(), b.pc_str()) {
        (Some(x), Some(y)) => x.cmp(y),
        _ => a.pc_num().cmp(&b.pc_num()),
    }
}

// ---- framing and literals ----------------------------------------------------

/// Opens a record if `is_record` and none is open. Returns
/// `(opened, pending_error, hard_eof, budget_skipped)`. When the error
/// budget is exhausted in skip-record mode, the record is framed and
/// skipped wholesale and the ready-made descriptor is returned instead of
/// parsing (mirroring the interpreting parser's graceful degradation).
fn pc_open_record(
    cur: &mut Cursor<'_>,
) -> (bool, Option<(ErrorCode, Loc)>, bool, Option<ParseDesc>) {
    if cur.in_record() {
        return (false, None, false, None);
    }
    if cur.skip_records() && !cur.at_eof() {
        let start = cur.position();
        if cur.begin_record().is_ok() {
            let _ = cur.end_record();
        }
        let mut pd =
            ParseDesc::error(ErrorCode::BudgetExhausted, Loc::new(start, cur.position()));
        pd.state = ParseState::Panic;
        cur.note_skipped_record();
        cur.observe_record_close(&pd);
        return (false, None, false, Some(pd));
    }
    match cur.begin_record() {
        Ok(()) => (true, None, false, None),
        Err(ErrorCode::UnexpectedEof) => (false, None, true, None),
        Err(code) => (true, Some((code, Loc::at(cur.position()))), false, None),
    }
}

/// Closes a record opened by `pc_open_record`, handling panic recovery,
/// trailing-data detection, skipped-byte accounting, and the error budget
/// exactly like the interpreting parser.
fn pc_close_record(cur: &mut Cursor<'_>, pd: &mut ParseDesc, syntax_failed: bool) {
    let mut panic_skipped = 0u64;
    if syntax_failed {
        let at = cur.position();
        let close = cur.end_record();
        if close.skipped > 0 {
            pd.note_panic_skip(Loc::new(
                at,
                Pos {
                    offset: at.offset + close.skipped,
                    record: at.record,
                    byte: at.byte + close.skipped,
                },
            ));
            panic_skipped = close.skipped as u64;
        }
    } else {
        if !cur.at_eor() {
            pd.add_error(ErrorCode::ExtraDataBeforeEor, Loc::at(cur.position()));
        }
        let close = cur.end_record();
        panic_skipped = close.skipped as u64;
    }
    if let Some(cap) = cur.policy().max_record_errs {
        if pd.nerr > cap {
            pd.truncate_detail();
        }
    }
    cur.note_record_errors(pd.nerr, panic_skipped);
    if cur.best_effort() {
        pd.truncate_detail();
    }
    cur.observe_record_close(pd);
}

/// Whether a descriptor records a syntactic (non-constraint) problem.
pub fn pc_syntax_failed(pd: &ParseDesc) -> bool {
    if pd.state != ParseState::Ok {
        return true;
    }
    if pd.nerr == 0 {
        return false;
    }
    pd.errors().iter().any(|(_, code, _)| !code.is_semantic())
}

fn pc_match_str(cur: &mut Cursor<'_>, lit: &[u8]) -> bool {
    if cur.charset() == Charset::Ascii {
        cur.match_bytes(lit)
    } else {
        let enc: Vec<u8> = lit.iter().map(|&b| cur.charset().encode(b)).collect();
        cur.match_bytes(&enc)
    }
}

fn pc_match_char(cur: &mut Cursor<'_>, c: u8) -> bool {
    let raw = cur.charset().encode(c);
    if cur.peek() == Some(raw) {
        cur.advance(1);
        true
    } else {
        false
    }
}

fn pc_match_regex(cur: &mut Cursor<'_>, pat: &str) -> bool {
    match cur.regex(pat) {
        Ok(re) => cur.match_regex(&re).is_some(),
        Err(_) => false,
    }
}

// ---- base-type readers ---------------------------------------------------------

/// Dynamic fallback through the registry; restores the cursor on error.
fn rd_prim(cur: &mut Cursor<'_>, name: &str, args: &[Prim]) -> Result<Prim, ErrorCode> {
    let bt = registry().get(name).ok_or(ErrorCode::EvalError)?;
    let cp = cur.checkpoint();
    match bt.parse(cur, args) {
        Ok(p) => Ok(p),
        Err(e) => {
            cur.restore(cp);
            Err(e)
        }
    }
}

fn wr_text(out: &mut Vec<u8>, s: &str, charset: Charset) {
    if charset == Charset::Ascii {
        out.extend_from_slice(s.as_bytes());
    } else {
        out.extend(s.bytes().map(|b| charset.encode(b)));
    }
}

fn wr_u64(out: &mut Vec<u8>, v: u64, charset: Charset) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if charset == Charset::Ascii {
        out.extend_from_slice(&buf[i..]);
    } else {
        out.extend(buf[i..].iter().map(|&b| charset.encode(b)));
    }
}

fn wr_i64(out: &mut Vec<u8>, v: i64, charset: Charset) {
    if v < 0 {
        out.push(charset.encode(b'-'));
    }
    wr_u64(out, v.unsigned_abs(), charset);
}

fn wr_prim(
    out: &mut Vec<u8>,
    name: &str,
    v: &Prim,
    args: &[Prim],
    charset: Charset,
    endian: Endian,
) -> Result<(), ErrorCode> {
    let bt = registry().get(name).ok_or(ErrorCode::EvalError)?;
    bt.write(out, v, args, charset, endian)
}

/// Fast inline decimal reader for the ambient charset (ASCII fast path).
fn rd_uint(cur: &mut Cursor<'_>, bits: u32, forced: Option<Charset>) -> Result<u64, ErrorCode> {
    let cs = forced.unwrap_or(cur.charset());
    if cs == Charset::Ascii {
        let rest = cur.rest();
        let mut val: u64 = 0;
        let mut n = 0usize;
        for &b in rest {
            if !b.is_ascii_digit() {
                break;
            }
            val = val
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as u64))
                .ok_or(ErrorCode::RangeError)?;
            n += 1;
        }
        if n == 0 {
            return Err(ErrorCode::InvalidDigit);
        }
        if bits < 64 && val >= 1u64 << bits {
            return Err(ErrorCode::RangeError);
        }
        cur.advance(n);
        Ok(val)
    } else {
        let name = format!("Pe_uint{bits}");
        match rd_prim(cur, &name, &[])? {
            Prim::Uint(v) => Ok(v),
            _ => Err(ErrorCode::EvalError),
        }
    }
}

fn rd_int(cur: &mut Cursor<'_>, bits: u32, forced: Option<Charset>) -> Result<i64, ErrorCode> {
    let cs = forced.unwrap_or(cur.charset());
    if cs == Charset::Ascii {
        let rest = cur.rest();
        let mut i = 0usize;
        let mut neg = false;
        if matches!(rest.first(), Some(b'-' | b'+')) {
            neg = rest[0] == b'-';
            i = 1;
        }
        let mut val: i64 = 0;
        let mut digits = 0usize;
        while let Some(&b) = rest.get(i) {
            if !b.is_ascii_digit() {
                break;
            }
            val = val
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as i64))
                .ok_or(ErrorCode::RangeError)?;
            i += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(ErrorCode::InvalidDigit);
        }
        let val = if neg { -val } else { val };
        if bits < 64 {
            let max = (1i64 << (bits - 1)) - 1;
            let min = -(1i64 << (bits - 1));
            if val < min || val > max {
                return Err(ErrorCode::RangeError);
            }
        }
        cur.advance(i);
        Ok(val)
    } else {
        let name = format!("Pe_int{bits}");
        match rd_prim(cur, &name, &[])? {
            Prim::Int(v) => Ok(v),
            _ => Err(ErrorCode::EvalError),
        }
    }
}

fn rd_uint_fw(
    cur: &mut Cursor<'_>,
    bits: u32,
    width: u64,
    forced: Option<Charset>,
) -> Result<u64, ErrorCode> {
    let _ = forced;
    let name = format!("Puint{bits}_FW");
    match rd_prim(cur, &name, &[Prim::Uint(width)])? {
        Prim::Uint(v) => Ok(v),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_int_fw(
    cur: &mut Cursor<'_>,
    bits: u32,
    width: u64,
    forced: Option<Charset>,
) -> Result<i64, ErrorCode> {
    let _ = forced;
    let name = format!("Pint{bits}_FW");
    match rd_prim(cur, &name, &[Prim::Uint(width)])? {
        Prim::Int(v) => Ok(v),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_string_term(cur: &mut Cursor<'_>, term: u8) -> Result<String, ErrorCode> {
    let cs = cur.charset();
    let raw_term = cs.encode(term);
    let len = cur.find_byte(raw_term).unwrap_or(cur.remaining());
    let raw = cur.take(len)?;
    Ok(raw.iter().map(|&b| cs.decode(b) as char).collect())
}

fn rd_char(cur: &mut Cursor<'_>, forced: Option<Charset>) -> Result<u8, ErrorCode> {
    let cs = forced.unwrap_or(cur.charset());
    let b = cur.next_byte().ok_or(if cur.in_record() {
        ErrorCode::UnexpectedEor
    } else {
        ErrorCode::UnexpectedEof
    })?;
    Ok(cs.decode(b))
}

fn rd_string(cur: &mut Cursor<'_>, name: &str, args: &[Prim]) -> Result<String, ErrorCode> {
    match rd_prim(cur, name, args)? {
        Prim::String(s) => Ok(s),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_date(cur: &mut Cursor<'_>, term: Option<u8>) -> Result<PDate, ErrorCode> {
    let args: Vec<Prim> = term.map(Prim::Char).into_iter().collect();
    match rd_prim(cur, "Pdate", &args)? {
        Prim::Date(d) => Ok(d),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_ip(cur: &mut Cursor<'_>) -> Result<[u8; 4], ErrorCode> {
    match rd_prim(cur, "Pip", &[])? {
        Prim::Ip(o) => Ok(o),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_float(cur: &mut Cursor<'_>, name: &str) -> Result<f64, ErrorCode> {
    match rd_prim(cur, name, &[])? {
        Prim::Float(v) => Ok(v),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_i64_dyn(cur: &mut Cursor<'_>, name: &str, args: &[Prim]) -> Result<i64, ErrorCode> {
    match rd_prim(cur, name, args)? {
        Prim::Int(v) => Ok(v),
        Prim::Uint(v) => i64::try_from(v).map_err(|_| ErrorCode::RangeError),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_u64_dyn(cur: &mut Cursor<'_>, name: &str, args: &[Prim]) -> Result<u64, ErrorCode> {
    match rd_prim(cur, name, args)? {
        Prim::Uint(v) => Ok(v),
        Prim::Int(v) => u64::try_from(v).map_err(|_| ErrorCode::RangeError),
        _ => Err(ErrorCode::EvalError),
    }
}
"#;
