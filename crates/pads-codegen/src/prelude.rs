//! The fixed runtime prelude emitted at the top of every generated module.
//!
//! Generated parsers are self-contained: they depend only on
//! `pads_runtime` plus these helper functions, which mirror the framing,
//! literal-matching, and base-type reading semantics of the interpreting
//! parser. The text below is injected verbatim by [`crate::generate_rust`].

/// Helper source injected into every generated module.
pub const PRELUDE: &str = r#"
use pads_runtime::date::PDate;
use pads_runtime::{
    AVal, Charset, ClassBitmap, Cursor, Endian, ErrorBudget, ErrorCode, Loc, Mask, MetricsCore,
    Name, NameId, NameTable, ParseDesc, ParseState, PdKind, Pos, Prim, PrimView, RecoveryPolicy,
    Registry, ResumePoint, SparseElts, ValueArena,
};

// ---- borrowed string leaves --------------------------------------------------

/// A parsed string leaf. On the ASCII fast path it borrows directly from
/// the input buffer (zero copies, zero allocations); it owns a heap
/// `String` only when decoding had to rewrite bytes (EBCDIC input,
/// non-UTF-8 content) or when the value came through the dynamic registry.
///
/// `PStr` dereferences to `str`, so consumers treat it as a plain string;
/// call [`PStr::into_owned`] to detach it from the buffer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PStr<'s>(pub std::borrow::Cow<'s, str>);

impl<'s> PStr<'s> {
    /// Borrows a slice of the input buffer.
    pub fn borrowed(s: &'s str) -> PStr<'s> {
        PStr(std::borrow::Cow::Borrowed(s))
    }

    /// Wraps an owned (decoded) string.
    pub fn owned(s: String) -> PStr<'static> {
        PStr(std::borrow::Cow::Owned(s))
    }

    /// The string content.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Detaches the value from the input buffer.
    pub fn into_owned(self) -> String {
        self.0.into_owned()
    }
}

impl Default for PStr<'_> {
    fn default() -> Self {
        PStr(std::borrow::Cow::Borrowed(""))
    }
}

impl std::ops::Deref for PStr<'_> {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for PStr<'_> {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for PStr<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq<str> for PStr<'_> {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for PStr<'_> {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for PStr<'_> {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<PStr<'_>> for str {
    fn eq(&self, other: &PStr<'_>) -> bool {
        self == other.as_str()
    }
}

impl<'s> From<&'s str> for PStr<'s> {
    fn from(s: &'s str) -> PStr<'s> {
        PStr::borrowed(s)
    }
}

impl From<String> for PStr<'static> {
    fn from(s: String) -> PStr<'static> {
        PStr::owned(s)
    }
}

fn registry() -> &'static Registry {
    static R: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    R.get_or_init(Registry::standard)
}

// ---- value coercions for compiled constraints -------------------------------

pub trait PcVal {
    fn pc_num(&self) -> i64;
    fn pc_str(&self) -> Option<&str> {
        None
    }
}

macro_rules! pc_num_impl {
    ($($t:ty),*) => {$(
        impl PcVal for $t {
            fn pc_num(&self) -> i64 { *self as i64 }
        }
    )*};
}
pc_num_impl!(u8, u16, u32, u64, i8, i16, i32, i64, bool);

impl PcVal for f64 {
    fn pc_num(&self) -> i64 {
        *self as i64
    }
}

impl PcVal for f32 {
    fn pc_num(&self) -> i64 {
        *self as i64
    }
}

impl PcVal for String {
    fn pc_num(&self) -> i64 {
        0
    }
    fn pc_str(&self) -> Option<&str> {
        Some(self)
    }
}

impl PcVal for PStr<'_> {
    fn pc_num(&self) -> i64 {
        0
    }
    fn pc_str(&self) -> Option<&str> {
        Some(self.as_str())
    }
}

impl PcVal for str {
    fn pc_num(&self) -> i64 {
        0
    }
    fn pc_str(&self) -> Option<&str> {
        Some(self)
    }
}

impl PcVal for PDate {
    fn pc_num(&self) -> i64 {
        self.epoch
    }
}

impl PcVal for [u8; 4] {
    fn pc_num(&self) -> i64 {
        u32::from_be_bytes(*self) as i64
    }
}

impl PcVal for Prim {
    fn pc_num(&self) -> i64 {
        self.as_i64().unwrap_or(0)
    }
    fn pc_str(&self) -> Option<&str> {
        self.as_str()
    }
}

impl<T: PcVal> PcVal for Option<T> {
    fn pc_num(&self) -> i64 {
        self.as_ref().map(PcVal::pc_num).unwrap_or(0)
    }
    fn pc_str(&self) -> Option<&str> {
        self.as_ref().and_then(PcVal::pc_str)
    }
}

pub fn pc_eq<A: PcVal + ?Sized, B: PcVal + ?Sized>(a: &A, b: &B) -> bool {
    match (a.pc_str(), b.pc_str()) {
        (Some(x), Some(y)) => x == y,
        (None, None) => a.pc_num() == b.pc_num(),
        _ => false,
    }
}

pub fn pc_cmp<A: PcVal + ?Sized, B: PcVal + ?Sized>(a: &A, b: &B) -> std::cmp::Ordering {
    match (a.pc_str(), b.pc_str()) {
        (Some(x), Some(y)) => x.cmp(y),
        _ => a.pc_num().cmp(&b.pc_num()),
    }
}

// ---- framing and literals ----------------------------------------------------

/// Opens a record if `is_record` and none is open. Returns
/// `(opened, pending_error, hard_eof, budget_skipped)`. When the error
/// budget is exhausted in skip-record mode, the record is framed and
/// skipped wholesale and the ready-made descriptor is returned instead of
/// parsing (mirroring the interpreting parser's graceful degradation).
fn pc_open_record(
    cur: &mut Cursor<'_>,
) -> (bool, Option<(ErrorCode, Loc)>, bool, Option<ParseDesc>) {
    if cur.in_record() {
        return (false, None, false, None);
    }
    if cur.skip_records() && !cur.at_eof() {
        // The record-relative byte of a record's own start is 0; the
        // cursor's tracking still points at the previous record here (and
        // a resumed cursor has no previous record at all).
        let start = Pos { byte: 0, ..cur.position() };
        if cur.begin_record().is_ok() {
            let _ = cur.end_record();
        }
        let mut pd =
            ParseDesc::error(ErrorCode::BudgetExhausted, Loc::new(start, cur.position()));
        pd.state = ParseState::Panic;
        cur.note_skipped_record();
        cur.observe_record_close(&pd);
        return (false, None, false, Some(pd));
    }
    match cur.begin_record() {
        Ok(()) => (true, None, false, None),
        Err(ErrorCode::UnexpectedEof) => (false, None, true, None),
        Err(code) => (true, Some((code, Loc::at(cur.position()))), false, None),
    }
}

/// Closes a record opened by `pc_open_record`, handling panic recovery,
/// trailing-data detection, skipped-byte accounting, and the error budget
/// exactly like the interpreting parser.
fn pc_close_record(cur: &mut Cursor<'_>, pd: &mut ParseDesc, syntax_failed: bool) {
    let mut panic_skipped = 0u64;
    if syntax_failed {
        let at = cur.position();
        let close = cur.end_record();
        if close.skipped > 0 {
            pd.note_panic_skip(Loc::new(
                at,
                Pos {
                    offset: at.offset + close.skipped,
                    record: at.record,
                    byte: at.byte + close.skipped,
                },
            ));
            panic_skipped = close.skipped as u64;
        }
    } else {
        if !cur.at_eor() {
            pd.add_error(ErrorCode::ExtraDataBeforeEor, Loc::at(cur.position()));
        }
        let close = cur.end_record();
        panic_skipped = close.skipped as u64;
    }
    if let Some(cap) = cur.policy().max_record_errs {
        if pd.nerr > cap {
            pd.truncate_detail();
        }
    }
    cur.note_record_errors(pd.nerr, panic_skipped);
    if cur.best_effort() {
        pd.truncate_detail();
    }
    cur.observe_record_close(pd);
}

/// Whether a descriptor records a syntactic (non-constraint) problem.
pub fn pc_syntax_failed(pd: &ParseDesc) -> bool {
    if pd.state != ParseState::Ok {
        return true;
    }
    if pd.nerr == 0 {
        return false;
    }
    pd.errors().iter().any(|(_, code, _)| !code.is_semantic())
}

fn pc_match_str(cur: &mut Cursor<'_>, lit: &[u8]) -> bool {
    if cur.charset() == Charset::Ascii {
        cur.match_bytes(lit)
    } else {
        let enc: Vec<u8> = lit.iter().map(|&b| cur.charset().encode(b)).collect();
        cur.match_bytes(&enc)
    }
}

fn pc_match_char(cur: &mut Cursor<'_>, c: u8) -> bool {
    let raw = cur.charset().encode(c);
    if cur.peek() == Some(raw) {
        cur.advance(1);
        true
    } else {
        false
    }
}

fn pc_match_regex(cur: &mut Cursor<'_>, pat: &str) -> bool {
    match cur.regex(pat) {
        Ok(re) => cur.match_regex(&re).is_some(),
        Err(_) => false,
    }
}

// ---- base-type readers ---------------------------------------------------------

/// Dynamic fallback through the registry; restores the cursor on error.
fn rd_prim(cur: &mut Cursor<'_>, name: &str, args: &[Prim]) -> Result<Prim, ErrorCode> {
    let bt = registry().get(name).ok_or(ErrorCode::EvalError)?;
    let cp = cur.checkpoint();
    match bt.parse(cur, args) {
        Ok(p) => Ok(p),
        Err(e) => {
            cur.restore(cp);
            Err(e)
        }
    }
}

fn wr_text(out: &mut Vec<u8>, s: &str, charset: Charset) {
    if charset == Charset::Ascii {
        out.extend_from_slice(s.as_bytes());
    } else {
        out.extend(s.bytes().map(|b| charset.encode(b)));
    }
}

fn wr_u64(out: &mut Vec<u8>, v: u64, charset: Charset) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if charset == Charset::Ascii {
        out.extend_from_slice(&buf[i..]);
    } else {
        out.extend(buf[i..].iter().map(|&b| charset.encode(b)));
    }
}

fn wr_i64(out: &mut Vec<u8>, v: i64, charset: Charset) {
    if v < 0 {
        out.push(charset.encode(b'-'));
    }
    wr_u64(out, v.unsigned_abs(), charset);
}

fn wr_prim(
    out: &mut Vec<u8>,
    name: &str,
    v: &Prim,
    args: &[Prim],
    charset: Charset,
    endian: Endian,
) -> Result<(), ErrorCode> {
    let bt = registry().get(name).ok_or(ErrorCode::EvalError)?;
    bt.write(out, v, args, charset, endian)
}

/// ASCII `0`..`9` as a scan-kernel class (bits 0x30..=0x39 of word 0).
const PC_DIGITS: ClassBitmap = ClassBitmap::from_bits([0x03FF_0000_0000_0000, 0, 0, 0]);

/// Accumulates an already-scanned ASCII digit run, rejecting overflow.
fn pc_fold_digits(digits: &[u8]) -> Result<u64, ErrorCode> {
    let mut val: u64 = 0;
    for &b in digits {
        val = val
            .checked_mul(10)
            .and_then(|v| v.checked_add((b - b'0') as u64))
            .ok_or(ErrorCode::RangeError)?;
    }
    Ok(val)
}

/// Fast inline decimal reader for the ambient charset (ASCII fast path).
/// The digit run is found in bulk by the SWAR class kernel; only the
/// accumulate pass touches bytes individually.
fn rd_uint(cur: &mut Cursor<'_>, bits: u32, forced: Option<Charset>) -> Result<u64, ErrorCode> {
    let cs = forced.unwrap_or(cur.charset());
    if cs == Charset::Ascii {
        let rest = cur.rest();
        let n = pads_runtime::skip_class(rest, &PC_DIGITS);
        if n == 0 {
            return Err(ErrorCode::InvalidDigit);
        }
        let val = pc_fold_digits(&rest[..n])?;
        if bits < 64 && val >= 1u64 << bits {
            return Err(ErrorCode::RangeError);
        }
        cur.advance(n);
        Ok(val)
    } else {
        let name = match bits {
            8 => "Pe_uint8",
            16 => "Pe_uint16",
            32 => "Pe_uint32",
            _ => "Pe_uint64",
        };
        match rd_prim(cur, name, &[])? {
            Prim::Uint(v) => Ok(v),
            _ => Err(ErrorCode::EvalError),
        }
    }
}

fn rd_int(cur: &mut Cursor<'_>, bits: u32, forced: Option<Charset>) -> Result<i64, ErrorCode> {
    let cs = forced.unwrap_or(cur.charset());
    if cs == Charset::Ascii {
        let rest = cur.rest();
        let mut i = 0usize;
        let mut neg = false;
        if matches!(rest.first(), Some(b'-' | b'+')) {
            neg = rest[0] == b'-';
            i = 1;
        }
        let n = pads_runtime::skip_class(&rest[i..], &PC_DIGITS);
        if n == 0 {
            return Err(ErrorCode::InvalidDigit);
        }
        let mag = pc_fold_digits(&rest[i..i + n])?;
        let val = if neg {
            i64::try_from(mag).map(i64::wrapping_neg).map_err(|_| ErrorCode::RangeError)?
        } else {
            i64::try_from(mag).map_err(|_| ErrorCode::RangeError)?
        };
        if bits < 64 {
            let max = (1i64 << (bits - 1)) - 1;
            let min = -(1i64 << (bits - 1));
            if val < min || val > max {
                return Err(ErrorCode::RangeError);
            }
        }
        cur.advance(i + n);
        Ok(val)
    } else {
        let name = match bits {
            8 => "Pe_int8",
            16 => "Pe_int16",
            32 => "Pe_int32",
            _ => "Pe_int64",
        };
        match rd_prim(cur, name, &[])? {
            Prim::Int(v) => Ok(v),
            _ => Err(ErrorCode::EvalError),
        }
    }
}

fn rd_uint_fw(
    cur: &mut Cursor<'_>,
    bits: u32,
    width: u64,
    forced: Option<Charset>,
) -> Result<u64, ErrorCode> {
    let _ = forced;
    // Static registry names: a per-field `format!` here shows up as a whole
    // allocation per record on fixed-width-heavy corpora (alloc_gate).
    let name = match bits {
        8 => "Puint8_FW",
        16 => "Puint16_FW",
        32 => "Puint32_FW",
        _ => "Puint64_FW",
    };
    match rd_prim(cur, name, &[Prim::Uint(width)])? {
        Prim::Uint(v) => Ok(v),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_int_fw(
    cur: &mut Cursor<'_>,
    bits: u32,
    width: u64,
    forced: Option<Charset>,
) -> Result<i64, ErrorCode> {
    let _ = forced;
    let name = match bits {
        8 => "Pint8_FW",
        16 => "Pint16_FW",
        32 => "Pint32_FW",
        _ => "Pint64_FW",
    };
    match rd_prim(cur, name, &[Prim::Uint(width)])? {
        Prim::Int(v) => Ok(v),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_string_term<'d>(cur: &mut Cursor<'d>, term: u8) -> Result<PStr<'d>, ErrorCode> {
    let cs = cur.charset();
    let raw_term = cs.encode(term);
    let len = cur.find_byte(raw_term).unwrap_or(cur.remaining());
    let raw = cur.take(len)?;
    if cs == Charset::Ascii {
        // Pure ASCII is valid UTF-8, so the leaf borrows the buffer.
        if let Ok(s) = std::str::from_utf8(raw) {
            if s.is_ascii() {
                return Ok(PStr::borrowed(s));
            }
        }
    }
    Ok(PStr::owned(cs.decode_text(raw)))
}

fn rd_char(cur: &mut Cursor<'_>, forced: Option<Charset>) -> Result<u8, ErrorCode> {
    let cs = forced.unwrap_or(cur.charset());
    let b = cur.next_byte().ok_or(if cur.in_record() {
        ErrorCode::UnexpectedEor
    } else {
        ErrorCode::UnexpectedEof
    })?;
    Ok(cs.decode(b))
}

/// Registry read for string-kinded base types through the zero-copy
/// `parse_view` tier: `Phostname`, `Pzip`, and friends hand back a slice
/// of the input buffer on the ASCII identity path, so the leaf borrows
/// instead of allocating. Owned fallback otherwise (EBCDIC, rewriting
/// decoders). Restores the cursor on error, like `rd_prim`.
fn rd_string<'d>(cur: &mut Cursor<'d>, name: &str, args: &[Prim]) -> Result<PStr<'d>, ErrorCode> {
    let bt = registry().get(name).ok_or(ErrorCode::EvalError)?;
    let cp = cur.checkpoint();
    match bt.parse_view(cur, args) {
        Ok(PrimView::Str(s)) => Ok(PStr::borrowed(s)),
        Ok(PrimView::Owned(Prim::String(s))) => Ok(PStr::owned(s)),
        Ok(_) => {
            cur.restore(cp);
            Err(ErrorCode::EvalError)
        }
        Err(e) => {
            cur.restore(cp);
            Err(e)
        }
    }
}

fn rd_date(cur: &mut Cursor<'_>, term: Option<u8>) -> Result<PDate, ErrorCode> {
    // The terminator rides in a stack buffer: no per-call Vec.
    let buf;
    let args: &[Prim] = match term {
        Some(t) => {
            buf = [Prim::Char(t)];
            &buf
        }
        None => &[],
    };
    match rd_prim(cur, "Pdate", args)? {
        Prim::Date(d) => Ok(d),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_ip(cur: &mut Cursor<'_>) -> Result<[u8; 4], ErrorCode> {
    match rd_prim(cur, "Pip", &[])? {
        Prim::Ip(o) => Ok(o),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_float(cur: &mut Cursor<'_>, name: &str) -> Result<f64, ErrorCode> {
    match rd_prim(cur, name, &[])? {
        Prim::Float(v) => Ok(v),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_i64_dyn(cur: &mut Cursor<'_>, name: &str, args: &[Prim]) -> Result<i64, ErrorCode> {
    match rd_prim(cur, name, args)? {
        Prim::Int(v) => Ok(v),
        Prim::Uint(v) => i64::try_from(v).map_err(|_| ErrorCode::RangeError),
        _ => Err(ErrorCode::EvalError),
    }
}

fn rd_u64_dyn(cur: &mut Cursor<'_>, name: &str, args: &[Prim]) -> Result<u64, ErrorCode> {
    match rd_prim(cur, name, args)? {
        Prim::Uint(v) => Ok(v),
        Prim::Int(v) => u64::try_from(v).map_err(|_| ErrorCode::RangeError),
        _ => Err(ErrorCode::EvalError),
    }
}

// ---- parallel record-sharded driver ------------------------------------------

/// Record-sharded parallel engine behind the generated `parse_records_par`
/// entry points.
///
/// `make` builds a cursor over a byte slice exactly as the caller would for
/// `parse_source` (charset, endianness, record discipline, recovery
/// policy); `read` parses ONE record (a generated `read` method). The
/// source is split at record boundaries into up to `jobs` shards parsed on
/// worker threads with source-level error limits stripped; each worker
/// *streams* its records through a bounded channel into an in-order merge
/// that applies the real policy cumulatively. The first record that trips a
/// source limit (or a panicked worker) diverts to a sequential replay from
/// that record's boundary, so the result is byte-identical to looping
/// `read` sequentially — see `pads_runtime::par` for the argument.
///
/// Observers cannot cross threads (`make` must be `Sync`, and observer
/// handles are not), so parallel runs are unobserved by construction.
pub fn pc_parse_records_par<'d, T, M, F>(
    data: &'d [u8],
    jobs: usize,
    make: M,
    read: F,
) -> (Vec<(T, ParseDesc)>, ErrorBudget)
where
    T: Send,
    M: Fn(&'d [u8]) -> Cursor<'d> + Sync,
    F: for<'b> Fn(&'b mut Cursor<'d>) -> (T, ParseDesc) + Sync,
{
    pc_parse_records_resumed(data, ResumePoint::default(), jobs, make, read)
}

/// Like `pc_parse_records_par`, but continuing from a committed
/// `ResumePoint` (global source coordinates): parsing starts at
/// `resume.offset` — which must be a record boundary, e.g. the byte offset
/// a checkpoint journal committed — record indices continue from
/// `resume.record`, and the error budget is restored. A completed run
/// equals a killed run resumed from any checkpoint: same values,
/// descriptors, and budget for the uncommitted suffix.
pub fn pc_parse_records_resumed<'d, T, M, F>(
    data: &'d [u8],
    resume: ResumePoint,
    jobs: usize,
    make: M,
    read: F,
) -> (Vec<(T, ParseDesc)>, ErrorBudget)
where
    T: Send,
    M: Fn(&'d [u8]) -> Cursor<'d> + Sync,
    F: for<'b> Fn(&'b mut Cursor<'d>) -> (T, ParseDesc) + Sync,
{
    use pads_runtime::par::{self, RecordMsg, Shard, ShardSender};

    if resume.budget.stopped() {
        return (Vec::new(), resume.budget);
    }
    let base = resume.offset.min(data.len());
    let tail = &data[base..];
    let probe = make(data);
    let policy = probe.policy();
    let plan = par::plan_shards(tail, probe.discipline(), probe.charset(), jobs.max(1));
    let stripped = RecoveryPolicy {
        max_errs: None,
        max_panic_skip: None,
        ..policy
    };

    // Workers parse their shard in isolation and ship each record with its
    // budget delta; descriptors are rebased to global coordinates here so
    // the merge is coordinate-agnostic.
    let worker = |shard: &Shard, tx: ShardSender<(T, ParseDesc), ()>| {
        let mut cur = make(&tail[shard.start..shard.end]).with_policy(stripped);
        let mut prev = cur.budget();
        loop {
            if cur.at_eof() {
                break;
            }
            let mark = cur.offset();
            let (v, mut pd) = read(&mut cur);
            pd.rebase(base + shard.start, resume.record + shard.first_record);
            let after = cur.budget();
            let msg = RecordMsg {
                nerr: after.errs.saturating_sub(prev.errs) as u32,
                panic_skipped: after.panic_skipped.saturating_sub(prev.panic_skipped),
                end_offset: shard.start + cur.offset(),
                extra: None,
                item: (v, pd),
            };
            prev = after;
            let stalled = cur.offset() == mark;
            if !tx.send(msg) || stalled {
                break;
            }
        }
    };

    // Sequential replay: a cursor positioned at the divergence boundary in
    // global coordinates, carrying the merged budget, under the full
    // policy — descriptors come out global without rebasing.
    let replay = |from: par::ResumePoint,
                  emit: &mut dyn FnMut((T, ParseDesc), usize, ErrorBudget, Option<()>)| {
        let mut cur = make(data).with_start(base + from.offset, resume.record + from.record);
        cur.set_budget(from.budget);
        loop {
            if cur.at_eof() {
                break;
            }
            let mark = cur.offset();
            let item = read(&mut cur);
            let end = cur.offset() - base;
            emit(item, end, cur.budget(), None);
            if cur.offset() == mark {
                break;
            }
        }
        cur.budget()
    };

    let mut items = Vec::new();
    let budget = par::run_sharded(
        &plan,
        &policy,
        resume.budget,
        par::DEFAULT_MAX_INFLIGHT,
        worker,
        replay,
        |item, _extra, _progress| items.push(item),
    );
    (items, budget)
}
"#;
