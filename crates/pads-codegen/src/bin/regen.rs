//! Regenerates the committed `pads::generated` modules for the bundled
//! CLF and Sirius descriptions. Run after changing the code generator:
//!
//! ```text
//! cargo run -p pads-codegen --bin regen
//! ```
//!
//! The descriptions are compiled here from `descriptions/*.pads` directly
//! (not through the `pads` crate), so regeneration works even while the
//! committed generated modules do not compile.

use std::path::Path;

fn main() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let descriptions = manifest.join("../../descriptions");
    let out = manifest.join("../pads-core/src/generated");
    let registry = pads_runtime::Registry::standard();
    let generate = |file: &str, header: &str| -> String {
        let src = std::fs::read_to_string(descriptions.join(file))
            .unwrap_or_else(|e| panic!("read {file}: {e}"));
        let schema = pads_check::compile(&src, &registry)
            .unwrap_or_else(|e| panic!("{file} compiles: {e:?}"));
        pads_codegen::generate_rust(&schema, header)
            .unwrap_or_else(|e| panic!("{file} generates: {e}"))
    };
    let clf = generate(
        "clf.pads",
        "Generated parser for the CLF web-server-log description (Figure 4).",
    );
    let sirius = generate(
        "sirius.pads",
        "Generated parser for the Sirius provisioning description (Figure 5).",
    );
    let mixed = generate(
        "mixed.pads",
        "Generated parser for the kitchen-sink `mixed` description.",
    );
    std::fs::write(out.join("clf.rs"), &clf).expect("write clf.rs");
    std::fs::write(out.join("sirius.rs"), &sirius).expect("write sirius.rs");
    std::fs::write(out.join("mixed.rs"), &mixed).expect("write mixed.rs");
    println!(
        "wrote {} bytes (clf.rs), {} bytes (sirius.rs), {} bytes (mixed.rs)",
        clf.len(),
        sirius.len(),
        mixed.len()
    );
}
