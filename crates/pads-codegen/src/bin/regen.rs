//! Regenerates the committed `pads::generated` modules for the bundled
//! CLF and Sirius descriptions. Run after changing the code generator:
//!
//! ```text
//! cargo run -p pads-codegen --bin regen
//! ```

use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../pads-core/src/generated");
    let clf = pads_codegen::generate_rust(
        &pads::descriptions::clf(),
        "Generated parser for the CLF web-server-log description (Figure 4).",
    )
    .expect("CLF generates");
    let sirius = pads_codegen::generate_rust(
        &pads::descriptions::sirius(),
        "Generated parser for the Sirius provisioning description (Figure 5).",
    )
    .expect("Sirius generates");
    let mixed = pads_codegen::generate_rust(
        &pads::descriptions::mixed(),
        "Generated parser for the kitchen-sink `mixed` description.",
    )
    .expect("mixed generates");
    std::fs::write(root.join("clf.rs"), &clf).expect("write clf.rs");
    std::fs::write(root.join("sirius.rs"), &sirius).expect("write sirius.rs");
    std::fs::write(root.join("mixed.rs"), &mixed).expect("write mixed.rs");
    println!(
        "wrote {} bytes (clf.rs), {} bytes (sirius.rs), {} bytes (mixed.rs)",
        clf.len(),
        sirius.len(),
        mixed.len()
    );
}
