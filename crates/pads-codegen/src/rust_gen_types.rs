// Continuation of the `Gen` impl: representation types, read/write/verify
// generation per type kind, and module entry points. Included from
// `rust_gen.rs` so both halves share private items.

impl<'s> Gen<'s> {
    fn params_sig(&self, id: TypeId) -> String {
        self.schema
            .def(id)
            .params
            .iter()
            .map(|p| format!(", p_{}: i64", field_name(&p.name)))
            .collect()
    }

    /// Emits the public `read` entry: a thin wrapper bracketing
    /// `read_impl` with observer type-enter/type-exit events. When no
    /// observer is attached the wrapper is a single `Option` discriminant
    /// test plus a tail call, which the optimiser flattens away.
    ///
    /// The type is identified by its dense node id (`TypeId` doubles as
    /// the `ObsSchema` index — the module's `OBS_TYPES` table is emitted
    /// in the same order) so a trusted metrics core bumps flat slabs
    /// without a name lookup; the name rides along for legacy observers.
    /// `("", "'d")` when the representation borrows the buffer (the `'d`
    /// is bound by the surrounding `impl<'d>`), else `("", "'_")`: fn
    /// generics and cursor lifetime for read methods.
    fn read_lt(&self, id: TypeId) -> (&'static str, &'static str) {
        if self.lt[id] {
            ("", "'d")
        } else {
            ("", "'_")
        }
    }

    fn emit_read_wrapper(&self, id: TypeId, mask_used: bool, out: &mut String) {
        let def = self.schema.def(id);
        let name = camel(&def.name);
        let lt = self.lt_args(id);
        let (gen_lt, cur_lt) = self.read_lt(id);
        let mask_param = if mask_used { "mask" } else { "_mask" };
        let args: String =
            def.params.iter().map(|p| format!(", p_{}", field_name(&p.name))).collect();
        let _ = writeln!(
            out,
            "    pub fn read{gen_lt}(cur: &mut Cursor<{cur_lt}>, {mask_param}: &Mask{}) -> ({name}{lt}, ParseDesc) {{",
            self.params_sig(id)
        );
        let _ = writeln!(out, "        if !cur.observing() {{");
        let _ = writeln!(out, "            return Self::read_impl(cur, {mask_param}{args});");
        let _ = writeln!(out, "        }}");
        let _ = writeln!(out, "        if !cur.observing_events() {{");
        let _ = writeln!(out, "            let obs_off = cur.offset();");
        let _ = writeln!(out, "            let (v, pd) = Self::read_impl(cur, {mask_param}{args});");
        let _ = writeln!(
            out,
            "            cur.metrics_exit({id}u32, \"{}\", obs_off, &pd);",
            def.name
        );
        let _ = writeln!(out, "            return (v, pd);");
        let _ = writeln!(out, "        }}");
        let _ = writeln!(out, "        let obs_start = cur.position();");
        let _ = writeln!(out, "        cur.observe_enter_id({id}u32, \"{}\");", def.name);
        let _ = writeln!(out, "        let (v, pd) = Self::read_impl(cur, {mask_param}{args});");
        let _ = writeln!(
            out,
            "        cur.observe_exit_id({id}u32, \"{}\", obs_start, &pd);",
            def.name
        );
        let _ = writeln!(out, "        (v, pd)");
        let _ = writeln!(out, "    }}");
    }

    fn param_ctx(&self, id: TypeId) -> Ctx {
        let mut ctx = Ctx::new();
        for p in &self.schema.def(id).params {
            ctx.bind(&p.name, Operand::Num(format!("p_{}", field_name(&p.name))));
        }
        ctx
    }

    /// Compiled argument list (`, (expr1), (expr2)`) for calling a
    /// parameterised type's read/verify.
    fn call_args(&self, args: &[Expr], ctx: &Ctx) -> GenResult<String> {
        let mut out = String::new();
        for a in args {
            let _ = write!(out, ", ({})", self.compile_num(a, ctx)?);
        }
        Ok(out)
    }

    fn gen_type(&self, id: TypeId, out: &mut String) -> GenResult<()> {
        let def = self.schema.def(id);
        let name = camel(&def.name);
        let lt = self.lt_args(id);
        match &def.kind {
            TypeKind::Struct { members } => {
                let _ = writeln!(out, "/// Representation of `{}` (Pstruct).", def.name);
                let _ = writeln!(out, "#[derive(Debug, Clone, PartialEq, Default)]");
                let _ = writeln!(out, "pub struct {name}{lt} {{");
                for m in members {
                    if let MemberIr::Field(f) = m {
                        let repr = self.tyuse_repr(&f.ty);
                        let _ = writeln!(
                            out,
                            "    pub {}: {},",
                            field_name(&f.name),
                            self.rust_ty(&repr)
                        );
                    }
                }
                out.push_str("}\n\n");
                let _ = writeln!(out, "impl{lt} {name}{lt} {{");
                self.gen_struct_read(id, members, out)?;
                self.gen_struct_write(id, members, out)?;
                self.gen_struct_verify(id, members, out)?;
                self.gen_struct_to_arena(id, members, out)?;
                out.push_str("}\n\n");
            }
            TypeKind::Union { switch, branches } => {
                let _ = writeln!(out, "/// Representation of `{}` (Punion).", def.name);
                let _ = writeln!(out, "#[derive(Debug, Clone, PartialEq)]");
                let _ = writeln!(out, "pub enum {name}{lt} {{");
                for b in branches {
                    let repr = self.tyuse_repr(&b.field.ty);
                    let _ = writeln!(
                        out,
                        "    {}({}),",
                        camel(&b.field.name),
                        self.rust_ty(&repr)
                    );
                }
                out.push_str("}\n\n");
                let first = camel(&branches[0].field.name);
                let _ = writeln!(out, "impl{lt} Default for {name}{lt} {{");
                let _ = writeln!(
                    out,
                    "    fn default() -> Self {{ {name}::{first}(Default::default()) }}"
                );
                out.push_str("}\n\n");
                let _ = writeln!(out, "impl{lt} {name}{lt} {{");
                match switch {
                    None => self.gen_union_read(id, branches, out)?,
                    Some(sel) => self.gen_switch_read(id, sel, branches, out)?,
                }
                self.gen_union_write(id, branches, out)?;
                self.gen_union_verify(id, branches, out)?;
                self.gen_union_to_arena(id, branches, out)?;
                out.push_str("}\n\n");
            }
            TypeKind::Array { elem, .. } => {
                let repr = self.tyuse_repr(elem);
                let _ = writeln!(out, "/// Representation of `{}` (Parray).", def.name);
                let _ = writeln!(out, "#[derive(Debug, Clone, PartialEq, Default)]");
                let _ = writeln!(out, "pub struct {name}{lt}(pub Vec<{}>);\n", self.rust_ty(&repr));
                let _ = writeln!(out, "impl{lt} {name}{lt} {{");
                self.gen_array_read(id, out)?;
                self.gen_array_write(id, out)?;
                self.gen_array_verify(id, out)?;
                self.gen_array_to_arena(id, out)?;
                out.push_str("}\n\n");
            }
            TypeKind::Enum { variants } => {
                let _ = writeln!(out, "/// Representation of `{}` (Penum).", def.name);
                let _ = writeln!(out, "#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]");
                let _ = writeln!(out, "pub enum {name} {{");
                for (i, v) in variants.iter().enumerate() {
                    if i == 0 {
                        let _ = writeln!(out, "    #[default]");
                    }
                    let _ = writeln!(out, "    {} = {i},", camel(v));
                }
                out.push_str("}\n\n");
                let _ = writeln!(out, "impl PcVal for {name} {{");
                let _ = writeln!(out, "    fn pc_num(&self) -> i64 {{ *self as i64 }}");
                out.push_str("}\n\n");
                let _ = writeln!(out, "impl {name} {{");
                self.gen_enum_read(id, variants, &name, out)?;
                self.gen_enum_write(variants, &name, out)?;
                let _ = writeln!(out, "    /// Enums carry no constraints.");
                let _ = writeln!(out, "    pub fn verify(&self) -> bool {{ true }}");
                self.gen_enum_to_arena(variants, &name, out)?;
                out.push_str("}\n\n");
            }
            TypeKind::Typedef { base, var, pred } => {
                let repr = self.tyuse_repr(base);
                let _ = writeln!(out, "/// Representation of `{}` (Ptypedef).", def.name);
                let _ = writeln!(out, "#[derive(Debug, Clone, PartialEq, Default)]");
                let _ = writeln!(out, "pub struct {name}{lt}(pub {});\n", self.rust_ty(&repr));
                let _ = writeln!(out, "impl{lt} PcVal for {name}{lt} {{");
                let _ = writeln!(out, "    fn pc_num(&self) -> i64 {{ (self.0).pc_num() }}");
                let _ = writeln!(
                    out,
                    "    fn pc_str(&self) -> Option<&str> {{ (self.0).pc_str() }}"
                );
                out.push_str("}\n\n");
                let _ = writeln!(out, "impl{lt} {name}{lt} {{");
                self.gen_typedef_read(id, base, var, pred, out)?;
                self.gen_typedef_write(id, base, out)?;
                self.gen_typedef_verify(id, base, var, pred, out)?;
                self.gen_typedef_to_arena(id, base, out)?;
                out.push_str("}\n\n");
            }
        }
        Ok(())
    }

    // ---- base-type read call text -------------------------------------------

    /// Code evaluating to `Result<RustTy, ErrorCode>` for a base-type read.
    fn base_read_code(&self, name: &str, args: &[Expr], ctx: &Ctx) -> GenResult<String> {
        let forced = if name.starts_with("Pa_") {
            "Some(Charset::Ascii)"
        } else if name.starts_with("Pe_") {
            "Some(Charset::Ebcdic)"
        } else {
            "None"
        };
        let repr = self.base_repr(name);
        let cast = |code: String, repr: &Repr| match repr {
            Repr::UInt(b) if *b < 64 => format!("{code}.map(|v| v as u{b})"),
            Repr::Int(b) if *b < 64 => format!("{code}.map(|v| v as i{b})"),
            _ => code,
        };
        let arg_prims = self.arg_prims(name, args, ctx)?;
        Ok(match name {
            _ if name.starts_with("Pb_") => {
                let bits = bits_of(name);
                if matches!(repr, Repr::UInt(_)) {
                    cast(format!("rd_u64_dyn(cur, \"{name}\", &[{arg_prims}])"), &Repr::UInt(bits))
                } else {
                    cast(format!("rd_i64_dyn(cur, \"{name}\", &[{arg_prims}])"), &Repr::Int(bits))
                }
            }
            _ if name.contains("uint") && !name.ends_with("_FW") => {
                let bits = bits_of(name);
                cast(format!("rd_uint(cur, {bits}, {forced})"), &Repr::UInt(bits))
            }
            _ if name.contains("uint") => {
                let bits = bits_of(name);
                let w = self.compile_num(&args[0], ctx)?;
                if name.starts_with("Pa_") || name.starts_with("Pe_") {
                    cast(
                        format!(
                            "rd_u64_dyn(cur, \"{name}\", &[Prim::Uint(({w}) as u64)])"
                        ),
                        &Repr::UInt(bits),
                    )
                } else {
                    cast(
                        format!("rd_uint_fw(cur, {bits}, ({w}) as u64, {forced})"),
                        &Repr::UInt(bits),
                    )
                }
            }
            _ if name.contains("int") && !name.ends_with("_FW") => {
                let bits = bits_of(name);
                cast(format!("rd_int(cur, {bits}, {forced})"), &Repr::Int(bits))
            }
            _ if name.contains("int") => {
                let bits = bits_of(name);
                let w = self.compile_num(&args[0], ctx)?;
                if name.starts_with("Pa_") || name.starts_with("Pe_") {
                    cast(
                        format!(
                            "rd_i64_dyn(cur, \"{name}\", &[Prim::Uint(({w}) as u64)])"
                        ),
                        &Repr::Int(bits),
                    )
                } else {
                    cast(
                        format!("rd_int_fw(cur, {bits}, ({w}) as u64, {forced})"),
                        &Repr::Int(bits),
                    )
                }
            }
            "Pstring" => {
                let term = self.compile_num(&args[0], ctx)?;
                format!("rd_string_term(cur, ({term}) as u8)")
            }
            "Pstring_FW" | "Pstring_ME" | "Pstring_SE" | "Pzip" | "Phostname" => {
                format!("rd_string(cur, \"{name}\", &[{arg_prims}])")
            }
            "Pchar" | "Pa_char" | "Pe_char" => format!("rd_char(cur, {forced})"),
            "Pdate" => {
                if args.is_empty() {
                    "rd_date(cur, None)".to_owned()
                } else {
                    let term = self.compile_num(&args[0], ctx)?;
                    format!("rd_date(cur, Some(({term}) as u8))")
                }
            }
            "Pip" => "rd_ip(cur)".to_owned(),
            "Pfloat32" | "Pfloat64" => format!("rd_float(cur, \"{name}\")"),
            "Pvoid" => "Ok::<(), ErrorCode>(())".to_owned(),
            "Pebc_zoned" | "Ppacked" => {
                format!("rd_i64_dyn(cur, \"{name}\", &[{arg_prims}])")
            }
            "Pbits" => format!("rd_u64_dyn(cur, \"Pbits\", &[{arg_prims}])"),
            other => format!("rd_prim(cur, \"{other}\", &[{arg_prims}])"),
        })
    }

    /// Compiles type arguments into `Prim` constructor expressions.
    fn arg_prims(&self, _base: &str, args: &[Expr], ctx: &Ctx) -> GenResult<String> {
        let mut parts = Vec::new();
        for a in args {
            parts.push(match a {
                Expr::Char(c) => format!("Prim::Char({c}u8)"),
                Expr::Str(s) => format!("Prim::String({s:?}.to_owned())"),
                _ => format!("Prim::Uint(({}) as u64)", self.compile_num(a, ctx)?),
            });
        }
        Ok(parts.join(", "))
    }

    // ---- literal helpers ----------------------------------------------------

    fn lit_match_code(&self, lit: &Literal) -> GenResult<String> {
        Ok(match lit {
            Literal::Char(c) => format!("pc_match_char(cur, {c}u8)"),
            Literal::Str(s) => format!("pc_match_str(cur, {})", bytes_lit(s)),
            Literal::Regex(pat) => format!("pc_match_regex(cur, {pat:?})"),
            Literal::Eor => "cur.at_eor()".to_owned(),
            Literal::Eof => "cur.at_eof()".to_owned(),
        })
    }

    fn lit_peek_code(&self, lit: &Literal) -> GenResult<String> {
        Ok(match lit {
            Literal::Char(c) => format!("(cur.peek() == Some(cur.charset().encode({c}u8)))"),
            Literal::Str(s) => format!(
                "{{ let cp = cur.checkpoint(); let ok = pc_match_str(cur, {}); cur.restore(cp); ok }}",
                bytes_lit(s)
            ),
            Literal::Regex(pat) => format!(
                "{{ let cp = cur.checkpoint(); let ok = pc_match_regex(cur, {pat:?}); cur.restore(cp); ok }}"
            ),
            Literal::Eor => "cur.at_eor()".to_owned(),
            Literal::Eof => "cur.at_eof()".to_owned(),
        })
    }

    // ---- struct ----------------------------------------------------------------

    /// Classifies the longest run of leading struct members whose byte
    /// width the fact database proves exactly constant, as candidates for
    /// the fixed-offset fast path. Returns the compiled items plus how
    /// many members they cover.
    ///
    /// Supported members: char/string literals, `Pchar` fields, and
    /// fixed-width unsigned decimal fields (`Puint*_FW` with a constant
    /// width, optionally wrapped in an unparameterised constrained
    /// typedef). Anything else — including fields carrying their own
    /// inline constraint, whose failure must build a descriptor — ends
    /// the prefix.
    fn fixed_prefix(
        &self,
        members: &[MemberIr],
        sem: &lint::facts::SemFacts,
    ) -> (Vec<FixedItem>, usize) {
        let mut items = Vec::new();
        for m in members {
            let item = match m {
                MemberIr::Lit(Literal::Char(c)) => Some(FixedItem::Lit(vec![*c])),
                MemberIr::Lit(Literal::Str(s)) if !s.is_empty() && s.is_ascii() => {
                    Some(FixedItem::Lit(s.clone().into_bytes()))
                }
                MemberIr::Lit(_) => None,
                MemberIr::Field(f) if f.constraint.is_none() => self.fixed_field(f, sem),
                MemberIr::Field(_) => None,
            };
            match item {
                Some(item) => items.push(item),
                None => break,
            }
        }
        let n = items.len();
        (items, n)
    }

    /// The [`FixedItem`] for one field, or `None` when the field does not
    /// qualify (not provably fixed-width, or not a supported shape).
    fn fixed_field(&self, f: &pads_check::ir::FieldIr, sem: &lint::facts::SemFacts) -> Option<FixedItem> {
        let fname = field_name(&f.name);
        let (base_name, args, wrap, pred) = match &f.ty {
            TyUse::Base { name, args } => (name, args, None, None),
            TyUse::Named { id, args } if args.is_empty() => {
                let def = self.schema.def(*id);
                if !def.params.is_empty() || def.where_clause.is_some() || def.is_record {
                    return None;
                }
                let TypeKind::Typedef { base, var, pred } = &def.kind else { return None };
                let TyUse::Base { name, args } = base else { return None };
                let p = match (var, pred) {
                    (Some(v), Some(p)) => Some((v.clone(), p)),
                    _ => None,
                };
                (name, args, Some(*id), p)
            }
            _ => return None,
        };
        if base_name == "Pchar" && wrap.is_none() {
            // Cross-check the classifier against the fact database: only
            // elide when the abstract interpretation agrees on the width.
            if sem.width_of_tyuse(&f.ty).as_fixed() != Some(1) {
                return None;
            }
            return Some(FixedItem::Char { fname });
        }
        if !(base_name.starts_with("Puint") && base_name.ends_with("_FW")) {
            return None;
        }
        let [Expr::Int(w)] = args.as_slice() else { return None };
        // ≤ 18 digits keeps the u64 accumulator overflow-free.
        if !(1..=18).contains(w) {
            return None;
        }
        let width = *w as u64;
        if sem.width_of_tyuse(&f.ty).as_fixed() != Some(width) {
            return None;
        }
        let bits = bits_of(base_name);
        // Compile the typedef predicate against the raw temporary; a
        // predicate codegen cannot compile simply ends the prefix here.
        let pred_code = match pred {
            Some((var, p)) => {
                let mut pctx = Ctx::new();
                pctx.bind(&var, Operand::Place(format!("pc_fp_{fname}"), Repr::UInt(bits)));
                Some(self.compile_bool(p, &pctx).ok()?)
            }
            None => None,
        };
        Some(FixedItem::FwUint { fname, width, bits, wrap, pred_code })
    }

    /// Emits the fixed-offset fast path for a proven fixed-width struct
    /// prefix: one bounds check, per-member validation against the peeked
    /// slice, then a single cursor advance. Any mismatch (or an attached
    /// event-stream observer, or a non-ASCII ambient charset) leaves the
    /// cursor untouched and the general member loop handles the record —
    /// so the fast path can only ever *commit* byte-for-byte identical
    /// results.
    ///
    /// A plain counting metrics core does *not* disable the fast path:
    /// the per-type counters a committed prefix would have produced are
    /// statically known (each wrapped typedef: one hit, `width` bytes,
    /// zero errors), so the commit feeds them to the core as one
    /// `metrics_fixed_prefix` call instead of running the member loop.
    fn emit_fixed_prefix(&self, items: &[FixedItem], out: &mut String) {
        let total: u64 = items.iter().map(FixedItem::width).sum();
        let _ = writeln!(
            out,
            "        // Fast path: the first {} member(s) form a proven fixed-width\n        \
             // prefix of {total} byte(s) — validate at fixed offsets, commit with\n        \
             // one advance, or fall back to the member loop untouched.",
            items.len()
        );
        let _ = writeln!(out, "        let mut pc_fp_done = false;");
        let _ = writeln!(
            out,
            "        if !cur.observing_events() && cur.charset() == Charset::Ascii {{"
        );
        let _ = writeln!(out, "            let fp = cur.rest();");
        let _ = writeln!(out, "            'prefix: {{");
        let _ = writeln!(out, "                if fp.len() < {total} {{ break 'prefix; }}");
        let mut off = 0u64;
        let mut commits: Vec<String> = Vec::new();
        for item in items {
            let end = off + item.width();
            match item {
                FixedItem::Lit(bytes) => {
                    if let [b] = bytes.as_slice() {
                        let _ = writeln!(
                            out,
                            "                if fp[{off}] != {b}u8 {{ break 'prefix; }}"
                        );
                    } else {
                        let lit = bytes_lit(&String::from_utf8_lossy(bytes));
                        let _ = writeln!(
                            out,
                            "                if &fp[{off}..{end}] != {lit} {{ break 'prefix; }}"
                        );
                    }
                }
                FixedItem::Char { fname } => {
                    let _ = writeln!(out, "                let pc_fp_{fname} = fp[{off}];");
                    commits.push(format!("f_{fname} = pc_fp_{fname};"));
                }
                FixedItem::FwUint { fname, bits, wrap, pred_code, .. } => {
                    let _ = writeln!(out, "                let mut pc_fp_acc: u64 = 0;");
                    let _ = writeln!(
                        out,
                        "                for &b in &fp[{off}..{end}] {{\n                    \
                         if !b.is_ascii_digit() {{ break 'prefix; }}\n                    \
                         pc_fp_acc = pc_fp_acc * 10 + (b - b'0') as u64;\n                }}"
                    );
                    if *bits < 64 {
                        let _ = writeln!(
                            out,
                            "                if pc_fp_acc > u{bits}::MAX as u64 {{ break 'prefix; }}"
                        );
                    }
                    let _ = writeln!(
                        out,
                        "                let pc_fp_{fname}: u{bits} = pc_fp_acc as u{bits};"
                    );
                    if let Some(code) = pred_code {
                        let _ = writeln!(out, "                if !({code}) {{ break 'prefix; }}");
                    }
                    commits.push(match wrap {
                        Some(id) => format!(
                            "f_{fname} = {}(pc_fp_{fname});",
                            camel(&self.schema.def(*id).name)
                        ),
                        None => format!("f_{fname} = pc_fp_{fname};"),
                    });
                }
            }
            off = end;
        }
        for c in commits {
            let _ = writeln!(out, "                {c}");
        }
        // A committed prefix skips the wrapped typedefs' read wrappers, so
        // feed their statically-known counters to the metrics core here:
        // what each wrapper's exit event would have recorded on success.
        let metric_items: Vec<String> = items
            .iter()
            .filter_map(|i| match i {
                FixedItem::FwUint { width, wrap: Some(id), .. } => Some(format!(
                    "({id}u32, {:?}, {width}u32)",
                    self.schema.def(*id).name
                )),
                _ => None,
            })
            .collect();
        if !metric_items.is_empty() {
            let _ = writeln!(out, "                if cur.metrics_on() {{");
            let _ = writeln!(
                out,
                "                    cur.metrics_fixed_prefix(&[{}]);",
                metric_items.join(", ")
            );
            let _ = writeln!(out, "                }}");
        }
        let _ = writeln!(out, "                cur.advance({total});");
        let _ = writeln!(out, "                pc_fp_done = true;");
        let _ = writeln!(out, "            }}");
        let _ = writeln!(out, "        }}");
    }

    fn gen_struct_read(
        &self,
        id: TypeId,
        members: &[MemberIr],
        out: &mut String,
    ) -> GenResult<()> {
        let def = self.schema.def(id);
        let name = camel(&def.name);
        let _ = writeln!(
            out,
            "    /// Parses one `{}` at the cursor (mask-directed).",
            def.name
        );
        self.emit_read_wrapper(id, true, out);
        let lt = self.lt_args(id);
        let (gen_lt, cur_lt) = self.read_lt(id);
        let _ = writeln!(
            out,
            "    fn read_impl{gen_lt}(cur: &mut Cursor<{cur_lt}>, mask: &Mask{}) -> ({name}{lt}, ParseDesc) {{",
            self.params_sig(id)
        );
        let _ = writeln!(out, "        let mut pd = ParseDesc::ok();");
        let _ = writeln!(out, "        let mut pds: Vec<(Name, ParseDesc)> = Vec::new();");
        // Pre-declare fields.
        for m in members {
            if let MemberIr::Field(f) = m {
                let repr = self.tyuse_repr(&f.ty);
                let _ = writeln!(
                    out,
                    "        let mut f_{}: {} = Default::default();",
                    field_name(&f.name),
                    self.rust_ty(&repr)
                );
            }
        }
        if def.is_record {
            out.push_str(
                "        let (pc_opened, pc_rec_err, pc_eof, pc_skipped) = pc_open_record(cur);\n         \
                 if let Some(pd) = pc_skipped {\n            return (Default::default(), pd);\n        }\n        \
                 if pc_eof {\n            let mut pd = ParseDesc::error(ErrorCode::UnexpectedEof, Loc::at(cur.position()));\n            \
                 pd.state = ParseState::Partial;\n            return (Default::default(), pd);\n        }\n        \
                 if let Some((code, loc)) = pc_rec_err { pd.add_error(code, loc); }\n",
            );
        }
        // Fact-driven elision: when the description proves the leading
        // members fixed-width (and at least one is a field worth the
        // setup), read them at fixed offsets instead of scanning.
        let facts = lint::firstset::Facts::compute(self.schema);
        let sem = lint::facts::SemFacts::compute(self.schema, &facts);
        let (fp_items, fp_members) = self.fixed_prefix(members, &sem);
        let fast = fp_items.len() >= 2
            && fp_items.iter().any(|i| !matches!(i, FixedItem::Lit(_)));
        if fast {
            self.emit_fixed_prefix(&fp_items, out);
        }
        let mut ctx = self.param_ctx(id);
        let _ = writeln!(out, "        'body: {{");
        for (mi, m) in members.iter().enumerate() {
            let in_prefix = fast && mi < fp_members;
            if in_prefix {
                let _ = writeln!(out, "            if !pc_fp_done {{");
            }
            match m {
                MemberIr::Lit(lit) => {
                    let code = self.lit_match_code(lit)?;
                    let err = match lit {
                        Literal::Regex(_) => "RegexMismatch",
                        _ => "LitMismatch",
                    };
                    let _ = writeln!(
                        out,
                        "            if !({code}) {{\n                pd.add_error(ErrorCode::{err}, Loc::at(cur.position()));\n                pd.state = ParseState::Partial;\n                break 'body;\n            }}"
                    );
                }
                MemberIr::Field(f) => {
                    self.gen_struct_field(f, &mut ctx, out)?;
                }
            }
            if in_prefix {
                let _ = writeln!(out, "            }}");
            }
        }
        // Pwhere at the end of the body (skipped when aborted).
        if let Some(w) = &def.where_clause {
            let cond = self.compile_bool(w, &ctx)?;
            let _ = writeln!(
                out,
                "            if mask.compound().checks() && !({cond}) {{\n                pd.add_error(ErrorCode::WhereViolation, Loc::at(cur.position()));\n            }}"
            );
        }
        let _ = writeln!(out, "        }}");
        // Descriptor shape must be in place before the record closes: the
        // close may flatten it (per-record cap / best-effort degradation).
        let _ = writeln!(out, "        pd.kind = PdKind::Struct {{ fields: pds }};");
        if def.is_record {
            out.push_str(
                "        if pc_opened { let syn = pc_syntax_failed(&pd); pc_close_record(cur, &mut pd, syn); }\n",
            );
        }
        let fields: Vec<String> = members
            .iter()
            .filter_map(|m| match m {
                MemberIr::Field(f) => {
                    let n = field_name(&f.name);
                    Some(format!("{n}: f_{n}"))
                }
                MemberIr::Lit(_) => None,
            })
            .collect();
        let _ = writeln!(out, "        ({name} {{ {} }}, pd)", fields.join(", "));
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_struct_field(
        &self,
        f: &pads_check::ir::FieldIr,
        ctx: &mut Ctx,
        out: &mut String,
    ) -> GenResult<()> {
        let fname = field_name(&f.name);
        let repr = self.tyuse_repr(&f.ty);
        let _ = writeln!(out, "            {{");
        let _ = writeln!(out, "                let m = mask.child({:?});", f.name);
        // `start` feeds error locations and constraint spans; named and
        // optional fields without constraints never consult it.
        let needs_start =
            matches!(&f.ty, TyUse::Base { .. }) || f.constraint.is_some();
        if needs_start {
            let _ = writeln!(out, "                let start = cur.position();");
        }
        match &f.ty {
            TyUse::Base { name, args } => {
                let call = self.base_read_code(name, args, ctx)?;
                let _ = writeln!(out, "                match {call} {{");
                let _ = writeln!(out, "                    Ok(v) => {{");
                let _ = writeln!(out, "                        f_{fname} = v;");
                ctx.bind(&f.name, Operand::Place(format!("f_{fname}"), repr.clone()));
                if let Some(c) = &f.constraint {
                    // The descriptor is only materialised when the
                    // constraint actually fails — the clean path writes the
                    // value and nothing else.
                    let cond = self.compile_bool(c, ctx)?;
                    let _ = writeln!(
                        out,
                        "                        if m.base().checks() && !({cond}) {{\n                            let mut fpd = ParseDesc::ok();\n                            fpd.add_error(ErrorCode::ConstraintViolation, Loc::new(start, cur.position()));\n                            pd.absorb(&fpd);\n                            pds.push((Name::from_static({:?}), fpd));\n                        }}",
                        f.name
                    );
                }
                let _ = writeln!(out, "                    }}");
                let _ = writeln!(out, "                    Err(e) => {{");
                let _ = writeln!(
                    out,
                    "                        let fpd = ParseDesc::error(e, Loc::new(start, cur.position()));"
                );
                let _ = writeln!(out, "                        pd.absorb(&fpd);");
                let _ = writeln!(out, "                        pds.push((Name::from_static({:?}), fpd));", f.name);
                let _ = writeln!(out, "                        pd.state = ParseState::Partial;");
                let _ = writeln!(out, "                        break 'body;");
                let _ = writeln!(out, "                    }}");
                let _ = writeln!(out, "                }}");
            }
            TyUse::Named { id, args } => {
                let args_code = self.call_args(args, ctx)?;
                let ty_name = camel(&self.schema.def(*id).name);
                let _ = writeln!(
                    out,
                    "                let (v, mut fpd) = {ty_name}::read(cur, &m{args_code});"
                );
                let _ = writeln!(out, "                f_{fname} = v;");
                let _ = writeln!(out, "                let syn = pc_syntax_failed(&fpd);");
                ctx.bind(&f.name, Operand::Place(format!("f_{fname}"), repr.clone()));
                if let Some(c) = &f.constraint {
                    let cond = self.compile_bool(c, ctx)?;
                    let _ = writeln!(
                        out,
                        "                if !syn && m.base().checks() && !({cond}) {{\n                    fpd.add_error(ErrorCode::ConstraintViolation, Loc::new(start, cur.position()));\n                }}"
                    );
                }
                let _ = writeln!(out, "                pd.absorb(&fpd);");
                let _ = writeln!(
                    out,
                    "                if !fpd.is_ok() {{ pds.push((Name::from_static({:?}), fpd)); }}",
                    f.name
                );
                let _ = writeln!(
                    out,
                    "                if syn {{ pd.state = ParseState::Partial; break 'body; }}"
                );
            }
            TyUse::Opt(inner) => {
                self.gen_opt_read(&fname, &f.name, inner, ctx, out)?;
                ctx.bind(&f.name, Operand::Place(format!("f_{fname}"), repr.clone()));
                if let Some(c) = &f.constraint {
                    let cond = self.compile_bool(c, ctx)?;
                    let _ = writeln!(
                        out,
                        "                if m.base().checks() && !({cond}) {{\n                    pd.add_error(ErrorCode::ConstraintViolation, Loc::new(start, cur.position()));\n                }}"
                    );
                }
            }
        }
        let _ = writeln!(out, "            }}");
        Ok(())
    }

    fn gen_opt_read(
        &self,
        fname: &str,
        orig_name: &str,
        inner: &TyUse,
        ctx: &Ctx,
        out: &mut String,
    ) -> GenResult<()> {
        // An optional field is clean by construction: either the inner parse
        // succeeds, or the cursor is rolled back and the field is `None`.
        // Its descriptor carries no errors in either arm, so no fpd is built
        // and nothing is absorbed into the struct descriptor.
        let _ = writeln!(out, "                let cp = cur.checkpoint();");
        match inner {
            TyUse::Base { name, args } => {
                let call = self.base_read_code(name, args, ctx)?;
                let _ = writeln!(
                    out,
                    "                match {call} {{\n                    Ok(v) => {{ f_{fname} = Some(v); }}\n                    Err(_) => {{ cur.restore(cp); f_{fname} = None; }}\n                }}"
                );
            }
            TyUse::Named { id, args } => {
                let args_code = self.call_args(args, ctx)?;
                let ty_name = camel(&self.schema.def(*id).name);
                let _ = writeln!(
                    out,
                    "                let (v, ipd) = {ty_name}::read(cur, &m{args_code});\n                if ipd.is_ok() {{\n                    f_{fname} = Some(v);\n                }} else {{\n                    cur.restore(cp);\n                    f_{fname} = None;\n                }}"
                );
            }
            TyUse::Opt(_) => {
                return Err(CodegenError::new(format!(
                    "nested Popt on field `{orig_name}` is not supported by codegen"
                )))
            }
        }
        Ok(())
    }

    // ---- union ------------------------------------------------------------------

    fn gen_union_read(
        &self,
        id: TypeId,
        branches: &[BranchIr],
        out: &mut String,
    ) -> GenResult<()> {
        let def = self.schema.def(id);
        let name = camel(&def.name);
        let _ = writeln!(
            out,
            "    /// Parses one `{}`: the first branch that parses without error wins.",
            def.name
        );
        self.emit_read_wrapper(id, true, out);
        let lt = self.lt_args(id);
        let (gen_lt, cur_lt) = self.read_lt(id);
        let _ = writeln!(
            out,
            "    fn read_impl{gen_lt}(cur: &mut Cursor<{cur_lt}>, mask: &Mask{}) -> ({name}{lt}, ParseDesc) {{",
            self.params_sig(id)
        );
        let _ = writeln!(out, "        let start = cur.position();");
        let ctx = self.param_ctx(id);
        for b in branches {
            let bname = field_name(&b.field.name);
            let variant = camel(&b.field.name);
            let repr = self.tyuse_repr(&b.field.ty);
            let _ = writeln!(out, "        {{");
            let _ = writeln!(out, "            let cp = cur.checkpoint();");
            let _ = writeln!(out, "            let m = mask.child({:?});", b.field.name);
            let mut bctx = ctx.clone();
            match &b.field.ty {
                TyUse::Base { name: bn, args } => {
                    let call = self.base_read_code(bn, args, &ctx)?;
                    let _ = writeln!(out, "            if let Ok(v) = {call} {{");
                    let _ = writeln!(out, "                let f_{bname} = v;");
                    bctx.bind(&b.field.name, Operand::Place(format!("f_{bname}"), repr));
                    let cond = match &b.field.constraint {
                        Some(c) => self.compile_bool(c, &bctx)?,
                        None => "true".to_owned(),
                    };
                    let _ = writeln!(
                        out,
                        "                if {cond} {{\n                    let mut pd = ParseDesc::ok();\n                    pd.kind = PdKind::union_ok(Name::from_static({:?}));\n                    return ({name}::{variant}(f_{bname}), pd);\n                }}",
                        b.field.name
                    );
                    let _ = writeln!(out, "            }}");
                    let _ = writeln!(out, "            cur.restore(cp);");
                }
                TyUse::Named { id: bid, args } => {
                    let args_code = self.call_args(args, &ctx)?;
                    let ty_name = camel(&self.schema.def(*bid).name);
                    let _ = writeln!(
                        out,
                        "            let (v, bpd) = {ty_name}::read(cur, &m{args_code});"
                    );
                    let _ = writeln!(out, "            if bpd.is_ok() {{");
                    let _ = writeln!(out, "                let f_{bname} = v;");
                    bctx.bind(&b.field.name, Operand::Place(format!("f_{bname}"), repr));
                    let cond = match &b.field.constraint {
                        Some(c) => self.compile_bool(c, &bctx)?,
                        None => "true".to_owned(),
                    };
                    let _ = writeln!(
                        out,
                        "                if {cond} {{\n                    let mut pd = ParseDesc::ok();\n                    pd.kind = PdKind::union(Name::from_static({:?}), bpd);\n                    return ({name}::{variant}(f_{bname}), pd);\n                }}",
                        b.field.name
                    );
                    let _ = writeln!(out, "            }}");
                    let _ = writeln!(out, "            cur.restore(cp);");
                }
                TyUse::Opt(_) => {
                    return Err(CodegenError::new(
                        "Popt union branches are not supported by codegen",
                    ))
                }
            }
            let _ = writeln!(out, "        }}");
        }
        let _ = writeln!(
            out,
            "        let mut pd = ParseDesc::error(ErrorCode::UnionNoBranch, Loc::at(start));\n        pd.state = ParseState::Partial;\n        pd.kind = PdKind::union_ok(Name::from_static({:?}));\n        ({name}::default(), pd)",
            branches[0].field.name
        );
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_switch_read(
        &self,
        id: TypeId,
        sel: &Expr,
        branches: &[BranchIr],
        out: &mut String,
    ) -> GenResult<()> {
        let def = self.schema.def(id);
        let name = camel(&def.name);
        let ctx = self.param_ctx(id);
        let _ = writeln!(out, "    /// Parses one `{}` (Pswitch union).", def.name);
        self.emit_read_wrapper(id, true, out);
        let lt = self.lt_args(id);
        let (gen_lt, cur_lt) = self.read_lt(id);
        let _ = writeln!(
            out,
            "    fn read_impl{gen_lt}(cur: &mut Cursor<{cur_lt}>, mask: &Mask{}) -> ({name}{lt}, ParseDesc) {{",
            self.params_sig(id)
        );
        let _ = writeln!(out, "        let start = cur.position();");
        let _ = writeln!(out, "        let sel: i64 = {};", self.compile_num(sel, &ctx)?);
        // Emit a branch body shared by case and default arms.
        let mut arms = String::new();
        let mut default_arm: Option<String> = None;
        for b in branches {
            let mut body = String::new();
            let bname = field_name(&b.field.name);
            let variant = camel(&b.field.name);
            let repr = self.tyuse_repr(&b.field.ty);
            let _ = writeln!(body, "            let m = mask.child({:?});", b.field.name);
            let mut bctx = ctx.clone();
            match &b.field.ty {
                TyUse::Base { name: bn, args } => {
                    let call = self.base_read_code(bn, args, &ctx)?;
                    let _ = writeln!(
                        body,
                        "            let (f_{bname}, mut bpd) = match {call} {{\n                Ok(v) => (v, ParseDesc::ok()),\n                Err(e) => (Default::default(), ParseDesc::error(e, Loc::new(start, cur.position()))),\n            }};"
                    );
                }
                TyUse::Named { id: bid, args } => {
                    let args_code = self.call_args(args, &ctx)?;
                    let ty_name = camel(&self.schema.def(*bid).name);
                    let _ = writeln!(
                        body,
                        "            let (f_{bname}, mut bpd) = {ty_name}::read(cur, &m{args_code});"
                    );
                }
                TyUse::Opt(_) => {
                    return Err(CodegenError::new(
                        "Popt switch branches are not supported by codegen",
                    ))
                }
            }
            bctx.bind(&b.field.name, Operand::Place(format!("f_{bname}"), repr));
            if let Some(c) = &b.field.constraint {
                let cond = self.compile_bool(c, &bctx)?;
                let _ = writeln!(
                    body,
                    "            if !({cond}) {{ bpd.add_error(ErrorCode::ConstraintViolation, Loc::new(start, cur.position())); }}"
                );
            }
            let _ = writeln!(
                body,
                "            let mut pd = ParseDesc::ok();\n            pd.absorb(&bpd);\n            pd.kind = PdKind::union(Name::from_static({:?}), bpd);\n            return ({name}::{variant}(f_{bname}), pd);",
                b.field.name
            );
            match &b.case {
                Some(CaseLabel::Expr(e)) => {
                    let case = self.compile_num(e, &ctx)?;
                    let _ = writeln!(arms, "        if sel == ({case}) {{\n{body}        }}");
                }
                Some(CaseLabel::Default) => default_arm = Some(body),
                None => {}
            }
        }
        out.push_str(&arms);
        if let Some(body) = default_arm {
            let _ = writeln!(out, "        {{\n{body}        }}");
        } else {
            let _ = writeln!(
                out,
                "        let mut pd = ParseDesc::error(ErrorCode::SwitchNoMatch, Loc::at(start));\n        pd.state = ParseState::Partial;\n        pd.kind = PdKind::union_ok(Name::from_static({:?}));\n        ({name}::default(), pd)",
                branches[0].field.name
            );
        }
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_union_write(
        &self,
        id: TypeId,
        branches: &[BranchIr],
        out: &mut String,
    ) -> GenResult<()> {
        let def = self.schema.def(id);
        let ctx = self.param_ctx(id);
        let _ = writeln!(out, "    /// Writes the taken branch in original form.");
        let _ = writeln!(
            out,
            "    pub fn write(&self, out: &mut Vec<u8>, charset: Charset, endian: Endian{}) -> Result<(), ErrorCode> {{",
            self.params_sig(id)
        );
        let _ = writeln!(out, "        match self {{");
        for b in branches {
            let variant = camel(&b.field.name);
            let wcode = self.tyuse_write_code(&b.field.ty, "v", &ctx)?;
            let _ = writeln!(
                out,
                "            {}::{variant}(v) => {{ {wcode} }}",
                camel(&def.name)
            );
        }
        let _ = writeln!(out, "        }}");
        let _ = writeln!(out, "        Ok(())");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_union_verify(
        &self,
        id: TypeId,
        branches: &[BranchIr],
        out: &mut String,
    ) -> GenResult<()> {
        let def = self.schema.def(id);
        let ctx = self.param_ctx(id);
        let _ = writeln!(out, "    /// Re-checks branch constraints in memory.");
        let _ = writeln!(
            out,
            "    pub fn verify(&self{}) -> bool {{",
            self.params_sig(id)
        );
        let _ = writeln!(out, "        match self {{");
        for b in branches {
            let variant = camel(&b.field.name);
            let repr = self.tyuse_repr(&b.field.ty);
            let mut bctx = ctx.clone();
            bctx.bind(&b.field.name, Operand::Place("(*v)".to_owned(), repr));
            let mut cond = match &b.field.constraint {
                Some(c) => self.compile_bool(c, &bctx)?,
                None => "true".to_owned(),
            };
            if let Some(nested) = self.nested_verify_code(&b.field.ty, "v", &ctx)? {
                cond = format!("({cond}) && ({nested})");
            }
            let _ = writeln!(out, "            {}::{variant}(v) => {cond},", camel(&def.name));
        }
        let _ = writeln!(out, "        }}");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    // ---- array --------------------------------------------------------------------

    fn gen_array_read(&self, id: TypeId, out: &mut String) -> GenResult<()> {
        let def = self.schema.def(id);
        let name = camel(&def.name);
        let TypeKind::Array { elem, sep, term, ended, size } = &def.kind else {
            unreachable!("gen_array_read on non-array")
        };
        let ctx = self.param_ctx(id);
        let elem_repr = self.tyuse_repr(elem);
        let elem_ty = self.rust_ty(&elem_repr);
        let elem_recovers = matches!(elem, TyUse::Named { id, .. } if self.schema.def(*id).is_record);
        let _ = writeln!(out, "    /// Parses the sequence with its separator/terminator conditions.");
        self.emit_read_wrapper(id, true, out);
        let lt = self.lt_args(id);
        let (gen_lt, cur_lt) = self.read_lt(id);
        let _ = writeln!(
            out,
            "    fn read_impl{gen_lt}(cur: &mut Cursor<{cur_lt}>, mask: &Mask{}) -> ({name}{lt}, ParseDesc) {{",
            self.params_sig(id)
        );
        let _ = writeln!(out, "        let mut elts: Vec<{elem_ty}> = Vec::new();");
        let _ = writeln!(out, "        let mut elt_pds = SparseElts::new();");
        let _ = writeln!(out, "        let mut pd = ParseDesc::ok();");
        let _ = writeln!(out, "        let mut neerr: u32 = 0;");
        let _ = writeln!(out, "        let mut first_error: Option<usize> = None;");
        let _ = writeln!(out, "        let elem_mask = mask.child(\"elt\");");
        if let Some(sz) = size {
            let _ = writeln!(out, "        let want: usize = ({}) as usize;", self.compile_num(sz, &ctx)?);
        }
        let _ = writeln!(out, "        loop {{");
        if size.is_some() {
            let _ = writeln!(out, "            if elts.len() >= want {{ break; }}");
        } else {
            if let Some(t) = term {
                let peek = self.lit_peek_code(t)?;
                let consume = match t {
                    Literal::Eor | Literal::Eof => String::new(),
                    lit => format!("let _ = {};", self.lit_match_code(lit)?),
                };
                let _ = writeln!(out, "            if {peek} {{ {consume} break; }}");
            } else {
                let _ = writeln!(
                    out,
                    "            if (if cur.in_record() {{ cur.at_eor() }} else {{ cur.at_eof() }}) {{ break; }}"
                );
            }
        }
        if let Some(s) = sep {
            let m = self.lit_match_code(s)?;
            let _ = writeln!(
                out,
                "            if !elts.is_empty() {{\n                let cp = cur.checkpoint();\n                if !({m}) {{\n                    cur.restore(cp);\n                    pd.add_error(ErrorCode::ArraySepMismatch, Loc::at(cur.position()));\n                    pd.state = ParseState::Partial;\n                    break;\n                }}\n            }}"
            );
        }
        let _ = writeln!(out, "            let before = cur.offset();");
        match elem {
            TyUse::Base { name: bn, args } => {
                let call = self.base_read_code(bn, args, &ctx)?;
                let _ = writeln!(
                    out,
                    "            let (v, epd) = {{\n                let start = cur.position();\n                match {call} {{\n                    Ok(v) => (v, ParseDesc::ok()),\n                    Err(e) => (Default::default(), ParseDesc::error(e, Loc::new(start, cur.position()))),\n                }}\n            }};"
                );
            }
            TyUse::Named { id: eid, args } => {
                let args_code = self.call_args(args, &ctx)?;
                let ty_name = camel(&self.schema.def(*eid).name);
                let _ = writeln!(
                    out,
                    "            let (v, epd) = {ty_name}::read(cur, &elem_mask{args_code});"
                );
            }
            TyUse::Opt(_) => {
                return Err(CodegenError::new(
                    "Popt array elements are not supported by codegen",
                ))
            }
        }
        let _ = writeln!(
            out,
            "            let bad = !epd.is_ok();\n            let syn = pc_syntax_failed(&epd);\n            if bad {{\n                neerr += 1;\n                if first_error.is_none() {{ first_error = Some(elts.len()); }}\n            }}\n            pd.absorb(&epd);\n            elts.push(v);\n            elt_pds.push(epd);"
        );
        let _ = writeln!(
            out,
            "            if syn && !{elem_recovers} {{ pd.state = ParseState::Partial; break; }}"
        );
        if size.is_none() {
            // The zero-width guard stops loops whose element succeeded
            // without consuming input. When the progress analysis proves
            // the element non-empty the guard is dead code — but only for
            // non-recovering elements: a `Precord` element's resync path
            // can report success without advancing past `before`.
            let facts = lint::firstset::Facts::compute(self.schema);
            let proven =
                lint::progress::array_progress(self.schema, &facts, id) == lint::progress::Progress::Proven;
            if proven && !elem_recovers {
                let _ = writeln!(
                    out,
                    "            // zero-width guard elided: element is proven to consume input"
                );
            } else {
                let _ = writeln!(
                    out,
                    "            if cur.offset() == before {{ pd.add_error(ErrorCode::ArrayTermMismatch, Loc::at(cur.position())); break; }}"
                );
            }
        }
        if let Some(e) = ended {
            let mut ectx = ctx.clone();
            ectx.bind("elts", Operand::Place("elts".to_owned(), Repr::Slice(Box::new(elem_repr.clone()))));
            ectx.bind("length", Operand::Num("(elts.len() as i64)".to_owned()));
            let cond = self.compile_bool(e, &ectx)?;
            let consume = match term {
                Some(Literal::Eor) | Some(Literal::Eof) | None => String::new(),
                Some(lit) => format!(
                    "if {} {{ let _ = {}; }}",
                    self.lit_peek_code(lit)?,
                    self.lit_match_code(lit)?
                ),
            };
            let _ = writeln!(out, "            if {cond} {{ {consume} break; }}");
        }
        let _ = writeln!(out, "        }}");
        if size.is_some() {
            let _ = writeln!(
                out,
                "        if elts.len() != want {{ pd.add_error(ErrorCode::ArraySizeMismatch, Loc::at(cur.position())); }}"
            );
        }
        if let Some(w) = &def.where_clause {
            let mut wctx = ctx.clone();
            wctx.bind("elts", Operand::Place("elts".to_owned(), Repr::Slice(Box::new(elem_repr.clone()))));
            wctx.bind("length", Operand::Num("(elts.len() as i64)".to_owned()));
            let cond = self.compile_bool(w, &wctx)?;
            let code = if matches!(w, Expr::Forall { .. }) {
                "ForallViolation"
            } else {
                "WhereViolation"
            };
            let _ = writeln!(
                out,
                "        if mask.compound().checks() && pd.state == ParseState::Ok && !({cond}) {{\n            pd.add_error(ErrorCode::{code}, Loc::at(cur.position()));\n        }}"
            );
        }
        let _ = writeln!(
            out,
            "        pd.kind = PdKind::Array {{ elts: elt_pds.finish(), neerr, first_error }};"
        );
        let _ = writeln!(out, "        ({name}(elts), pd)");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_array_write(&self, id: TypeId, out: &mut String) -> GenResult<()> {
        let def = self.schema.def(id);
        let TypeKind::Array { elem, sep, term, .. } = &def.kind else {
            unreachable!("gen_array_write on non-array")
        };
        let ctx = self.param_ctx(id);
        let _ = writeln!(out, "    /// Writes the sequence in original form.");
        let _ = writeln!(
            out,
            "    pub fn write(&self, out: &mut Vec<u8>, charset: Charset, endian: Endian{}) -> Result<(), ErrorCode> {{",
            self.params_sig(id)
        );
        let _ = writeln!(out, "        for (i, v) in self.0.iter().enumerate() {{");
        if let Some(s) = sep {
            let _ = writeln!(out, "            if i > 0 {{ {} }}", self.lit_write_code(s)?);
        }
        let wcode = self.tyuse_write_code(elem, "v", &ctx)?;
        let _ = writeln!(out, "            {wcode}");
        let _ = writeln!(out, "        }}");
        if let Some(t) = term {
            if !matches!(t, Literal::Eor | Literal::Eof) {
                let _ = writeln!(out, "        {}", self.lit_write_code(t)?);
            }
        }
        let _ = writeln!(out, "        Ok(())");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_array_verify(&self, id: TypeId, out: &mut String) -> GenResult<()> {
        let def = self.schema.def(id);
        let TypeKind::Array { elem, .. } = &def.kind else {
            unreachable!("gen_array_verify on non-array")
        };
        let ctx = self.param_ctx(id);
        let elem_repr = self.tyuse_repr(elem);
        let _ = writeln!(out, "    /// Re-checks sequence constraints in memory.");
        let _ = writeln!(out, "    pub fn verify(&self{}) -> bool {{", self.params_sig(id));
        let _ = writeln!(out, "        let mut ok = true;");
        if let Some(nested) = self.nested_verify_code(elem, "e", &ctx)? {
            let _ = writeln!(out, "        ok &= self.0.iter().all(|e| {nested});");
        }
        if let Some(w) = &def.where_clause {
            let mut wctx = ctx.clone();
            wctx.bind(
                "elts",
                Operand::Place("self.0".to_owned(), Repr::Slice(Box::new(elem_repr))),
            );
            wctx.bind("length", Operand::Num("(self.0.len() as i64)".to_owned()));
            let cond = self.compile_bool(w, &wctx)?;
            let _ = writeln!(out, "        ok &= ({cond});");
        }
        let _ = writeln!(out, "        ok");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    // ---- enum ---------------------------------------------------------------------

    fn gen_enum_read(
        &self,
        id: TypeId,
        variants: &[String],
        name: &str,
        out: &mut String,
    ) -> GenResult<()> {
        let _ = writeln!(out, "    /// Parses the longest matching variant literal.");
        self.emit_read_wrapper(id, false, out);
        let _ = writeln!(
            out,
            "    fn read_impl(cur: &mut Cursor<'_>, _mask: &Mask) -> ({name}, ParseDesc) {{"
        );
        // Longest-first so GETX beats GET; stable on ties.
        let mut order: Vec<usize> = (0..variants.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(variants[i].len()));
        for i in order {
            let v = &variants[i];
            let _ = writeln!(
                out,
                "        if pc_match_str(cur, {}) {{ return ({name}::{}, ParseDesc::ok()); }}",
                bytes_lit(v),
                camel(v)
            );
        }
        let _ = writeln!(
            out,
            "        let pd = ParseDesc::error(ErrorCode::EnumNoMatch, Loc::at(cur.position()));"
        );
        let _ = writeln!(out, "        ({name}::default(), pd)");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_enum_write(
        &self,
        variants: &[String],
        name: &str,
        out: &mut String,
    ) -> GenResult<()> {
        let _ = writeln!(out, "    /// Writes the variant literal in the ambient coding.");
        let _ = writeln!(
            out,
            "    pub fn write(&self, out: &mut Vec<u8>, charset: Charset, _endian: Endian) -> Result<(), ErrorCode> {{"
        );
        let _ = writeln!(out, "        let lit: &[u8] = match self {{");
        for v in variants {
            let _ = writeln!(out, "            {name}::{} => {},", camel(v), bytes_lit(v));
        }
        let _ = writeln!(out, "        }};");
        let _ = writeln!(out, "        out.extend(lit.iter().map(|&b| charset.encode(b)));");
        let _ = writeln!(out, "        Ok(())");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    // ---- typedef -------------------------------------------------------------------

    fn gen_typedef_read(
        &self,
        id: TypeId,
        base: &TyUse,
        var: &Option<String>,
        pred: &Option<Expr>,
        out: &mut String,
    ) -> GenResult<()> {
        let def = self.schema.def(id);
        let name = camel(&def.name);
        let ctx = self.param_ctx(id);
        let _ = writeln!(out, "    /// Parses the underlying type, then checks the constraint.");
        self.emit_read_wrapper(id, true, out);
        let lt = self.lt_args(id);
        let (gen_lt, cur_lt) = self.read_lt(id);
        let _ = writeln!(
            out,
            "    fn read_impl{gen_lt}(cur: &mut Cursor<{cur_lt}>, mask: &Mask{}) -> ({name}{lt}, ParseDesc) {{",
            self.params_sig(id)
        );
        let _ = writeln!(out, "        let start = cur.position();");
        let pred_code = |g: &Self, vcode: &str| -> GenResult<String> {
            if let (Some(v), Some(p)) = (var, pred) {
                let mut pctx = ctx.clone();
                pctx.bind(v, Operand::Place(vcode.to_owned(), g.tyuse_repr(base)));
                let cond = g.compile_bool(p, &pctx)?;
                Ok(format!(
                    "if mask.base().checks() && !({cond}) {{ pd.add_error(ErrorCode::ConstraintViolation, Loc::new(start, cur.position())); }}"
                ))
            } else {
                Ok(String::new())
            }
        };
        match base {
            TyUse::Base { name: bn, args } => {
                let call = self.base_read_code(bn, args, &ctx)?;
                let check = pred_code(self, "v")?;
                let _ = writeln!(
                    out,
                    "        match {call} {{\n            Ok(v) => {{\n                let mut pd = ParseDesc::ok();\n                {check}\n                pd.kind = PdKind::typedef(ParseDesc::ok());\n                ({name}(v), pd)\n            }}\n            Err(e) => {{\n                let mut pd = ParseDesc::error(e, Loc::new(start, cur.position()));\n                pd.kind = PdKind::typedef(ParseDesc::ok());\n                ({name}::default(), pd)\n            }}\n        }}"
                );
            }
            TyUse::Named { id: bid, args } => {
                let args_code = self.call_args(args, &ctx)?;
                let ty_name = camel(&self.schema.def(*bid).name);
                let check = pred_code(self, "v")?;
                let _ = writeln!(
                    out,
                    "        let (v, bpd) = {ty_name}::read(cur, mask{args_code});\n        let mut pd = ParseDesc::ok();\n        pd.absorb(&bpd);\n        if pd.is_ok() {{ {check} }}\n        pd.kind = PdKind::typedef(bpd);\n        ({name}(v), pd)"
                );
            }
            TyUse::Opt(_) => {
                return Err(CodegenError::new(
                    "Popt typedef bases are not supported by codegen",
                ))
            }
        }
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_typedef_write(&self, id: TypeId, base: &TyUse, out: &mut String) -> GenResult<()> {
        let ctx = self.param_ctx(id);
        let wcode = self.tyuse_write_code(base, "(&self.0)", &ctx)?;
        let _ = writeln!(out, "    /// Writes the underlying value in original form.");
        let _ = writeln!(
            out,
            "    pub fn write(&self, out: &mut Vec<u8>, charset: Charset, endian: Endian{}) -> Result<(), ErrorCode> {{",
            self.params_sig(id)
        );
        let _ = writeln!(out, "        {wcode}");
        let _ = writeln!(out, "        Ok(())");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_typedef_verify(
        &self,
        id: TypeId,
        base: &TyUse,
        var: &Option<String>,
        pred: &Option<Expr>,
        out: &mut String,
    ) -> GenResult<()> {
        let ctx = self.param_ctx(id);
        let mut cond = "true".to_owned();
        if let (Some(v), Some(p)) = (var, pred) {
            let mut pctx = ctx.clone();
            pctx.bind(v, Operand::Place("self.0".to_owned(), self.tyuse_repr(base)));
            cond = self.compile_bool(p, &pctx)?;
        }
        if let Some(nested) = self.nested_verify_code(base, "(&self.0)", &ctx)? {
            cond = format!("({cond}) && ({nested})");
        }
        let _ = writeln!(out, "    /// Re-checks the typedef constraint in memory.");
        let _ = writeln!(out, "    pub fn verify(&self{}) -> bool {{", self.params_sig(id));
        let _ = writeln!(out, "        {cond}");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    // ---- arena lowering ---------------------------------------------------------

    /// Dense id of `name` in the module's `name_table()` interning order.
    fn name_id(&self, name: &str) -> GenResult<usize> {
        self.names.iter().position(|n| n == name).ok_or_else(|| {
            CodegenError::new(format!("name `{name}` missing from the arena name table"))
        })
    }

    /// `'d` when the type borrows the buffer (the arena must share its
    /// lifetime), else elided.
    fn arena_lt(&self, id: TypeId) -> &'static str {
        if self.lt[id] {
            "'d"
        } else {
            "'_"
        }
    }

    /// Expression lowering `expr` (a place of representation `repr`) into
    /// the arena `a`; evaluates to an `AVal`. String leaves preserve their
    /// `Cow` state — a borrowed `PStr` becomes a borrowed arena leaf, so
    /// the lowering itself never copies text.
    fn arena_lower(&self, repr: &Repr, expr: &str) -> GenResult<String> {
        Ok(match repr {
            Repr::UInt(_) => format!("a.uint(({expr}) as u64)"),
            Repr::Int(_) => format!("a.int(({expr}) as i64)"),
            Repr::Float => format!("a.float({expr})"),
            Repr::Char => format!("a.char({expr})"),
            Repr::Str => format!(
                "match &({expr}).0 {{ std::borrow::Cow::Borrowed(s) => a.str_borrowed(*s), std::borrow::Cow::Owned(s) => a.str_spilled(s) }}"
            ),
            Repr::Date => format!("a.date({expr})"),
            Repr::Ip => format!("a.ip({expr})"),
            Repr::Unit => "a.unit()".to_owned(),
            Repr::Prim => format!("a.prim(&({expr}))"),
            Repr::Named(_) => format!("({expr}).to_arena(a)"),
            Repr::Opt(inner) => {
                let icode = self.arena_lower(inner, "(*pc_v)")?;
                format!(
                    "match &({expr}) {{ Some(pc_v) => {{ let pc_h = {icode}; a.opt_some(pc_h) }} None => a.opt_none() }}"
                )
            }
            Repr::Slice(_) => {
                return Err(CodegenError::new(
                    "slice representations cannot lower to the arena",
                ))
            }
        })
    }

    fn emit_to_arena_doc(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "    /// Lowers the parsed value into `a` without allocating (borrowed\n    \
                 /// text stays borrowed); `NameId`s index this module's [`name_table`]."
        );
    }

    fn gen_struct_to_arena(
        &self,
        id: TypeId,
        members: &[MemberIr],
        out: &mut String,
    ) -> GenResult<()> {
        self.emit_to_arena_doc(out);
        let _ = writeln!(
            out,
            "    pub fn to_arena(&self, a: &mut ValueArena<{}>) -> AVal {{",
            self.arena_lt(id)
        );
        let mut pairs = Vec::new();
        for m in members {
            if let MemberIr::Field(f) = m {
                let repr = self.tyuse_repr(&f.ty);
                let fname = field_name(&f.name);
                let code = self.arena_lower(&repr, &format!("self.{fname}"))?;
                let nid = self.name_id(&f.name)?;
                let _ = writeln!(out, "        let pc_a_{fname} = {code};");
                pairs.push(format!("(NameId({nid}u32), pc_a_{fname})"));
            }
        }
        let _ = writeln!(out, "        a.strct(&[{}])", pairs.join(", "));
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_union_to_arena(
        &self,
        id: TypeId,
        branches: &[BranchIr],
        out: &mut String,
    ) -> GenResult<()> {
        let name = camel(&self.schema.def(id).name);
        self.emit_to_arena_doc(out);
        let _ = writeln!(
            out,
            "    pub fn to_arena(&self, a: &mut ValueArena<{}>) -> AVal {{",
            self.arena_lt(id)
        );
        let _ = writeln!(out, "        match self {{");
        for (i, b) in branches.iter().enumerate() {
            let repr = self.tyuse_repr(&b.field.ty);
            let code = self.arena_lower(&repr, "(*pc_v)")?;
            let nid = self.name_id(&b.field.name)?;
            let _ = writeln!(
                out,
                "            {name}::{}(pc_v) => {{ let pc_h = {code}; a.union(NameId({nid}u32), {i}usize, pc_h) }}",
                camel(&b.field.name)
            );
        }
        let _ = writeln!(out, "        }}");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_array_to_arena(&self, id: TypeId, out: &mut String) -> GenResult<()> {
        let TypeKind::Array { elem, .. } = &self.schema.def(id).kind else {
            unreachable!("gen_array_to_arena on non-array")
        };
        let elem_repr = self.tyuse_repr(elem);
        let code = self.arena_lower(&elem_repr, "(*pc_e)")?;
        self.emit_to_arena_doc(out);
        let _ = writeln!(
            out,
            "    pub fn to_arena(&self, a: &mut ValueArena<{}>) -> AVal {{",
            self.arena_lt(id)
        );
        let _ = writeln!(out, "        let pc_mark = a.scratch_mark();");
        let _ = writeln!(out, "        for pc_e in &self.0 {{");
        let _ = writeln!(out, "            let pc_h = {code};");
        let _ = writeln!(out, "            a.scratch_push(pc_h);");
        let _ = writeln!(out, "        }}");
        let _ = writeln!(out, "        a.array_from_scratch(pc_mark)");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_enum_to_arena(
        &self,
        variants: &[String],
        name: &str,
        out: &mut String,
    ) -> GenResult<()> {
        self.emit_to_arena_doc(out);
        let _ = writeln!(out, "    pub fn to_arena(&self, a: &mut ValueArena<'_>) -> AVal {{");
        let _ = writeln!(out, "        match self {{");
        for (i, v) in variants.iter().enumerate() {
            let nid = self.name_id(v)?;
            let _ = writeln!(
                out,
                "            {name}::{} => a.enumv(NameId({nid}u32), {i}usize),",
                camel(v)
            );
        }
        let _ = writeln!(out, "        }}");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_typedef_to_arena(&self, id: TypeId, base: &TyUse, out: &mut String) -> GenResult<()> {
        // The interpreter passes a typedef's underlying value through
        // unwrapped, so the newtype lowers as just its inner value.
        let code = self.arena_lower(&self.tyuse_repr(base), "self.0")?;
        self.emit_to_arena_doc(out);
        let _ = writeln!(
            out,
            "    pub fn to_arena(&self, a: &mut ValueArena<{}>) -> AVal {{",
            self.arena_lt(id)
        );
        let _ = writeln!(out, "        {code}");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    // ---- shared write/verify helpers -------------------------------------------

    fn lit_write_code(&self, lit: &Literal) -> GenResult<String> {
        Ok(match lit {
            Literal::Char(c) => format!("out.push(charset.encode({c}u8));"),
            Literal::Str(s) => format!(
                "out.extend({}.iter().map(|&b| charset.encode(b)));",
                bytes_lit(s)
            ),
            Literal::Regex(_) => {
                return Err(CodegenError::new(
                    "regex literals cannot be written back (no canonical text)",
                ))
            }
            Literal::Eor | Literal::Eof => String::new(),
        })
    }

    /// Code writing `place` (a reference or local of the tyuse's rep).
    fn tyuse_write_code(&self, ty: &TyUse, place: &str, ctx: &Ctx) -> GenResult<String> {
        match ty {
            TyUse::Named { id: _, args } => {
                let args_code = self.call_args(args, ctx)?;
                Ok(format!("{place}.write(out, charset, endian{args_code})?;"))
            }
            TyUse::Opt(inner) => {
                let inner_code = self.tyuse_write_code(inner, "pc_inner", ctx)?;
                Ok(format!(
                    "if let Some(pc_inner) = &({place}) {{ {inner_code} }}"
                ))
            }
            TyUse::Base { name, args } => {
                let repr = self.base_repr(name);
                // Hot-path writers for ambient text families: no Prim
                // boxing, no registry lookup.
                match (name.as_str(), &repr) {
                    (
                        "Pstring" | "Pstring_ME" | "Pstring_SE" | "Pzip" | "Phostname",
                        Repr::Str,
                    ) => {
                        return Ok(format!("wr_text(out, &{place}, charset);"));
                    }
                    (n, Repr::UInt(_)) if !n.ends_with("_FW") && !n.starts_with("Pb_")
                        && !n.starts_with("Pe_") && !n.starts_with("Pa_") && n != "Pbits" =>
                    {
                        return Ok(format!("wr_u64(out, (*{place}) as u64, charset);"));
                    }
                    (n, Repr::Int(_)) if !n.ends_with("_FW") && !n.starts_with("Pb_")
                        && !n.starts_with("Pe_") && !n.starts_with("Pa_")
                        && n != "Pebc_zoned" && n != "Ppacked" =>
                    {
                        return Ok(format!("wr_i64(out, (*{place}) as i64, charset);"));
                    }
                    ("Pchar", Repr::Char) => {
                        return Ok(format!("out.push(charset.encode(*{place}));"));
                    }
                    _ => {}
                }
                let prim = match repr {
                    Repr::UInt(_) => format!("Prim::Uint((*{place}) as u64)"),
                    Repr::Int(_) => format!("Prim::Int((*{place}) as i64)"),
                    Repr::Float => format!("Prim::Float(*{place})"),
                    Repr::Char => format!("Prim::Char(*{place})"),
                    Repr::Str => format!("Prim::String({place}.as_str().to_owned())"),
                    Repr::Date => format!("Prim::Date(*{place})"),
                    Repr::Ip => format!("Prim::Ip(*{place})"),
                    Repr::Unit => "Prim::Unit".to_owned(),
                    Repr::Prim => format!("{place}.clone()"),
                    _ => return Err(CodegenError::new("unexpected base representation")),
                };
                let arg_prims = self.arg_prims(name, args, ctx)?;
                Ok(format!(
                    "wr_prim(out, \"{name}\", &{prim}, &[{arg_prims}], charset, endian)?;"
                ))
            }
        }
    }

    /// Verification call for a nested representation, or `None` when the
    /// type carries no constraints (bases).
    fn nested_verify_code(
        &self,
        ty: &TyUse,
        place: &str,
        ctx: &Ctx,
    ) -> GenResult<Option<String>> {
        match ty {
            TyUse::Base { .. } => Ok(None),
            TyUse::Named { id: _, args } => {
                let mut call_args = String::new();
                for a in args {
                    // Verification has no parse-time scope; only constant
                    // and parameter arguments are supported.
                    let _ = write!(call_args, ", ({})", self.compile_num(a, ctx)?);
                }
                Ok(Some(format!("{place}.verify({})", call_args.trim_start_matches(", "))))
            }
            TyUse::Opt(inner) => Ok(self
                .nested_verify_code(inner, "pc_inner", ctx)?
                .map(|code| format!("{place}.as_ref().map_or(true, |pc_inner| {code})"))),
        }
    }

    fn gen_struct_write(
        &self,
        id: TypeId,
        members: &[MemberIr],
        out: &mut String,
    ) -> GenResult<()> {
        let def = self.schema.def(id);
        let mut ctx = self.param_ctx(id);
        // `self.` bindings for argument expressions referencing fields.
        for m in members {
            if let MemberIr::Field(f) = m {
                ctx.bind(
                    &f.name,
                    Operand::Place(format!("self.{}", field_name(&f.name)), self.tyuse_repr(&f.ty)),
                );
            }
        }
        let _ = writeln!(
            out,
            "    /// Writes the value in its original on-disk form{}.",
            if def.is_record { " (newline-terminated record)" } else { "" }
        );
        let _ = writeln!(
            out,
            "    pub fn write(&self, out: &mut Vec<u8>, charset: Charset, endian: Endian{}) -> Result<(), ErrorCode> {{",
            self.params_sig(id)
        );
        for m in members {
            match m {
                MemberIr::Lit(l) => {
                    let code = self.lit_write_code(l)?;
                    if !code.is_empty() {
                        let _ = writeln!(out, "        {code}");
                    }
                }
                MemberIr::Field(f) => {
                    let place = format!("(&self.{})", field_name(&f.name));
                    let code = self.tyuse_write_code(&f.ty, &place, &ctx)?;
                    let _ = writeln!(out, "        {code}");
                }
            }
        }
        if def.is_record {
            let _ = writeln!(out, "        out.push(charset.encode(b'\\n'));");
        }
        let _ = writeln!(out, "        Ok(())");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    fn gen_struct_verify(
        &self,
        id: TypeId,
        members: &[MemberIr],
        out: &mut String,
    ) -> GenResult<()> {
        let def = self.schema.def(id);
        let mut ctx = self.param_ctx(id);
        for m in members {
            if let MemberIr::Field(f) = m {
                ctx.bind(
                    &f.name,
                    Operand::Place(format!("self.{}", field_name(&f.name)), self.tyuse_repr(&f.ty)),
                );
            }
        }
        let _ = writeln!(out, "    /// Re-checks all semantic constraints in memory.");
        let _ = writeln!(out, "    pub fn verify(&self{}) -> bool {{", self.params_sig(id));
        let _ = writeln!(out, "        let mut ok = true;");
        for m in members {
            if let MemberIr::Field(f) = m {
                if let Some(c) = &f.constraint {
                    let cond = self.compile_bool(c, &ctx)?;
                    let _ = writeln!(out, "        ok &= ({cond});");
                }
                let place = format!("(&self.{})", field_name(&f.name));
                if let Some(nested) = self.nested_verify_code(&f.ty, &place, &ctx)? {
                    let _ = writeln!(out, "        ok &= ({nested});");
                }
            }
        }
        if let Some(w) = &def.where_clause {
            let cond = self.compile_bool(w, &ctx)?;
            let _ = writeln!(out, "        ok &= ({cond});");
        }
        let _ = writeln!(out, "        ok");
        let _ = writeln!(out, "    }}\n");
        Ok(())
    }

    // ---- module entry points -------------------------------------------------

    /// Emits the dense observation-id table and the pre-interned metrics
    /// core constructor: `OBS_TYPES[id]` is the schema name of the type
    /// whose readers emit `observe_enter_id(id, ..)` — the table order is
    /// the type-emission order, so ids are stable for a given description.
    fn gen_obs_table(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "/// Schema type names in dense observation-id order: `OBS_TYPES[id]`\n\
             /// names the type whose readers emit `observe_enter_id(id, ..)`."
        );
        let _ = writeln!(out, "pub const OBS_TYPES: &[&str] = &[");
        for def in &self.schema.types {
            let _ = writeln!(out, "    {:?},", def.name);
        }
        let _ = writeln!(out, "];");
        let _ = writeln!(
            out,
            "\n/// A metrics core pre-interned with this module's types, in dense-id\n\
             /// order — attach with `Cursor::with_metrics` and the readers' ids\n\
             /// index its counter slabs directly (no name lookups on the hot path).\n\
             pub fn metrics_core() -> MetricsCore {{\n    \
                 MetricsCore::with_names(OBS_TYPES.iter().copied())\n\
             }}\n"
        );
    }

    /// Emits `name_table()`: the dense per-schema name interning the
    /// `NameId(i)` literals in the `to_arena` lowerings index into.
    fn gen_name_table(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "/// Interns every field/branch/variant name this module's `to_arena`\n\
             /// lowerings reference — `NameId(i)` in generated code names entry `i`."
        );
        let _ = writeln!(out, "pub fn name_table() -> NameTable {{");
        let _ = writeln!(out, "    let mut t = NameTable::new();");
        for n in &self.names {
            let _ = writeln!(out, "    t.intern({n:?});");
        }
        let _ = writeln!(out, "    t");
        let _ = writeln!(out, "}}\n");
    }

    fn gen_entry_points(&self, out: &mut String) -> GenResult<()> {
        let src = self.schema.source_def();
        if !src.params.is_empty() {
            return Ok(()); // parameterised sources have no standalone entry
        }
        let name = camel(&src.name);
        let src_id = self.schema.source();
        let lt = self.lt_args(src_id);
        // A free function, so it binds `'d` itself (unlike read methods,
        // whose `'d` comes from the surrounding impl).
        let (gen_lt, cur_lt) = if self.lt[src_id] { ("<'d>", "'d") } else { ("", "'_") };
        let _ = writeln!(
            out,
            "/// Parses the whole source ({}; the paper's single-call entry point).",
            src.name
        );
        let _ = writeln!(
            out,
            "pub fn parse_source{gen_lt}(cur: &mut Cursor<{cur_lt}>, mask: &Mask) -> ({name}{lt}, ParseDesc) {{"
        );
        let _ = writeln!(out, "    let (v, mut pd) = {name}::read(cur, mask);");
        let _ = writeln!(
            out,
            "    if cur.stopped() {{\n        \
                 let loc = Loc::at(cur.position());\n        \
                 pd.add_root_error(ErrorCode::BudgetExhausted, loc);\n        \
                 cur.observe_error(\"\", ErrorCode::BudgetExhausted, Some(loc));\n    \
             }} else if !cur.at_eof() {{\n        \
                 let loc = Loc::at(cur.position());\n        \
                 pd.add_error(ErrorCode::ExtraDataAtEof, loc);\n        \
                 cur.observe_error(\"\", ErrorCode::ExtraDataAtEof, Some(loc));\n    \
             }}"
        );
        let _ = writeln!(out, "    (v, pd)");
        let _ = writeln!(out, "}}");
        self.gen_parallel_entry(out);
        Ok(())
    }

    /// Emits the record-sharded parallel entry for the common
    /// `Psource Parray { elem[] }` shape (unparameterised, no separator or
    /// terminator, named element). Other source shapes simply get no
    /// parallel entry — callers fall back to [`parse_source`].
    fn gen_parallel_entry(&self, out: &mut String) {
        let src = self.schema.source_def();
        let TypeKind::Array { elem: TyUse::Named { id, args }, sep: None, term: None, ended: None, size: None } =
            &src.kind
        else {
            return;
        };
        if !args.is_empty() || !self.schema.def(*id).params.is_empty() {
            return;
        }
        let elt = camel(&self.schema.def(*id).name);
        let elt_lt = self.lt_args(*id);
        let _ = writeln!(
            out,
            "\n/// Parses the source's records on up to `jobs` worker threads\n\
             /// (record-sharded; byte-identical to the sequential record loop —\n\
             /// see `pc_parse_records_par`), returning them in source order with\n\
             /// the final error budget. `make` builds the cursor for a byte slice\n\
             /// exactly the way the caller would for [`parse_source`].\n\
             pub fn parse_records_par<'d, M>(\n    \
                 data: &'d [u8],\n    \
                 mask: &Mask,\n    \
                 jobs: usize,\n    \
                 make: M,\n\
             ) -> (Vec<({elt}{elt_lt}, ParseDesc)>, ErrorBudget)\n\
             where\n    \
                 M: Fn(&'d [u8]) -> Cursor<'d> + Sync,\n\
             {{\n    \
                 let elem_mask = mask.child(\"elt\");\n    \
                 pc_parse_records_par(data, jobs, make, |cur| {elt}::read(cur, &elem_mask))\n\
             }}\n\
             \n\
             /// Like [`parse_records_par`], but continuing from a committed\n\
             /// `ResumePoint` (global source coordinates — see\n\
             /// `pc_parse_records_resumed`): parses only the records from the\n\
             /// checkpoint on, with the error budget restored.\n\
             pub fn parse_records_resumed<'d, M>(\n    \
                 data: &'d [u8],\n    \
                 mask: &Mask,\n    \
                 resume: ResumePoint,\n    \
                 jobs: usize,\n    \
                 make: M,\n\
             ) -> (Vec<({elt}{elt_lt}, ParseDesc)>, ErrorBudget)\n\
             where\n    \
                 M: Fn(&'d [u8]) -> Cursor<'d> + Sync,\n\
             {{\n    \
                 let elem_mask = mask.child(\"elt\");\n    \
                 pc_parse_records_resumed(data, resume, jobs, make, |cur| {{\n        \
                     {elt}::read(cur, &elem_mask)\n    \
                 }})\n\
             }}"
        );
    }
}

/// One member of a proven fixed-width struct prefix (see
/// [`Gen::fixed_prefix`]); the width of every item is an exact constant
/// confirmed against the fact database.
enum FixedItem {
    /// A literal: raw bytes compared at a fixed offset.
    Lit(Vec<u8>),
    /// A `Pchar` field: one raw byte.
    Char { fname: String },
    /// A fixed-width unsigned decimal field, optionally wrapped in a
    /// constrained typedef (`wrap` is the wrapper's schema `TypeId` —
    /// which is also its dense observation id — and `pred_code` its
    /// compiled predicate over `pc_fp_{fname}`).
    FwUint {
        fname: String,
        width: u64,
        bits: u32,
        wrap: Option<TypeId>,
        pred_code: Option<String>,
    },
}

impl FixedItem {
    fn width(&self) -> u64 {
        match self {
            FixedItem::Lit(b) => b.len() as u64,
            FixedItem::Char { .. } => 1,
            FixedItem::FwUint { width, .. } => *width,
        }
    }
}

/// Renders a byte-string literal for ASCII text.
fn bytes_lit(s: &str) -> String {
    let mut out = String::from("b\"");
    for b in s.bytes() {
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\t' => out.push_str("\\t"),
            b'\r' => out.push_str("\\r"),
            0x20..=0x7E => out.push(b as char),
            other => out.push_str(&format!("\\x{other:02x}")),
        }
    }
    out.push('"');
    out
}
