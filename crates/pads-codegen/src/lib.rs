//! Code generation from PADS descriptions.
//!
//! The original PADS compiler (10k lines of SML on CKIT) emitted `.h`/`.c`
//! pairs implementing parsers, printers, verifiers, accumulators and more
//! (§4, §6 of the paper). This crate is its analogue for Rust:
//!
//! * [`generate_rust`] — emits a self-contained Rust module with native
//!   representation types and `read`/`write`/`verify` functions per
//!   described type, preserving the interpreter's mask and error-handling
//!   semantics (the "compile rather than interpret" performance decision
//!   of §1);
//! * [`expansion`] — measures the description-to-generated-code leverage
//!   ratio the paper reports for the Sirius description (68 lines → 1432 +
//!   6471 generated lines, §4).
//!
//! Generated modules for the bundled CLF and Sirius descriptions are
//! committed under `pads::generated`, compiled as part of the `pads` crate,
//! and kept in sync by a golden test plus the `regen` binary.

mod prelude;
mod rust_gen;

pub use prelude::PRELUDE;
pub use rust_gen::{generate_rust, CodegenError};

/// Source-expansion measurement (the §4 leverage metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expansion {
    /// Non-blank, non-comment lines in the description.
    pub description_lines: usize,
    /// Non-blank lines of generated Rust.
    pub generated_lines: usize,
}

impl Expansion {
    /// Generated lines per description line.
    pub fn ratio(&self) -> f64 {
        if self.description_lines == 0 {
            0.0
        } else {
            self.generated_lines as f64 / self.description_lines as f64
        }
    }
}

/// Computes the expansion ratio for a description and its generated module.
pub fn expansion(description: &str, generated: &str) -> Expansion {
    let description_lines = description
        .lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("/*") && !l.starts_with('*') && !l.starts_with("/-")
                && !l.starts_with("//")
        })
        .count();
    let generated_lines = generated.lines().filter(|l| !l.trim().is_empty()).count();
    Expansion { description_lines, generated_lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads::descriptions;

    #[test]
    fn generates_modules_for_the_paper_descriptions() {
        let clf = generate_rust(&descriptions::clf(), "CLF web server logs (Figure 4).")
            .expect("CLF generates");
        assert!(clf.contains("pub struct EntryT"));
        assert!(clf.contains("pub enum MethodT"));
        assert!(clf.contains("pub fn chkVersion") || clf.contains("pub fn chk_version")
            || clf.contains("pub fn chkversion"), "{}", &clf[..500]);
        let sirius = generate_rust(&descriptions::sirius(), "Sirius provisioning (Figure 5).")
            .expect("Sirius generates");
        assert!(sirius.contains("pub struct OrderHeaderT"));
        assert!(sirius.contains("pub struct EventSeq"));
        assert!(sirius.contains("ForallViolation"));
    }

    #[test]
    fn expansion_ratio_is_substantial() {
        // §4: 68-line Sirius description → 1432-line .h + 6471-line .c.
        // The exact numbers are C-specific; the *leverage* (dozens of
        // generated lines per description line) is the reproducible claim.
        let desc = descriptions::SIRIUS;
        let generated = generate_rust(&descriptions::sirius(), "Sirius").unwrap();
        let e = expansion(desc, &generated);
        assert!(e.description_lines > 30, "{e:?}");
        assert!(e.ratio() > 5.0, "expected substantial expansion, got {e:?}");
    }

    #[test]
    fn figure_6_api_surface_is_generated_for_entry_t() {
        // The generated library for Sirius entry_t exposes the Figure 6
        // function families: read (parse), write2io (write), verify.
        let sirius = generate_rust(&descriptions::sirius(), "Sirius").unwrap();
        let entry_impl = sirius
            .split("impl<'d> EntryT<'d> {")
            .nth(1)
            .expect("EntryT impl exists");
        let entry_impl = &entry_impl[..entry_impl.find("\n}\n").unwrap_or(entry_impl.len())];
        assert!(entry_impl.contains("pub fn read"));
        assert!(entry_impl.contains("pub fn write"));
        assert!(entry_impl.contains("pub fn verify"));
    }

    #[test]
    fn unsupported_constructs_are_reported() {
        let registry = pads_runtime::Registry::standard();
        let schema = pads_check::compile(
            "Pstruct t { Popt Popt Puint8 x; };",
            &registry,
        )
        .unwrap();
        let err = generate_rust(&schema, "t").unwrap_err();
        assert!(err.to_string().contains("nested Popt"));
    }
}
