use pads_runtime::Registry;

#[test]
fn nullable_regex_terminator_elides_guard() {
    let src = r#"
        Parray inner_t { Puint8[] : Pterm(Pre "a*"); };
        Psource Parray outer_t { inner_t[]; };
    "#;
    let schema = pads_check::compile(src, &Registry::standard()).expect("compiles");
    let module = pads_codegen::generate_rust(&schema, "test.pads").expect("generates");
    let outer = module
        .split("impl OuterT")
        .nth(1)
        .and_then(|s| s.split("impl ").next())
        .expect("OuterT impl present");
    println!(
        "outer guard present: {}, elided: {}",
        outer.contains("if cur.offset() == before"),
        outer.contains("zero-width guard elided")
    );
    assert!(
        outer.contains("if cur.offset() == before"),
        "outer array over inner_t (nullable regex terminator) must keep the guard"
    );
}
