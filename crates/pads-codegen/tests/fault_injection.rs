//! Fault-injected recovery: the adversarial harness for the panic-free
//! guarantee. Each description's clean corpus is run through a thousand
//! deterministic [`FaultPlan`] mutations (bit flips, byte deletions,
//! insertions, truncation) and both engines — the interpreting parser and
//! the generated parsers — must (a) never panic, (b) agree on the error
//! verdict, and (c) account for every byte of every record (consumed +
//! panic-skipped = record length). A second group of tests demonstrates
//! the three [`OnExhausted`] degradation modes of the error budget.

use pads::generated::{clf, mixed, sirius};
use pads::{descriptions, PadsParser, ParseOptions, Value};
use pads_runtime::{
    BaseMask, Cursor, ErrorCode, FaultPlan, Mask, OnExhausted, ParseDesc, ParseState, PdKind,
    RecoveryPolicy,
};

const SEEDS: u64 = 1000;

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

fn clean_clf() -> Vec<u8> {
    pads_gen::clf::generate(&pads_gen::ClfConfig { records: 15, ..Default::default() }).0
}

fn clean_sirius(records: usize, syntax_errors: usize) -> Vec<u8> {
    pads_gen::sirius::generate(&pads_gen::SiriusConfig {
        records,
        syntax_errors,
        sort_violations: 0,
        ..Default::default()
    })
    .0
}

fn clean_mixed() -> Vec<u8> {
    let schema = descriptions::mixed();
    let config = pads_gen::GenConfig { seed: 7, min_len: 0, max_len: 4, ..Default::default() }
        .with_override("code", pads_gen::FieldGen::UintRange(1000, 9999))
        .with_override("kind", pads_gen::FieldGen::UintRange(0, 2))
        .with_override("nvals", pads_gen::FieldGen::UintRange(0, 9));
    pads_gen::Generator::new(&schema, config).generate_records("rec_t", 15)
}

/// `(nerr, is_ok, state)` — the verdict both engines must agree on.
fn sig(pd: &ParseDesc) -> (u32, bool, ParseState) {
    (pd.nerr, pd.is_ok(), pd.state)
}

/// Runs `SEEDS` mutations of `clean` through both engines and cross-checks
/// the verdict and the number of materialised records. `gen_parse` returns
/// the generated side's `(record_count, pd)`.
fn fault_sweep(
    name: &str,
    schema: &pads_check::ir::Schema,
    clean: &[u8],
    expect_panic: bool,
    gen_parse: impl Fn(&mut Cursor<'_>, &Mask) -> (usize, ParseDesc),
) {
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(schema, &registry);
    let m = mask();
    let mut panicked = 0u32;
    for seed in 0..SEEDS {
        let data = FaultPlan::for_seed(seed).apply(clean);
        let (iv, ipd) = parser.parse_source(&data, &m);
        let mut cur = Cursor::new(&data);
        let (grecords, gpd) = gen_parse(&mut cur, &m);
        assert_eq!(
            sig(&ipd),
            sig(&gpd),
            "{name} seed {seed}: engines disagree on the verdict\n  interp: {ipd}\n  gen:    {gpd}"
        );
        let irecords = match iv {
            Value::Array(elts) => elts.len(),
            Value::Struct { ref fields } => fields
                .iter()
                .find_map(|(_, v)| match v {
                    Value::Array(elts) => Some(elts.len()),
                    _ => None,
                })
                .unwrap_or(0),
            _ => 0,
        };
        assert_eq!(
            irecords, grecords,
            "{name} seed {seed}: engines materialised different record counts"
        );
        if ipd.state == ParseState::Panic {
            panicked += 1;
        }
    }
    // The mutations are aggressive enough that panic-mode recovery actually
    // ran; a sweep that never panics is not exercising resynchronisation.
    // (Descriptions whose records consume to the record boundary regardless
    // of errors never leave bytes to skip, so the check is opt-in.)
    if expect_panic {
        assert!(panicked > 0, "{name}: no mutation triggered panic recovery");
    }
}

#[test]
fn clf_survives_one_thousand_fault_plans() {
    let schema = descriptions::clf();
    fault_sweep("clf", &schema, &clean_clf(), true, |cur, m| {
        let (v, pd) = clf::parse_source(cur, m);
        (v.0.len(), pd)
    });
}

#[test]
fn sirius_survives_one_thousand_fault_plans() {
    let schema = descriptions::sirius();
    fault_sweep("sirius", &schema, &clean_sirius(12, 0), false, |cur, m| {
        let (v, pd) = sirius::parse_source(cur, m);
        (v.es.0.len(), pd)
    });
}

#[test]
fn mixed_survives_one_thousand_fault_plans() {
    let schema = descriptions::mixed();
    fault_sweep("mixed", &schema, &clean_mixed(), true, |cur, m| {
        let (v, pd) = mixed::parse_source(cur, m);
        (v.0.len(), pd)
    });
}

/// Record-at-a-time byte accounting: every byte of the mutated source is
/// either consumed by a record parse or skipped by panic recovery, and the
/// descriptor of each panicked record reports the skipped span inside the
/// record's extent.
#[test]
fn fault_recovery_accounts_for_every_byte() {
    let schema = descriptions::clf();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let m = mask();
    let clean = clean_clf();
    for seed in 0..SEEDS {
        let data = FaultPlan::for_seed(seed).apply(&clean);
        let mut cur = parser.open(&data);
        let mut covered = 0usize;
        while !cur.at_eof() {
            let before = cur.position().offset;
            let (_, pd) = parser.parse_named(&mut cur, "entry_t", &[], &m);
            let after = cur.position().offset;
            assert!(
                after > before,
                "seed {seed}: record parse made no progress at offset {before}"
            );
            covered += after - before;
            if pd.state == ParseState::Panic {
                let skip = pd
                    .errors()
                    .into_iter()
                    .find(|(_, code, _)| *code == ErrorCode::PanicSkipped);
                let (_, _, loc) = skip.unwrap_or_else(|| {
                    panic!("seed {seed}: panicked record has no PanicSkipped span: {pd}")
                });
                let loc = loc.unwrap_or_else(|| panic!("seed {seed}: PanicSkipped without loc"));
                assert!(
                    before <= loc.begin.offset && loc.end.offset <= after,
                    "seed {seed}: skipped span {}..{} outside record {before}..{after}",
                    loc.begin.offset,
                    loc.end.offset
                );
                assert!(loc.end.offset > loc.begin.offset, "seed {seed}: empty panic skip");
            }
        }
        assert_eq!(
            covered,
            data.len(),
            "seed {seed}: record extents do not tile the source"
        );
    }
}

// ---- error budgets and graceful degradation ---------------------------------

/// A Sirius corpus where a known number of records carry syntax errors.
fn dirty_sirius() -> Vec<u8> {
    clean_sirius(40, 10)
}

fn interp_with(policy: RecoveryPolicy) -> ParseOptions {
    ParseOptions { policy, ..Default::default() }
}

/// `OnExhausted::Stop`: parsing halts at the budget and says so.
#[test]
fn budget_stop_halts_both_engines_identically() {
    let data = dirty_sirius();
    let policy = RecoveryPolicy::unlimited().with_max_errs(3).with_on_exhausted(OnExhausted::Stop);
    let schema = descriptions::sirius();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry).with_options(interp_with(policy));
    let (iv, ipd) = parser.parse_source(&data, &mask());
    let mut cur = Cursor::new(&data).with_policy(policy);
    let (gv, gpd) = sirius::parse_source(&mut cur, &mask());
    assert!(cur.stopped(), "budget never tripped");
    // Both report the exhaustion and stop short of the full corpus.
    for pd in [&ipd, &gpd] {
        assert!(
            pd.errors().iter().any(|(_, c, _)| *c == ErrorCode::BudgetExhausted),
            "missing BudgetExhausted: {pd}"
        );
    }
    assert!(gv.es.0.len() < 40, "stop mode parsed the whole corpus");
    let irecords = iv.at_path("es").and_then(|v| v.len()).unwrap_or(0);
    assert_eq!(irecords, gv.es.0.len());
    assert_eq!(sig(&ipd), sig(&gpd));
}

/// `OnExhausted::SkipRecord`: once the budget is spent, remaining records
/// are skipped wholesale and marked `BudgetExhausted`/`Panic`, but every
/// record still materialises (with its default value).
#[test]
fn budget_skip_record_degrades_gracefully() {
    let data = dirty_sirius();
    let policy = RecoveryPolicy::unlimited().with_max_errs(3).with_on_exhausted(OnExhausted::SkipRecord);
    let schema = descriptions::sirius();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry).with_options(interp_with(policy));
    let (_, ipd) = parser.parse_source(&data, &mask());
    let mut cur = Cursor::new(&data).with_policy(policy);
    let (gv, gpd) = sirius::parse_source(&mut cur, &mask());
    assert_eq!(gv.es.0.len(), 40, "skip-record mode must keep consuming records");
    assert_eq!(sig(&ipd), sig(&gpd));
    fn skipped_records(pd: &ParseDesc) -> usize {
        fn go(pd: &ParseDesc, out: &mut usize) {
            if pd.err_code == ErrorCode::BudgetExhausted && pd.state == ParseState::Panic {
                *out += 1;
            }
            match &pd.kind {
                PdKind::Struct { fields } => fields.iter().for_each(|(_, f)| go(f, out)),
                PdKind::Array { elts, .. } => elts.iter().for_each(|e| go(e, out)),
                PdKind::Union { pd, .. } => {
                    if let Some(p) = pd {
                        go(p, out);
                    }
                }
                PdKind::Typedef { inner } => {
                    if let Some(i) = inner {
                        go(i, out);
                    }
                }
                PdKind::Opt { inner } => {
                    if let Some(i) = inner {
                        go(i, out);
                    }
                }
                PdKind::Base => {}
            }
        }
        let mut out = 0;
        go(pd, &mut out);
        out
    }
    let iskipped = skipped_records(&ipd);
    assert!(iskipped > 0, "budget never forced a record skip");
    assert_eq!(iskipped, skipped_records(&gpd));
}

/// `OnExhausted::BestEffort`: parsing continues but per-record descriptor
/// detail is dropped — aggregate counts stay truthful, the tree flattens.
#[test]
fn budget_best_effort_flattens_detail() {
    let data = dirty_sirius();
    let policy = RecoveryPolicy::unlimited().with_max_errs(3).with_on_exhausted(OnExhausted::BestEffort);
    let schema = descriptions::sirius();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry).with_options(interp_with(policy));
    let (_, ipd) = parser.parse_source(&data, &mask());
    let mut cur = Cursor::new(&data).with_policy(policy);
    let (gv, gpd) = sirius::parse_source(&mut cur, &mask());
    assert_eq!(gv.es.0.len(), 40, "best-effort mode must parse the whole corpus");
    assert_eq!(sig(&ipd), sig(&gpd));
    // After exhaustion, erroneous records carry a flat Base descriptor with
    // a real (promoted) error code instead of the full tree.
    fn flat_error_records(pd: &ParseDesc) -> usize {
        match &pd.kind {
            PdKind::Struct { fields } => fields.iter().map(|(_, f)| flat_error_records(f)).sum(),
            PdKind::Array { elts, .. } => elts
                .iter()
                .filter(|e| e.nerr > 0 && e.kind == PdKind::Base)
                .count(),
            _ => 0,
        }
    }
    let iflat = flat_error_records(&ipd);
    assert!(iflat > 0, "best-effort mode kept full descriptor detail");
    assert_eq!(iflat, flat_error_records(&gpd));
}

/// A per-record error cap truncates detail for noisy records even when the
/// global budget is unlimited.
#[test]
fn per_record_error_cap_truncates_detail() {
    let data = dirty_sirius();
    let policy = RecoveryPolicy::unlimited().with_max_record_errs(0);
    let schema = descriptions::sirius();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry).with_options(interp_with(policy));
    let (_, capped) = parser.parse_source(&data, &mask());
    let (_, full) = PadsParser::new(&schema, &registry).parse_source(&data, &mask());
    // Same aggregate verdict, less detail: every record over the cap is a
    // flat Base descriptor in the capped parse but a full tree in the other.
    assert_eq!(capped.nerr, full.nerr);
    fn record_elts(pd: &ParseDesc, pred: impl Fn(&ParseDesc) -> bool + Copy) -> usize {
        match &pd.kind {
            PdKind::Struct { fields } => {
                fields.iter().map(|(_, f)| record_elts(f, pred)).sum()
            }
            PdKind::Array { elts, .. } => {
                elts.iter().filter(|e| e.nerr > 0 && pred(e)).count()
            }
            _ => 0,
        }
    }
    let flattened = record_elts(&capped, |e| e.kind == PdKind::Base);
    assert!(flattened > 0, "per-record cap did not truncate descriptor detail");
    assert_eq!(
        flattened,
        record_elts(&full, |e| e.kind != PdKind::Base),
        "cap must flatten exactly the records that carry errors"
    );
}
