//! Compiled-vs-interpreted equivalence: the generated Rust parsers must
//! agree with the interpreting parser on values, error counts, and error
//! positions over both paper datasets (clean and injected-error data).

use pads::generated::{clf, sirius};
use pads::{descriptions, PadsParser, Value};
use pads_runtime::{BaseMask, Cursor, Mask, ParseDesc};

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

/// Summarises a pd for comparison: (nerr, is_ok, state as str).
fn pd_sig(pd: &ParseDesc) -> (u32, bool) {
    (pd.nerr, pd.is_ok())
}

#[test]
fn sirius_generated_parser_matches_interpreter_on_clean_data() {
    let config = pads_gen::SiriusConfig {
        records: 300,
        syntax_errors: 0,
        sort_violations: 0,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, _) = pads_gen::sirius::generate(&config);
    // Interpreted.
    let schema = descriptions::sirius();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let (iv, ipd) = parser.parse_source(&data, &mask());
    assert!(ipd.is_ok(), "{:?}", ipd.errors().first());
    // Compiled.
    let mut cur = Cursor::new(&data);
    let (gv, gpd) = sirius::parse_source(&mut cur, &mask());
    assert!(gpd.is_ok(), "{:?}", gpd.errors().first());
    assert_eq!(pd_sig(&ipd), pd_sig(&gpd));
    // Cross-check values record by record.
    let entries = iv.at_path("es").unwrap();
    assert_eq!(entries.len(), Some(gv.es.0.len()));
    for (i, ge) in gv.es.0.iter().enumerate() {
        let ie = entries.index(i).unwrap();
        assert_eq!(
            ie.at_path("header.order_num").and_then(Value::as_u64),
            Some(ge.header.order_num as u64),
            "record {i}"
        );
        assert_eq!(
            ie.at_path("events").unwrap().len(),
            Some(ge.events.0.len()),
            "record {i}"
        );
        for (j, gev) in ge.events.0.iter().enumerate() {
            let iev = ie.at_path(&format!("events.[{j}]")).unwrap();
            assert_eq!(iev.at_path("state").and_then(Value::as_str), Some(gev.state.as_str()));
            assert_eq!(
                iev.at_path("tstamp").and_then(Value::as_u64),
                Some(gev.tstamp as u64)
            );
        }
        assert!(ge.verify(), "record {i} verifies");
    }
}

#[test]
fn sirius_generated_parser_matches_interpreter_on_dirty_data() {
    let config = pads_gen::SiriusConfig {
        records: 400,
        syntax_errors: 7,
        sort_violations: 2,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, stats) = pads_gen::sirius::generate(&config);
    let schema = descriptions::sirius();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let (_, ipd) = parser.parse_source(&data, &mask());
    let mut cur = Cursor::new(&data);
    let (gv, gpd) = sirius::parse_source(&mut cur, &mask());
    // Same records materialise, same overall verdict.
    assert_eq!(gv.es.0.len(), 400);
    assert_eq!(ipd.is_ok(), gpd.is_ok());
    // Count bad elements on the generated side from the pd tree.
    fn bad_elements(pd: &ParseDesc) -> u32 {
        fn arrays(pd: &ParseDesc, out: &mut u32) {
            match &pd.kind {
                pads_runtime::PdKind::Struct { fields } => {
                    for (_, f) in fields {
                        arrays(f, out);
                    }
                }
                pads_runtime::PdKind::Array { neerr, .. } => *out += neerr,
                _ => {}
            }
        }
        let mut out = 0;
        arrays(pd, &mut out);
        out
    }
    assert_eq!(
        bad_elements(&gpd),
        (stats.syntax_error_records.len() + stats.sort_violation_records.len()) as u32
    );
    assert_eq!(bad_elements(&gpd), bad_elements(&ipd));
}

#[test]
fn clf_generated_parser_matches_interpreter() {
    let config = pads_gen::ClfConfig { records: 400, ..pads_gen::ClfConfig::default() };
    let (data, stats) = pads_gen::clf::generate(&config);
    let schema = descriptions::clf();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let mask = mask();
    // Record-at-a-time on both sides.
    let mut interp_bad = 0usize;
    let mut lengths_i: Vec<u64> = Vec::new();
    for (v, pd) in parser.records(&data, "entry_t", &mask) {
        if pd.is_ok() {
            lengths_i.push(v.at_path("length").and_then(Value::as_u64).unwrap());
        } else {
            interp_bad += 1;
        }
    }
    let mut gen_bad = 0usize;
    let mut lengths_g: Vec<u64> = Vec::new();
    let mut cur = Cursor::new(&data);
    while !cur.at_eof() {
        let (v, pd) = clf::EntryT::read(&mut cur, &mask);
        if pd.is_ok() {
            lengths_g.push(v.length as u64);
            assert!(v.verify());
        } else {
            gen_bad += 1;
        }
    }
    assert_eq!(interp_bad, stats.dash_lengths);
    assert_eq!(gen_bad, interp_bad);
    assert_eq!(lengths_i, lengths_g);
}

#[test]
fn clf_generated_parser_handles_figure_2_records() {
    let data = b"207.136.97.49 - - [15/Oct/1997:18:46:51 -0700] \"GET /tk/p.txt HTTP/1.0\" 200 30\ntj62.aol.com - - [16/Oct/1997:14:32:22 -0700] \"POST /scpt/dd@grp.org/confirm HTTP/1.0\" 200 941\n";
    let mut cur = Cursor::new(data);
    let m = mask();
    let (e1, pd1) = clf::EntryT::read(&mut cur, &m);
    assert!(pd1.is_ok(), "{:?}", pd1.errors());
    assert!(matches!(e1.client, clf::ClientT::Ip([207, 136, 97, 49])));
    assert!(matches!(e1.request.meth, clf::MethodT::GET));
    assert_eq!(e1.response.0, 200);
    assert_eq!(e1.length, 30);
    let (e2, pd2) = clf::EntryT::read(&mut cur, &m);
    assert!(pd2.is_ok());
    assert!(matches!(&e2.client, clf::ClientT::Host(h) if h == "tj62.aol.com"));
    assert_eq!(e2.length, 941);
    assert!(cur.at_eof());
    // Write-back round trip through the generated writer.
    let mut out = Vec::new();
    e1.write(&mut out, pads_runtime::Charset::Ascii, pads_runtime::Endian::Big).unwrap();
    e2.write(&mut out, pads_runtime::Charset::Ascii, pads_runtime::Endian::Big).unwrap();
    assert_eq!(out.as_slice(), &data[..]);
}

#[test]
fn committed_generated_modules_are_in_sync_with_the_generator() {
    let clf_src = pads_codegen::generate_rust(
        &descriptions::clf(),
        "Generated parser for the CLF web-server-log description (Figure 4).",
    )
    .unwrap();
    let sirius_src = pads_codegen::generate_rust(
        &descriptions::sirius(),
        "Generated parser for the Sirius provisioning description (Figure 5).",
    )
    .unwrap();
    let mixed_src = pads_codegen::generate_rust(
        &descriptions::mixed(),
        "Generated parser for the kitchen-sink `mixed` description.",
    )
    .unwrap();
    let committed_clf = include_str!("../../pads-core/src/generated/clf.rs");
    let committed_sirius = include_str!("../../pads-core/src/generated/sirius.rs");
    let committed_mixed = include_str!("../../pads-core/src/generated/mixed.rs");
    assert_eq!(clf_src, committed_clf, "run `cargo run -p pads-codegen --bin regen`");
    assert_eq!(sirius_src, committed_sirius, "run `cargo run -p pads-codegen --bin regen`");
    assert_eq!(mixed_src, committed_mixed, "run `cargo run -p pads-codegen --bin regen`");
}

#[test]
fn mixed_kitchen_sink_generated_parser_matches_interpreter() {
    use pads::generated::mixed as gen_mixed;
    use pads_gen::{FieldGen, GenConfig, Generator};

    let registry = pads_runtime::Registry::standard();
    let schema = descriptions::mixed();
    // Generate constraint-satisfying data (the generic generator honours
    // the Pswitch selector; constraints come from the overrides).
    let config = GenConfig { seed: 77, min_len: 0, max_len: 4, ..GenConfig::default() }
        .with_override("code", FieldGen::UintRange(1000, 9999))
        .with_override("kind", FieldGen::UintRange(0, 2))
        .with_override("nvals", FieldGen::UintRange(0, 9));
    let mut g = Generator::new(&schema, config);
    let data = g.generate_records("rec_t", 250);

    let parser = PadsParser::new(&schema, &registry);
    let (iv, ipd) = parser.parse_source(&data, &mask());
    assert!(ipd.is_ok(), "interpreter: {:?}", ipd.errors().first());

    let mut cur = Cursor::new(&data);
    let (gv, gpd) = gen_mixed::parse_source(&mut cur, &mask());
    assert!(gpd.is_ok(), "generated: {:?}", gpd.errors().first());

    assert_eq!(iv.len(), Some(gv.0.len()));
    for (i, ge) in gv.0.iter().enumerate() {
        let ie = iv.index(i).unwrap();
        assert_eq!(
            ie.at_path("code").and_then(Value::as_u64),
            Some(ge.code.0 as u64),
            "record {i}: code"
        );
        // Switched union branch agrees with the kind selector.
        let kind = ie.at_path("kind").and_then(Value::as_u64).unwrap();
        match (&ge.body, kind) {
            (gen_mixed::BodyT::Num(n), 0) => {
                assert_eq!(ie.at_path("body.num").and_then(Value::as_u64), Some(*n as u64));
            }
            (gen_mixed::BodyT::Text(t), 1) => {
                assert_eq!(ie.at_path("body.text").and_then(Value::as_str), Some(t.as_str()));
            }
            (gen_mixed::BodyT::Skip(()), 2) => {}
            (b, k) => panic!("record {i}: branch {b:?} vs kind {k}"),
        }
        // Optional parameterised pair.
        match (&ge.extra, ie.at_path("extra")) {
            (Some(p), Some(v)) => {
                assert_eq!(v.at_path("key").and_then(Value::as_str), Some(p.key.as_str()));
                let val = v.at_path("val").and_then(|x| match x {
                    Value::Prim(pads::Prim::Float(f)) => Some(*f),
                    _ => None,
                });
                assert_eq!(val, Some(p.val), "record {i}: pair value");
            }
            (None, Some(Value::Opt(None))) => {}
            other => panic!("record {i}: extra mismatch {other:?}"),
        }
        // Parameterised array length matches the nvals field.
        assert_eq!(
            ie.at_path("vals").and_then(Value::len),
            Some(ge.vals.0.len()),
            "record {i}: vals"
        );
        assert_eq!(ge.nvals as usize, ge.vals.0.len());
        assert!(ge.verify(), "record {i} verifies");
    }
}

#[test]
fn mixed_constraint_violations_agree() {
    use pads::generated::mixed as gen_mixed;
    // code out of range + kind out of range + too many vals.
    let data = b"0042|LOW|0|7||0|\n5555|MED|9|x|abc=1.5|1|3\n";
    let registry = pads_runtime::Registry::standard();
    let schema = descriptions::mixed();
    let parser = PadsParser::new(&schema, &registry);
    let (_, ipd) = parser.parse_source(data, &mask());
    let mut cur = Cursor::new(data);
    let (_, gpd) = gen_mixed::parse_source(&mut cur, &mask());
    assert!(!ipd.is_ok() && !gpd.is_ok());
    // Same per-record bad sets.
    fn bad_records(pd: &ParseDesc) -> Vec<usize> {
        match &pd.kind {
            pads_runtime::PdKind::Array { elts, .. } => elts
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.is_ok())
                .map(|(i, _)| i)
                .collect(),
            _ => Vec::new(),
        }
    }
    assert_eq!(bad_records(&ipd), bad_records(&gpd));
    assert!(!bad_records(&ipd).is_empty());
}

#[test]
fn pended_arrays_agree_between_engines() {
    use pads::generated::mixed::Until0T;
    let schema = descriptions::mixed();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    for data in [&b"5,3,0,9"[..], b"0", b"7,7,7,0"] {
        let mut icur = parser.open(data);
        let (iv, ipd) = parser.parse_named(&mut icur, "until0_t", &[], &mask());
        let mut gcur = Cursor::new(data);
        let (gv, gpd) = Until0T::read(&mut gcur, &mask());
        assert_eq!(ipd.is_ok(), gpd.is_ok(), "{data:?}");
        assert_eq!(iv.len(), Some(gv.0.len()), "{data:?}");
        assert_eq!(icur.offset(), gcur.offset(), "both stop at the same place");
        // The sequence always ends with the 0 sentinel.
        assert_eq!(gv.0.last(), Some(&0u32), "{data:?}");
    }
}

#[test]
fn mixed_generated_write_reparses_to_the_same_representation() {
    use pads::generated::mixed as gen_mixed;
    use pads_gen::{FieldGen, GenConfig, Generator};
    let schema = descriptions::mixed();
    let config = GenConfig { seed: 909, min_len: 0, max_len: 3, ..GenConfig::default() }
        .with_override("code", FieldGen::UintRange(1000, 9999))
        .with_override("kind", FieldGen::UintRange(0, 2))
        .with_override("nvals", FieldGen::UintRange(0, 9));
    let mut g = Generator::new(&schema, config);
    let data = g.generate_records("rec_t", 120);
    let mut cur = Cursor::new(&data);
    let (v1, pd1) = gen_mixed::parse_source(&mut cur, &mask());
    assert!(pd1.is_ok(), "{:?}", pd1.errors().first());
    // Write with the generated writer, reparse, compare representations.
    // (Byte identity is not required: float text canonicalises.)
    let mut out = Vec::new();
    for rec in &v1.0 {
        rec.write(&mut out, pads_runtime::Charset::Ascii, pads_runtime::Endian::Big)
            .expect("clean records write");
    }
    let mut cur = Cursor::new(&out);
    let (v2, pd2) = gen_mixed::parse_source(&mut cur, &mask());
    assert!(pd2.is_ok(), "{:?}", pd2.errors().first());
    assert_eq!(v1, v2);
}
