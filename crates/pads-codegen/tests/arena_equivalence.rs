//! Arena-lowering equivalence: the `to_arena` methods emitted into the
//! generated modules must lower typed values into [`ValueArena`] such
//! that converting back ([`pads::to_value`]) reproduces exactly the
//! owned [`Value`] tree the interpreter builds for the same input — and
//! the lowering itself must keep borrowed string leaves borrowed (no
//! text is copied into the arena's spill heap on the ASCII fast path).

use pads::generated::{clf, sirius};
use pads::{descriptions, to_value, PadsParser, RecordBatch, Value};
use pads_runtime::{BaseMask, Cursor, Mask, ValueArena};

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

#[test]
fn sirius_to_arena_round_trips_to_the_interpreter_source_value() {
    let config = pads_gen::SiriusConfig {
        records: 300,
        syntax_errors: 0,
        sort_violations: 0,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, _) = pads_gen::sirius::generate(&config);
    let schema = descriptions::sirius();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let (iv, ipd) = parser.parse_source(&data, &mask());
    assert!(ipd.is_ok(), "{:?}", ipd.errors().first());

    let mut cur = Cursor::new(&data);
    let (gv, gpd) = sirius::parse_source(&mut cur, &mask());
    assert!(gpd.is_ok(), "{:?}", gpd.errors().first());

    let names = sirius::name_table();
    let mut arena = ValueArena::new();
    let h = gv.to_arena(&mut arena);
    assert_eq!(to_value(arena.get(h), &names), iv);
}

#[test]
fn clf_to_arena_round_trips_record_by_record() {
    let config = pads_gen::ClfConfig { records: 400, ..pads_gen::ClfConfig::default() };
    let (data, _) = pads_gen::clf::generate(&config);
    let schema = descriptions::clf();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let m = mask();
    let interp: Vec<(Value, bool)> =
        parser.records(&data, "entry_t", &m).map(|(v, pd)| (v, pd.is_ok())).collect();

    let names = clf::name_table();
    let mut arena = ValueArena::new();
    let mut cur = Cursor::new(&data);
    let mut i = 0usize;
    while !cur.at_eof() {
        let (gv, gpd) = clf::EntryT::read(&mut cur, &m);
        let (iv, iok) = &interp[i];
        assert_eq!(gpd.is_ok(), *iok, "record {i}");
        if *iok {
            // Error records materialise engine-specific defaults; clean
            // records must agree exactly through the arena round trip.
            arena.reset();
            let h = gv.to_arena(&mut arena);
            assert_eq!(to_value(arena.get(h), &names), *iv, "record {i}");
        }
        i += 1;
    }
    assert_eq!(i, interp.len());
}

#[test]
fn to_arena_keeps_ascii_string_leaves_borrowed() {
    let config = pads_gen::SiriusConfig {
        records: 5,
        syntax_errors: 0,
        sort_violations: 0,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, _) = pads_gen::sirius::generate(&config);
    let mut cur = Cursor::new(&data);
    let (gv, gpd) = sirius::parse_source(&mut cur, &mask());
    assert!(gpd.is_ok());

    let names = sirius::name_table();
    let mut arena = ValueArena::new();
    let h = gv.to_arena(&mut arena);
    let entry = arena.get(h).field("es", &names).unwrap().index(0).unwrap();
    let order_type = entry
        .field("header", &names)
        .unwrap()
        .field("order_type", &names)
        .unwrap()
        .as_str()
        .unwrap();
    // The leaf's bytes live inside the input buffer, not in the arena.
    let range = data.as_ptr_range();
    let p = order_type.as_ptr();
    assert!(range.contains(&p), "string leaf was copied instead of borrowed");
}

#[test]
fn record_batch_rows_agree_between_owned_and_generated_arena_producers() {
    let config = pads_gen::SiriusConfig {
        records: 200,
        syntax_errors: 0,
        sort_violations: 0,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, _) = pads_gen::sirius::generate(&config);
    let schema = descriptions::sirius();
    let registry = pads_runtime::Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let m = mask();

    // Owned producer: interpreter values pushed as trees.
    let mut owned = RecordBatch::new();
    for (v, pd) in parser.records(&data, "entry_t", &m) {
        owned.push(&v, &pd);
    }

    // Arena producer: generated typed values lowered per record, with the
    // arena reset between records (the batch copies what it keeps).
    let names = sirius::name_table();
    let mut arena = ValueArena::new();
    let mut batch = RecordBatch::new();
    let mut cur = Cursor::new(&data);
    while !cur.at_eof() {
        let (gv, gpd) = sirius::EntryT::read(&mut cur, &m);
        arena.reset();
        let h = gv.to_arena(&mut arena);
        batch.push_arena(arena.get(h), &names, &gpd);
    }

    assert_eq!(owned.len(), batch.len());
    for i in 0..owned.len() {
        assert_eq!(owned.row(i), batch.row(i), "row {i}");
    }
    assert_eq!(owned.error_rows(), batch.error_rows());
}
