//! Observer-stream equivalence: both engines — the interpreting parser and
//! the generated modules — must emit *identical* event streams for the same
//! input, because record, error, and recovery events come from the shared
//! cursor accounting path and type enter/exit pairs bracket the same named
//! types. Also pins the satellite guarantees: recovery events mirror the
//! `ErrorBudget` counters exactly, under both degradation modes and the
//! 1000-seed fault harness from PR 1.

use std::cell::RefCell;
use std::rc::Rc;

use pads::generated::{clf, mixed, sirius};
use pads::{descriptions, PadsParser, ParseOptions};
use pads_observe::{MetricsSink, ObsHandle, Observer};
use pads_runtime::{
    BaseMask, Cursor, ErrorCode, FaultPlan, Loc, Mask, OnExhausted, ParseDesc, Pos,
    RecoveryEvent, RecoveryPolicy,
};

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

/// Records every event verbatim, as comparable strings.
#[derive(Default)]
struct EventLog {
    events: Vec<String>,
    panic_skip_bytes: u64,
    skip_records: u64,
}

impl Observer for EventLog {
    fn type_enter(&mut self, name: &str, pos: Pos) {
        self.events.push(format!("enter {name} @{}", pos.offset));
    }
    fn type_exit(&mut self, name: &str, start: Pos, end: Pos, pd: &ParseDesc) {
        self.events.push(format!(
            "exit {name} [{}..{}) nerr={} ok={}",
            start.offset,
            end.offset,
            pd.nerr,
            pd.is_ok()
        ));
    }
    fn error(&mut self, path: &str, code: ErrorCode, loc: Option<Loc>) {
        let at = loc.map(|l| format!("{}..{}", l.begin.offset, l.end.offset));
        self.events.push(format!("error {path} {} @{at:?}", code.name()));
    }
    fn recovery(&mut self, event: RecoveryEvent, pos: Pos) {
        match event {
            RecoveryEvent::PanicSkip { bytes } => self.panic_skip_bytes += bytes,
            RecoveryEvent::SkipRecord => self.skip_records += 1,
            RecoveryEvent::BudgetExhausted { .. } => {}
        }
        self.events.push(format!("recovery {event:?} @{}", pos.offset));
    }
    fn record(&mut self, index: usize, span: Loc, nerr: u32) {
        self.events.push(format!(
            "record {index} [{}..{}) nerr={nerr}",
            span.begin.offset, span.end.offset
        ));
    }
}

/// Parses `data` with the interpreter under `policy` and returns the log.
fn interp_events(
    schema: &pads_check::ir::Schema,
    data: &[u8],
    policy: RecoveryPolicy,
) -> EventLog {
    let registry = pads_runtime::Registry::standard();
    let sink: Rc<RefCell<EventLog>> = Rc::new(RefCell::new(EventLog::default()));
    let parser = PadsParser::new(schema, &registry)
        .with_options(ParseOptions { policy, ..Default::default() })
        .with_observer(ObsHandle::from_rc(sink.clone()));
    let _ = parser.parse_source(data, &mask());
    drop(parser);
    Rc::try_unwrap(sink).map(RefCell::into_inner).unwrap_or_default()
}

/// Parses `data` with a generated `parse_source` and returns the log plus
/// the cursor's final budget (for counter cross-checks).
fn gen_events(
    parse: impl Fn(&mut Cursor<'_>, &Mask) -> ParseDesc,
    data: &[u8],
    policy: RecoveryPolicy,
) -> (EventLog, pads_runtime::ErrorBudget) {
    let sink: Rc<RefCell<EventLog>> = Rc::new(RefCell::new(EventLog::default()));
    let mut cur = Cursor::new(data)
        .with_policy(policy)
        .with_observer(ObsHandle::from_rc(sink.clone()));
    let _ = parse(&mut cur, &mask());
    let budget = cur.budget();
    drop(cur);
    (Rc::try_unwrap(sink).map(RefCell::into_inner).unwrap_or_default(), budget)
}

fn assert_same_stream(name: &str, interp: &EventLog, gen: &EventLog) {
    if interp.events != gen.events {
        for (i, (a, b)) in interp.events.iter().zip(&gen.events).enumerate() {
            assert_eq!(a, b, "{name}: event {i} diverges");
        }
        panic!(
            "{name}: stream lengths differ (interp {} vs gen {})",
            interp.events.len(),
            gen.events.len()
        );
    }
    assert!(!interp.events.is_empty(), "{name}: no events observed");
}

#[test]
fn torture_corpora_produce_identical_event_streams() {
    let cases: [(&str, &[u8], fn(&mut Cursor<'_>, &Mask) -> ParseDesc); 3] = [
        ("clf", include_bytes!("../../../tests/data/torture_clf.log"), |cur, m| {
            clf::parse_source(cur, m).1
        }),
        ("sirius", include_bytes!("../../../tests/data/torture_sirius.txt"), |cur, m| {
            sirius::parse_source(cur, m).1
        }),
        ("mixed", include_bytes!("../../../tests/data/torture_mixed.txt"), |cur, m| {
            mixed::parse_source(cur, m).1
        }),
    ];
    let schemas =
        [descriptions::clf(), descriptions::sirius(), descriptions::mixed()];
    for ((name, data, parse), schema) in cases.into_iter().zip(&schemas) {
        let policy = RecoveryPolicy::unlimited();
        let interp = interp_events(schema, data, policy);
        let (gen, _) = gen_events(parse, data, policy);
        assert_same_stream(name, &interp, &gen);
    }
}

/// A Sirius corpus with a known number of dirty records (as in the PR-1
/// budget tests).
fn dirty_sirius() -> Vec<u8> {
    pads_gen::sirius::generate(&pads_gen::SiriusConfig {
        records: 40,
        syntax_errors: 10,
        sort_violations: 0,
        ..Default::default()
    })
    .0
}

#[test]
fn skip_record_mode_emits_matching_recovery_events() {
    let data = dirty_sirius();
    let policy = RecoveryPolicy::unlimited()
        .with_max_errs(3)
        .with_on_exhausted(OnExhausted::SkipRecord);
    let schema = descriptions::sirius();
    let interp = interp_events(&schema, &data, policy);
    let (gen, budget) = gen_events(|c, m| sirius::parse_source(c, m).1, &data, policy);
    assert_same_stream("sirius/skip-record", &interp, &gen);
    // Every budget-driven record skip produced exactly one SkipRecord event,
    // and the exhaustion transition itself was announced once.
    assert!(budget.skipped_records > 0, "budget never forced a skip");
    assert_eq!(gen.skip_records, budget.skipped_records);
    let exhausted = gen
        .events
        .iter()
        .filter(|e| e.starts_with("recovery BudgetExhausted"))
        .count();
    assert_eq!(exhausted, 1, "exhaustion transition must fire exactly once");
    // The metrics sink aggregates the same stream into the same counters.
    let sink: Rc<RefCell<MetricsSink>> = Rc::new(RefCell::new(MetricsSink::new()));
    let mut cur = Cursor::new(&data)
        .with_policy(policy)
        .with_observer(ObsHandle::from_rc(sink.clone()));
    let _ = sirius::parse_source(&mut cur, &mask());
    let m = sink.borrow();
    assert_eq!(m.records_skipped(), budget.skipped_records);
    assert_eq!(m.records(), 40 + 1); // 40 entries + the header record
}

#[test]
fn best_effort_mode_emits_matching_recovery_events() {
    let data = dirty_sirius();
    let policy = RecoveryPolicy::unlimited()
        .with_max_errs(3)
        .with_on_exhausted(OnExhausted::BestEffort);
    let schema = descriptions::sirius();
    let interp = interp_events(&schema, &data, policy);
    let (gen, budget) = gen_events(|c, m| sirius::parse_source(c, m).1, &data, policy);
    assert_same_stream("sirius/best-effort", &interp, &gen);
    // Best-effort never skips records wholesale; it only flattens detail.
    assert_eq!(gen.skip_records, 0);
    assert_eq!(budget.skipped_records, 0);
    assert!(
        gen.events
            .iter()
            .any(|e| e.starts_with("recovery BudgetExhausted { mode: BestEffort }")),
        "exhaustion under BestEffort must be announced"
    );
}

/// The 1000-seed fault harness from PR 1, with observers attached: both
/// engines still agree event-for-event, and the recovery events account for
/// exactly the bytes the budget says panic mode skipped.
#[test]
fn fault_harness_event_streams_agree_and_match_byte_accounting() {
    let clean = pads_gen::clf::generate(&pads_gen::ClfConfig {
        records: 15,
        ..Default::default()
    })
    .0;
    let schema = descriptions::clf();
    let policy = RecoveryPolicy::unlimited();
    let mut panic_seeds = 0u32;
    for seed in 0..1000 {
        let data = FaultPlan::for_seed(seed).apply(&clean);
        let interp = interp_events(&schema, &data, policy);
        let (gen, budget) = gen_events(|c, m| clf::parse_source(c, m).1, &data, policy);
        assert_same_stream(&format!("clf seed {seed}"), &interp, &gen);
        // PR-1 byte accounting, restated through the observer: the sum of
        // PanicSkip event bytes equals the budget's panic_skipped counter.
        assert_eq!(
            gen.panic_skip_bytes, budget.panic_skipped,
            "seed {seed}: recovery events disagree with the budget"
        );
        if budget.panic_skipped > 0 {
            panic_seeds += 1;
        }
    }
    assert!(panic_seeds > 0, "no mutation triggered panic recovery");
}
