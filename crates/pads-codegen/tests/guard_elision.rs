//! The progress analysis drives codegen: arrays whose element is proven
//! to consume input drop the runtime zero-width guard; arrays that cannot
//! be proven (or whose element recovers at record boundaries) keep it.

use pads_runtime::Registry;

const GUARD: &str = "if cur.offset() == before";
const ELIDED: &str = "zero-width guard elided";

fn generate(src: &str) -> String {
    let schema = pads_check::compile(src, &Registry::standard()).expect("compiles");
    pads_codegen::generate_rust(&schema, "test.pads").expect("generates")
}

fn read_description(name: &str) -> String {
    let path = format!("{}/../../descriptions/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).expect("description exists")
}

#[test]
fn sirius_event_seq_drops_guard_but_record_arrays_keep_it() {
    let module = generate(&read_description("sirius.pads"));
    // eventSeq: element `event_t` always consumes (its '|' literal and
    // Puint32 field force at least one byte) — guard elided.
    let event_seq = module
        .split("impl<'d> EventSeq<'d>")
        .nth(1)
        .and_then(|s| s.split("\nimpl").next())
        .expect("EventSeq impl present");
    assert!(event_seq.contains(ELIDED), "EventSeq should elide the guard");
    assert!(!event_seq.contains(GUARD), "EventSeq should have no guard");
    // entries_t: element `entry_t` is a Precord type, whose recovery path
    // can succeed without consuming — guard stays.
    let entries = module
        .split("impl<'d> EntriesT<'d>")
        .nth(1)
        .and_then(|s| s.split("\nimpl").next())
        .expect("EntriesT impl present");
    assert!(entries.contains(GUARD), "EntriesT must keep the guard");
}

#[test]
fn clf_record_array_keeps_guard() {
    let module = generate(&read_description("clf.pads"));
    let clt = module
        .split("impl<'d> CltT<'d>")
        .nth(1)
        .and_then(|s| s.split("\nimpl").next())
        .expect("CltT impl present");
    assert!(clt.contains(GUARD), "CltT must keep the guard");
    assert!(!clt.contains(ELIDED));
}

#[test]
fn unprovable_element_keeps_guard() {
    // Pstring(:',':) can match empty input; only the separator bounds the
    // loop, so the guard must survive.
    let module = generate("Psource Parray t { Pstring(:',':)[] : Psep(',') && Pterm(Peor); };");
    assert!(module.contains(GUARD));
    assert!(!module.contains(ELIDED));
}

#[test]
fn proven_base_element_drops_guard() {
    let module = generate("Psource Parray t { Puint32[] : Psep(',') && Pterm(Peor); };");
    assert!(module.contains(ELIDED));
    assert!(!module.contains(GUARD));
}

#[test]
fn nullable_regex_terminator_keeps_guard() {
    // `inner_t` can match zero bytes: its element list may be empty and
    // `Pre "a*"` matches the empty string. The outer array over it must
    // therefore keep the zero-width guard. Regex terminators have no
    // canonical write-back text, so full module generation fails for this
    // schema; the assertion targets the progress analysis that drives the
    // elision decision instead.
    let src = r#"
        Parray inner_t { Puint8[] : Pterm(Pre "a*"); };
        Psource Parray outer_t { inner_t[]; };
    "#;
    let schema = pads_check::compile(src, &Registry::standard()).expect("compiles");
    let facts = pads_check::lint::firstset::Facts::compute(&schema);
    let outer = schema.type_id("outer_t").expect("outer_t declared");
    assert_ne!(
        pads_check::lint::progress::array_progress(&schema, &facts, outer),
        pads_check::lint::progress::Progress::Proven,
        "outer array over inner_t (nullable regex terminator) must keep the guard"
    );
}
