//! The width analysis drives codegen: struct members that the fact
//! database proves exactly fixed-width form a prefix the generated
//! parser validates at fixed offsets and commits with one cursor
//! advance. Structs with no such prefix (or a trivial one) keep the
//! plain member loop only, and the fast path must fall back — never
//! misparse — on every input the slow path handles differently.

use pads::descriptions;
use pads_runtime::{BaseMask, Cursor, Mask, Registry};

const FAST: &str = "pc_fp_done";

fn generate(src: &str) -> String {
    let schema = pads_check::compile(src, &Registry::standard()).expect("compiles");
    pads_codegen::generate_rust(&schema, "test.pads").expect("generates")
}

#[test]
fn mixed_rec_gets_fast_path_but_clf_and_sirius_stay_unchanged() {
    // rec_t leads with code_t (Puint16_FW(:4:) typedef) + '|': proven
    // 5-byte prefix.
    let mixed = pads_codegen::generate_rust(&descriptions::mixed(), "t").expect("generates");
    let rec = mixed
        .split("impl<'d> RecT<'d>")
        .nth(1)
        .and_then(|s| s.split("\nimpl").next())
        .expect("RecT impl present");
    assert!(rec.contains(FAST), "RecT should get the fixed-prefix fast path");
    // clf entry_t leads with a union, sirius's structs with literals or
    // variable-width ints only: proven-neutral, no fast path anywhere.
    let clf = pads_codegen::generate_rust(&descriptions::clf(), "t").expect("generates");
    assert!(!clf.contains(FAST), "clf has no provable fixed prefix");
    let sirius = pads_codegen::generate_rust(&descriptions::sirius(), "t").expect("generates");
    assert!(!sirius.contains(FAST), "sirius has no provable fixed prefix");
}

#[test]
fn committed_modules_match_description_prefixes() {
    // The committed generated sources agree with what the current
    // generator decides (regen keeps them in sync; this pins the
    // fast-path placement specifically).
    assert!(include_str!("../../pads-core/src/generated/mixed.rs").contains(FAST));
    assert!(!include_str!("../../pads-core/src/generated/clf.rs").contains(FAST));
    assert!(!include_str!("../../pads-core/src/generated/sirius.rs").contains(FAST));
}

#[test]
fn prefix_needs_a_field_and_ends_at_variable_width_members() {
    // A lone literal prefix is not worth the setup cost.
    let m = generate("Psource Pstruct t { \"0|\"; Puint32 tstamp; };");
    assert!(!m.contains(FAST), "literal-only prefix must not emit a fast path");
    // Variable-width leading field: no prefix at all.
    let m = generate("Psource Pstruct t { Puint32 a; ','; Puint8 b; };");
    assert!(!m.contains(FAST));
    // FW uint + literal: qualifies.
    let m = generate("Psource Pstruct t { Puint16_FW(:4:) a; ','; Pstring(:' ':) b; };");
    assert!(m.contains(FAST));
    // A field with an inline constraint ends the prefix before it (its
    // failure must build a field descriptor, which the fast path never
    // does).
    let m = generate("Psource Pstruct t { Puint16_FW(:4:) a : a > 0; ','; Puint8 b; };");
    assert!(!m.contains(FAST));
}

#[test]
fn fast_path_and_member_loop_agree_on_hits_misses_and_constraint_failures() {
    // Drive the committed mixed parser over inputs chosen to hit the
    // fast path, miss it syntactically (non-digit code bytes — FW fields
    // tolerate leading spaces, so " 123" must still parse to 123 via the
    // slow path), and miss it semantically (all-digit code outside the
    // typedef range). Values, error counts, and cursor positions must
    // match the interpreter byte for byte.
    use pads::generated::mixed as gen_mixed;
    use pads::PadsParser;

    let mut data = Vec::new();
    data.extend_from_slice(b"1234|LOW|0|7|q01=2.5|T|2|8,9\n"); // fast-path hit
    data.extend_from_slice(b" 012|MED|0|7|q01=2.5|T|2|8,9\n"); // non-digit byte: slow path, FW space rule
    data.extend_from_slice(b"0042|HIGH|0|7|q01=2.5|T|2|8,9\n"); // all digits, constraint fails: bails
    data.extend_from_slice(b"9999|LOW|0|7|q01=2.5|T|0|\n"); // boundary hit
    let data = &data[..];
    let mask = Mask::all(BaseMask::CheckAndSet);
    let schema = descriptions::mixed();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let (iv, ipd) = parser.parse_source(data, &mask);
    let mut cur = Cursor::new(data);
    let (gv, gpd) = gen_mixed::parse_source(&mut cur, &mask);
    assert_eq!(ipd.nerr, gpd.nerr);
    assert_eq!(ipd.is_ok(), gpd.is_ok());
    assert_eq!(iv.len(), Some(gv.0.len()));
    assert_eq!(gv.0.len(), 4);
    // Record 0: fast-path hit. Record 1: " 12" parses to 12 but fails
    // the 1000..=9999 typedef constraint on both engines. Record 2:
    // leading zero, still a hit (42 fails the constraint identically).
    let codes: Vec<u16> = gv.0.iter().map(|r| r.code.0).collect();
    assert_eq!(codes, vec![1234, 12, 42, 9999]);
    for (i, r) in gv.0.iter().enumerate() {
        use pads::Value;
        let ie = iv.index(i).unwrap();
        assert_eq!(
            ie.at_path("code").and_then(Value::as_u64),
            Some(r.code.0 as u64),
            "record {i}"
        );
    }
}
