//! Width-interval soundness: the fact database claims every parse of a
//! type `T` consumes between `min` and `max` bytes (`max` absent for
//! unbounded types). This property test replays the torture corpora and
//! the 1000-seed fault harness through BOTH engines with an observer
//! attached, and checks every clean type-exit span against the computed
//! interval. Record types get one byte of slack: the record close
//! consumes the newline terminator, which sits outside the type's
//! content width.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use pads::generated::{clf, mixed, sirius};
use pads::{descriptions, PadsParser};
use pads_check::ir::Schema;
use pads_check::lint::facts::{SemFacts, WidthInterval};
use pads_check::lint::firstset::Facts;
use pads_observe::{ObsHandle, Observer};
use pads_runtime::{BaseMask, Cursor, FaultPlan, Mask, ParseDesc, Pos, Registry};

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

/// Captures `(type name, consumed bytes)` for every *clean* type exit;
/// errored or partial parses may legitimately stop anywhere.
#[derive(Default)]
struct SpanLog {
    spans: Vec<(String, u64)>,
}

impl Observer for SpanLog {
    fn type_exit(&mut self, name: &str, start: Pos, end: Pos, pd: &ParseDesc) {
        if pd.is_ok() && pd.nerr == 0 {
            self.spans.push((name.to_owned(), (end.offset - start.offset) as u64));
        }
    }
}

/// Per-type width intervals plus the record flag controlling newline
/// slack.
fn width_table(schema: &Schema) -> HashMap<String, (WidthInterval, bool)> {
    let firsts = Facts::compute(schema);
    let sem = SemFacts::compute(schema, &firsts);
    (0..schema.types.len())
        .map(|id| {
            let def = schema.def(id);
            (def.name.clone(), (sem.width_of(id), def.is_record))
        })
        .collect()
}

fn check_spans(label: &str, log: &SpanLog, table: &HashMap<String, (WidthInterval, bool)>) {
    assert!(!log.spans.is_empty(), "{label}: no clean spans observed");
    for (name, consumed) in &log.spans {
        let Some((w, is_record)) = table.get(name) else {
            panic!("{label}: observer saw unknown type `{name}`");
        };
        let slack = u64::from(*is_record);
        assert!(
            *consumed >= w.min,
            "{label}: `{name}` consumed {consumed} bytes, below proven min {}",
            w.min
        );
        if let Some(max) = w.max {
            assert!(
                *consumed <= max + slack,
                "{label}: `{name}` consumed {consumed} bytes, above proven max {max} (+{slack} record slack)"
            );
        }
    }
}

fn interp_spans(schema: &Schema, data: &[u8]) -> SpanLog {
    let registry = Registry::standard();
    let sink: Rc<RefCell<SpanLog>> = Rc::new(RefCell::new(SpanLog::default()));
    let parser =
        PadsParser::new(schema, &registry).with_observer(ObsHandle::from_rc(sink.clone()));
    let _ = parser.parse_source(data, &mask());
    drop(parser);
    Rc::try_unwrap(sink).map(RefCell::into_inner).unwrap_or_default()
}

fn gen_spans(
    parse: impl Fn(&mut Cursor<'_>, &Mask) -> ParseDesc,
    data: &[u8],
) -> SpanLog {
    let sink: Rc<RefCell<SpanLog>> = Rc::new(RefCell::new(SpanLog::default()));
    let mut cur = Cursor::new(data).with_observer(ObsHandle::from_rc(sink.clone()));
    let _ = parse(&mut cur, &mask());
    drop(cur);
    Rc::try_unwrap(sink).map(RefCell::into_inner).unwrap_or_default()
}

#[test]
fn torture_corpora_respect_width_intervals_on_both_engines() {
    let cases: [(&str, &[u8], fn(&mut Cursor<'_>, &Mask) -> ParseDesc); 3] = [
        ("clf", include_bytes!("../../../tests/data/torture_clf.log"), |cur, m| {
            clf::parse_source(cur, m).1
        }),
        ("sirius", include_bytes!("../../../tests/data/torture_sirius.txt"), |cur, m| {
            sirius::parse_source(cur, m).1
        }),
        ("mixed", include_bytes!("../../../tests/data/torture_mixed.txt"), |cur, m| {
            mixed::parse_source(cur, m).1
        }),
    ];
    let schemas = [descriptions::clf(), descriptions::sirius(), descriptions::mixed()];
    for ((name, data, parse), schema) in cases.into_iter().zip(&schemas) {
        let table = width_table(schema);
        check_spans(
            &format!("{name}/interpreted"),
            &interp_spans(schema, data),
            &table,
        );
        check_spans(&format!("{name}/generated"), &gen_spans(parse, data), &table);
    }
}

#[test]
fn fault_harness_respects_width_intervals_on_both_engines() {
    // 1000 seeded mutations of a clean CLF corpus: bit flips, deletions,
    // insertions, truncation. Soundness must hold on whatever clean
    // sub-parses survive the damage.
    let clean = pads_gen::clf::generate(&pads_gen::ClfConfig {
        records: 15,
        ..Default::default()
    })
    .0;
    let schema = descriptions::clf();
    let table = width_table(&schema);
    let mut checked = 0usize;
    for seed in 0..1000 {
        let data = FaultPlan::for_seed(seed).apply(&clean);
        let ilog = interp_spans(&schema, &data);
        let glog = gen_spans(|c, m| clf::parse_source(c, m).1, &data);
        // Mutated corpora can in principle fail every parse; only check
        // non-empty logs (check_spans asserts non-emptiness).
        for (label, log) in
            [(format!("seed {seed}/interpreted"), &ilog), (format!("seed {seed}/generated"), &glog)]
        {
            if !log.spans.is_empty() {
                check_spans(&label, log, &table);
                checked += 1;
            }
        }
    }
    assert!(checked >= 1900, "too few seeds produced clean spans: {checked}");
}
