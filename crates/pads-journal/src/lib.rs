//! Write-ahead checkpoint journal for durable, resumable ingest.
//!
//! The paper's motivating deployments (§1: ~300 M calls/day of AT&T call
//! detail) cannot afford a crashed processor that silently re-emits or
//! drops records — PADS's value proposition is that every record is
//! *accounted for*. This crate provides the durability half of that
//! guarantee: an append-only journal of [`Checkpoint`]s, each recording a
//! committed byte offset and record index into the source together with
//! the [`ErrorBudget`] tally and an opaque metrics snapshot at that
//! boundary. A consumer that commits a checkpoint after externalising the
//! records before it can be killed at any point and resumed from the last
//! committed boundary with exactly-once record accounting.
//!
//! # File format
//!
//! ```text
//! header   := "PADSJRNL" u32le(version=1) u32le(0)          (16 bytes)
//! frame    := u32le(payload_len) u32le(crc32(payload)) payload
//! payload  := u64le(source_id) u64le(offset) u64le(record)
//!             u64le(errs) u64le(bad_records) u64le(skipped_records)
//!             u64le(panic_skipped) u8(flags) u32le(metrics_len) metrics
//! flags    := bit0 = budget exhausted, bit1 = budget stopped
//! ```
//!
//! Writes are appended and flushed per commit; `fsync` is batched (every
//! [`Journal::with_fsync_every`] commits, and on [`Journal::sync`]). A
//! crash can therefore tear at most the final frame. [`Journal::open`]
//! detects a torn tail (incomplete frame header or payload at end of
//! file), truncates the file back to the last valid frame, and reports the
//! recovery; a *complete* frame that fails CRC is in-place corruption and
//! is a hard error, as are non-monotonic checkpoints and mid-file source
//! changes. Each failure mode carries a distinct stable
//! [`ErrorCode`](pads_runtime::ErrorCode).

// The journal sits on the ingest path: like the parsers, it must fail
// with errors, never panics.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use pads_runtime::{ErrorBudget, ErrorCode};

const MAGIC: &[u8; 8] = b"PADSJRNL";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 16;
const FRAME_HEADER_LEN: usize = 8;
/// Fixed payload bytes before the variable-length metrics snapshot.
const PAYLOAD_FIXED_LEN: usize = 8 * 7 + 1 + 4;
/// Default number of commits between fsyncs.
pub const DEFAULT_FSYNC_EVERY: usize = 16;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time so
/// the journal needs no external checksum crate.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`, as produced by zlib's `crc32`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// One committed position: everything before `offset` / `record` has been
/// externalised, with the budget tally and metrics snapshot at that
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the source this journal tracks.
    pub source_id: u64,
    /// First unconsumed byte of the source.
    pub offset: u64,
    /// Index of the first unconsumed record.
    pub record: u64,
    /// The error-budget tally at the boundary.
    pub budget: ErrorBudget,
    /// Opaque observer-counter snapshot (e.g. a serialised `MetricsSink`).
    pub metrics: Vec<u8>,
}

/// A journal failure: a stable [`ErrorCode`] plus human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    /// The stable failure class (`Journal*` codes).
    pub code: ErrorCode,
    /// What specifically went wrong.
    pub detail: String,
}

impl JournalError {
    fn new(code: ErrorCode, detail: impl Into<String>) -> JournalError {
        JournalError { code, detail: detail.into() }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.detail)
    }
}

impl std::error::Error for JournalError {}

/// What [`Journal::open`] repaired: a torn final frame was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bytes truncated off the tail (the incomplete frame).
    pub dropped_bytes: u64,
    /// Checkpoints that remained valid after truncation.
    pub checkpoints_kept: u64,
}

/// An append-only checkpoint journal backed by one file.
#[derive(Debug)]
pub struct Journal {
    file: File,
    last: Option<Checkpoint>,
    fsync_every: usize,
    commits_since_sync: usize,
}

impl Journal {
    /// Creates a fresh journal at `path`, truncating any existing file,
    /// and durably writes the header.
    pub fn create(path: &Path) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| JournalError::new(ErrorCode::JournalBadHeader, format!("{path:?}: {e}")))?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        file.write_all(&header).map_err(io_err)?;
        file.sync_data().map_err(io_err)?;
        Ok(Journal {
            file,
            last: None,
            fsync_every: DEFAULT_FSYNC_EVERY,
            commits_since_sync: 0,
        })
    }

    /// Opens an existing journal, validating every frame. A torn final
    /// frame (crash artifact) is truncated away and reported; all other
    /// malformations are hard errors with distinct stable codes:
    ///
    /// * missing/short/garbled header → [`ErrorCode::JournalBadHeader`]
    /// * complete frame failing CRC → [`ErrorCode::JournalCrcMismatch`]
    /// * checkpoints that regress or duplicate → [`ErrorCode::JournalOutOfOrder`]
    /// * source fingerprint changing mid-file → [`ErrorCode::JournalSourceMismatch`]
    pub fn open(path: &Path) -> Result<(Journal, Option<RecoveryReport>), JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| JournalError::new(ErrorCode::JournalBadHeader, format!("{path:?}: {e}")))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err)?;
        if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
            return Err(JournalError::new(
                ErrorCode::JournalBadHeader,
                format!("{path:?}: missing or short journal header ({} bytes)", bytes.len()),
            ));
        }
        let version = u32_le(&bytes[8..12]);
        if version != VERSION {
            return Err(JournalError::new(
                ErrorCode::JournalBadHeader,
                format!("{path:?}: unsupported journal version {version}"),
            ));
        }

        let mut pos = HEADER_LEN;
        let mut last: Option<Checkpoint> = None;
        let mut kept = 0u64;
        let mut torn_at: Option<usize> = None;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < FRAME_HEADER_LEN {
                torn_at = Some(pos);
                break;
            }
            let payload_len = u32_le(&bytes[pos..pos + 4]) as usize;
            let crc_stored = u32_le(&bytes[pos + 4..pos + 8]);
            if payload_len > remaining - FRAME_HEADER_LEN {
                torn_at = Some(pos);
                break;
            }
            let payload = &bytes[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + payload_len];
            if crc32(payload) != crc_stored {
                return Err(JournalError::new(
                    ErrorCode::JournalCrcMismatch,
                    format!("frame at byte {pos} fails CRC validation"),
                ));
            }
            let cp = decode_payload(payload).ok_or_else(|| {
                JournalError::new(
                    ErrorCode::JournalCrcMismatch,
                    format!("frame at byte {pos} has a malformed payload"),
                )
            })?;
            if let Some(prev) = &last {
                if cp.source_id != prev.source_id {
                    return Err(JournalError::new(
                        ErrorCode::JournalSourceMismatch,
                        format!(
                            "frame at byte {pos} switches source ({:#x} -> {:#x})",
                            prev.source_id, cp.source_id
                        ),
                    ));
                }
                if !advances(prev, &cp) {
                    return Err(JournalError::new(
                        ErrorCode::JournalOutOfOrder,
                        format!(
                            "frame at byte {pos} does not advance (record {} offset {} after record {} offset {})",
                            cp.record, cp.offset, prev.record, prev.offset
                        ),
                    ));
                }
            }
            last = Some(cp);
            kept += 1;
            pos += FRAME_HEADER_LEN + payload_len;
        }

        let report = if let Some(at) = torn_at {
            let dropped = (bytes.len() - at) as u64;
            file.set_len(at as u64).map_err(io_err)?;
            Some(RecoveryReport { dropped_bytes: dropped, checkpoints_kept: kept })
        } else {
            None
        };
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        Ok((
            Journal {
                file,
                last,
                fsync_every: DEFAULT_FSYNC_EVERY,
                commits_since_sync: 0,
            },
            report,
        ))
    }

    /// Sets the fsync batch size (builder style): the file is fsynced on
    /// every `n`-th commit. `n = 1` syncs every commit; 0 is clamped to 1.
    pub fn with_fsync_every(mut self, n: usize) -> Journal {
        self.fsync_every = n.max(1);
        self
    }

    /// The most recent committed checkpoint, if any.
    pub fn last(&self) -> Option<&Checkpoint> {
        self.last.as_ref()
    }

    /// Appends one checkpoint. Checkpoints must advance monotonically
    /// (offset or record strictly greater) and keep the same source id.
    pub fn commit(&mut self, cp: Checkpoint) -> Result<(), JournalError> {
        if let Some(prev) = &self.last {
            if cp.source_id != prev.source_id {
                return Err(JournalError::new(
                    ErrorCode::JournalSourceMismatch,
                    format!("commit switches source ({:#x} -> {:#x})", prev.source_id, cp.source_id),
                ));
            }
            if !advances(prev, &cp) {
                return Err(JournalError::new(
                    ErrorCode::JournalOutOfOrder,
                    format!(
                        "commit does not advance (record {} offset {} after record {} offset {})",
                        cp.record, cp.offset, prev.record, prev.offset
                    ),
                ));
            }
        }
        let payload = encode_payload(&cp);
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame).map_err(io_err)?;
        self.file.flush().map_err(io_err)?;
        self.commits_since_sync += 1;
        if self.commits_since_sync >= self.fsync_every {
            self.file.sync_data().map_err(io_err)?;
            self.commits_since_sync = 0;
        }
        self.last = Some(cp);
        Ok(())
    }

    /// Forces any batched commits to stable storage.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data().map_err(io_err)?;
        self.commits_since_sync = 0;
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> JournalError {
    JournalError::new(ErrorCode::JournalBadHeader, format!("journal I/O failed: {e}"))
}

/// Whether `next` strictly advances past `prev` (duplicates do not).
fn advances(prev: &Checkpoint, next: &Checkpoint) -> bool {
    next.offset >= prev.offset
        && next.record >= prev.record
        && (next.offset > prev.offset || next.record > prev.record)
}

fn u32_le(b: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&b[..4]);
    u32::from_le_bytes(buf)
}

fn u64_le(b: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&b[..8]);
    u64::from_le_bytes(buf)
}

fn encode_payload(cp: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(PAYLOAD_FIXED_LEN + cp.metrics.len());
    out.extend_from_slice(&cp.source_id.to_le_bytes());
    out.extend_from_slice(&cp.offset.to_le_bytes());
    out.extend_from_slice(&cp.record.to_le_bytes());
    let (counters, exhausted, stopped) = cp.budget.to_parts();
    for c in counters {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out.push(u8::from(exhausted) | (u8::from(stopped) << 1));
    out.extend_from_slice(&(cp.metrics.len() as u32).to_le_bytes());
    out.extend_from_slice(&cp.metrics);
    out
}

fn decode_payload(p: &[u8]) -> Option<Checkpoint> {
    if p.len() < PAYLOAD_FIXED_LEN {
        return None;
    }
    let source_id = u64_le(&p[0..8]);
    let offset = u64_le(&p[8..16]);
    let record = u64_le(&p[16..24]);
    let counters =
        [u64_le(&p[24..32]), u64_le(&p[32..40]), u64_le(&p[40..48]), u64_le(&p[48..56])];
    let flags = p[56];
    let budget = ErrorBudget::from_parts(counters, flags & 1 != 0, flags & 2 != 0);
    let metrics_len = u32_le(&p[57..61]) as usize;
    if p.len() != PAYLOAD_FIXED_LEN + metrics_len {
        return None;
    }
    Some(Checkpoint { source_id, offset, record, budget, metrics: p[61..].to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::RecoveryPolicy;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pads-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn cp(record: u64, offset: u64) -> Checkpoint {
        Checkpoint { source_id: 0xABCD, offset, record, budget: ErrorBudget::new(), metrics: vec![] }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn commit_and_reopen_roundtrips() {
        let path = tmp("roundtrip");
        let mut j = Journal::create(&path).unwrap();
        let policy = RecoveryPolicy::unlimited().with_max_errs(10);
        let mut budget = ErrorBudget::new();
        budget.note_record(&policy, 3, 7);
        let full = Checkpoint {
            source_id: 42,
            offset: 128,
            record: 4,
            budget,
            metrics: vec![1, 2, 3, 4, 5],
        };
        j.commit(cp_with_source(42, 1, 32)).unwrap();
        j.commit(full.clone()).unwrap();
        j.sync().unwrap();
        drop(j);
        let (j, report) = Journal::open(&path).unwrap();
        assert_eq!(report, None);
        assert_eq!(j.last(), Some(&full));
        std::fs::remove_file(&path).ok();
    }

    fn cp_with_source(source_id: u64, record: u64, offset: u64) -> Checkpoint {
        Checkpoint { source_id, offset, record, budget: ErrorBudget::new(), metrics: vec![] }
    }

    #[test]
    fn torn_tail_truncates_to_last_valid() {
        let path = tmp("torn");
        let mut j = Journal::create(&path).unwrap();
        j.commit(cp(1, 10)).unwrap();
        j.commit(cp(2, 20)).unwrap();
        j.sync().unwrap();
        drop(j);
        let valid_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-frame: append half a frame.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x30, 0, 0, 0, 0xDE, 0xAD]).unwrap();
        drop(f);
        let (j, report) = Journal::open(&path).unwrap();
        let report = report.unwrap();
        assert_eq!(report.dropped_bytes, 6);
        assert_eq!(report.checkpoints_kept, 2);
        assert_eq!(j.last().map(|c| c.record), Some(2));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_payload_truncates_too() {
        let path = tmp("torn-payload");
        let mut j = Journal::create(&path).unwrap();
        j.commit(cp(1, 10)).unwrap();
        drop(j);
        // A full frame header claiming more payload than the file holds.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&100u32.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(&[7; 10]).unwrap();
        drop(f);
        let (j, report) = Journal::open(&path).unwrap();
        assert_eq!(report.unwrap().dropped_bytes, 18);
        assert_eq!(j.last().map(|c| c.record), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_crc_byte_is_hard_corruption() {
        let path = tmp("crc");
        let mut j = Journal::create(&path).unwrap();
        j.commit(cp(1, 10)).unwrap();
        j.commit(cp(2, 20)).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first frame's payload.
        let target = HEADER_LEN + FRAME_HEADER_LEN + 3;
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.code, ErrorCode::JournalCrcMismatch);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_checkpoint_is_out_of_order() {
        let path = tmp("dup");
        let mut j = Journal::create(&path).unwrap();
        j.commit(cp(1, 10)).unwrap();
        drop(j);
        // Append a byte-identical copy of the last frame.
        let bytes = std::fs::read(&path).unwrap();
        let frame = bytes[HEADER_LEN..].to_vec();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&frame).unwrap();
        drop(f);
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.code, ErrorCode::JournalOutOfOrder);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn regressing_commit_is_rejected() {
        let path = tmp("regress");
        let mut j = Journal::create(&path).unwrap();
        j.commit(cp(5, 50)).unwrap();
        let err = j.commit(cp(4, 60)).unwrap_err();
        assert_eq!(err.code, ErrorCode::JournalOutOfOrder);
        let err = j.commit(cp(5, 50)).unwrap_err();
        assert_eq!(err.code, ErrorCode::JournalOutOfOrder);
        j.commit(cp(6, 60)).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_length_file_is_bad_header() {
        let path = tmp("zero");
        std::fs::write(&path, b"").unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.code, ErrorCode::JournalBadHeader);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_bad_header() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTAJRNL\x01\x00\x00\x00\x00\x00\x00\x00").unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.code, ErrorCode::JournalBadHeader);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn source_switch_is_rejected_on_commit_and_open() {
        let path = tmp("source");
        let mut j = Journal::create(&path).unwrap();
        j.commit(cp_with_source(1, 1, 10)).unwrap();
        let err = j.commit(cp_with_source(2, 2, 20)).unwrap_err();
        assert_eq!(err.code, ErrorCode::JournalSourceMismatch);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_flags_survive_roundtrip() {
        let path = tmp("flags");
        let policy = RecoveryPolicy::unlimited().with_max_errs(0);
        let mut budget = ErrorBudget::new();
        budget.note_record(&policy, 1, 0);
        assert!(budget.exhausted() && budget.stopped());
        let mut j = Journal::create(&path).unwrap();
        j.commit(Checkpoint { source_id: 9, offset: 1, record: 1, budget, metrics: vec![] })
            .unwrap();
        drop(j);
        let (j, _) = Journal::open(&path).unwrap();
        let got = j.last().unwrap().budget;
        assert_eq!(got, budget);
        assert!(got.exhausted() && got.stopped());
        std::fs::remove_file(&path).ok();
    }
}
