//! The Altair pipeline end to end (§5.2): Cobol copybook → PADS
//! description → parse EBCDIC records → accumulator profile.

use pads::{BaseMask, Charset, Mask, PadsParser, ParseOptions, RecordDiscipline, Registry, Value};
use pads_tools::Accumulator;

const COPYBOOK: &str = "
   01 BILL-REC.
      05 ACCT-ID     PIC 9(6).
      05 REGION      PIC X(3).
      05 AMOUNT      PIC S9(5) COMP-3.
      05 CYCLE-DAY   PIC 9(2).
";

/// One fixed-width EBCDIC record matching the copybook: 6 zoned digits,
/// 3 chars, 3 packed bytes, 2 zoned digits = 14 bytes.
fn record(acct: u32, region: &str, amount: i32, day: u8) -> Vec<u8> {
    let mut out = Vec::new();
    for d in format!("{acct:06}").bytes() {
        out.push(0xF0 | (d - b'0'));
    }
    for b in region.bytes() {
        out.push(Charset::Ebcdic.encode(b));
    }
    // Packed S9(5): 3 bytes, sign nibble last.
    let digits = format!("{:05}", amount.unsigned_abs());
    let d: Vec<u8> = digits.bytes().map(|b| b - b'0').collect();
    out.push(d[0] << 4 | d[1]);
    out.push(d[2] << 4 | d[3]);
    out.push(d[4] << 4 | if amount < 0 { 0x0D } else { 0x0C });
    for d in format!("{day:02}").bytes() {
        out.push(0xF0 | (d - b'0'));
    }
    out
}

#[test]
fn copybook_feed_parses_and_profiles() {
    let description = pads_cobol::translate(COPYBOOK).expect("copybook translates");
    let registry = Registry::standard();
    let schema = pads::compile(&description, &registry).expect("translation compiles");

    let mut data = Vec::new();
    data.extend(record(101, "NE1", 5000, 7));
    data.extend(record(102, "SW2", -250, 7));
    data.extend(record(103, "NE1", 125, 14));

    let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        charset: Charset::Ebcdic,
        discipline: RecordDiscipline::FixedWidth(14),
        ..Default::default()
    });
    let mask = Mask::all(BaseMask::CheckAndSet);
    let (v, pd) = parser.parse_source(&data, &mask);
    assert!(pd.is_ok(), "{:?}", pd.errors());
    assert_eq!(v.len(), Some(3));
    assert_eq!(v.at_path("[0].acct_id").and_then(Value::as_i64), Some(101));
    assert_eq!(v.at_path("[0].region").and_then(Value::as_str), Some("NE1"));
    assert_eq!(v.at_path("[1].amount").and_then(Value::as_i64), Some(-250));
    assert_eq!(v.at_path("[2].cycle_day").and_then(Value::as_i64), Some(14));

    // Accumulator profile over the feed — what Altair automates for ~4000
    // files per day.
    let mut acc = Accumulator::new(&schema, "bill_rec_t");
    for (rec, rpd) in parser.records(&data, "bill_rec_t", &mask) {
        acc.add(&rec, &rpd);
    }
    assert_eq!(acc.records, 3);
    assert_eq!(acc.bad_records, 0);
    let region = acc.stats_at("region").unwrap();
    assert_eq!(region.top(1), vec![("NE1", 2)]);
    let amount = acc.stats_at("amount").unwrap();
    assert_eq!(amount.num.min, -250.0);
    assert_eq!(amount.num.max, 5000.0);
}

#[test]
fn corrupted_cobol_record_is_flagged_not_fatal() {
    let description = pads_cobol::translate(COPYBOOK).unwrap();
    let registry = Registry::standard();
    let schema = pads::compile(&description, &registry).unwrap();
    let mut data = Vec::new();
    data.extend(record(101, "NE1", 1, 1));
    let mut bad = record(102, "SW2", 2, 2);
    bad[0] = 0xC1; // zone nibble wrong: not a zoned digit
    data.extend(bad);
    data.extend(record(103, "NE1", 3, 3));
    let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        charset: Charset::Ebcdic,
        discipline: RecordDiscipline::FixedWidth(14),
        ..Default::default()
    });
    let (v, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
    assert_eq!(v.len(), Some(3), "panic recovery keeps all records");
    let errors = pd.errors();
    assert!(errors.iter().all(|(p, _, _)| p.starts_with("[1]")), "{errors:?}");
    assert_eq!(v.at_path("[2].acct_id").and_then(Value::as_i64), Some(103));
}

#[test]
fn length_prefixed_cobol_discipline_works_too() {
    // Cobol wire formats often carry a 2-byte length header (§3, end).
    let description = pads_cobol::translate(COPYBOOK).unwrap();
    let registry = Registry::standard();
    let schema = pads::compile(&description, &registry).unwrap();
    let mut data = Vec::new();
    for r in [record(7, "ABC", 9, 1), record(8, "XYZ", -9, 2)] {
        data.extend_from_slice(&(r.len() as u16).to_be_bytes());
        data.extend(r);
    }
    let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        charset: Charset::Ebcdic,
        discipline: RecordDiscipline::LengthPrefixed {
            header_bytes: 2,
            endian: pads::Endian::Big,
        },
        ..Default::default()
    });
    let (v, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
    assert!(pd.is_ok(), "{:?}", pd.errors());
    assert_eq!(v.len(), Some(2));
    assert_eq!(v.at_path("[1].amount").and_then(Value::as_i64), Some(-9));
}
