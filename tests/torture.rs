//! Torture corpus: checked-in adversarial data for the three flagship
//! descriptions, asserting the *exact* `ErrorCode` and `ParseState` each
//! malformed record produces.
//!
//! Each corpus line is a mutation of a known-good record; together the
//! three files (plus a handful of driver-level cases: error budgets,
//! unknown entry points, EOF truncation outside a record) exercise more
//! than fifteen distinct error codes, pinning down the error vocabulary of
//! the runtime (paper §3.2: every parser records errors in parse
//! descriptors rather than aborting).
//!
//! The corpora live in `tests/data/` so regressions in error
//! classification show up as exact-code diffs, not just pass/fail flips.

use pads::{
    descriptions, BaseMask, ErrorCode, Mask, OnExhausted, PadsParser, ParseDesc, ParseOptions,
    ParseState, RecoveryPolicy, Registry, Schema,
};
use std::collections::BTreeSet;

const CLF: &[u8] = include_bytes!("data/torture_clf.log");
const SIRIUS: &[u8] = include_bytes!("data/torture_sirius.txt");
const MIXED: &[u8] = include_bytes!("data/torture_mixed.txt");

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

/// Every error code in the descriptor subtree: the root's own code followed
/// by the codes `errors()` reports for the nested detail.
fn codes(pd: &ParseDesc) -> Vec<ErrorCode> {
    let mut out = vec![pd.err_code];
    out.extend(pd.errors().into_iter().map(|(_, code, _)| code));
    out
}

/// Parses `data` record-by-record and asserts each record's `ParseState`
/// and exact error-code sequence, accumulating every code seen into `seen`.
fn assert_records(
    label: &str,
    schema: &Schema,
    data: &[u8],
    record: &str,
    expect: &[(ParseState, &[ErrorCode])],
    seen: &mut BTreeSet<ErrorCode>,
) {
    let registry = Registry::standard();
    let parser = PadsParser::new(schema, &registry);
    let mask = mask();
    let got: Vec<(ParseState, Vec<ErrorCode>)> =
        parser.records(data, record, &mask).map(|(_, pd)| (pd.state, codes(&pd))).collect();
    assert_eq!(got.len(), expect.len(), "{label}: record count");
    for (i, ((state, cs), (estate, ecs))) in got.iter().zip(expect).enumerate() {
        assert_eq!(state, estate, "{label}[{i}]: state (codes {cs:?})");
        assert_eq!(cs, ecs, "{label}[{i}]: error codes");
        seen.extend(cs.iter().copied());
    }
}

use ErrorCode::*;
use ParseState::{Ok as StOk, Panic, Partial};

#[test]
fn torture_corpora_report_exact_codes() {
    let mut seen = BTreeSet::new();

    // Common Log Format (Figure 4): one mutation per line after the clean
    // first record.
    assert_records(
        "clf",
        &descriptions::clf(),
        CLF,
        "entry_t",
        &[
            (StOk, &[Good]),                                    // clean (Figure 2)
            (Panic, &[NestedError, UnionNoBranch, PanicSkipped]), // `###` is no IP and no hostname
            (Panic, &[NestedError, BadDate, PanicSkipped]),     // `[not a date]`
            (Panic, &[NestedError, EnumNoMatch, PanicSkipped]), // method BREW
            (StOk, &[NestedError, ConstraintViolation]),        // LINK with HTTP/1.0 (chkVersion)
            (Panic, &[NestedError, RangeError, PanicSkipped]),  // HTTP/300.1: 300 overflows Puint8
            (StOk, &[NestedError, ConstraintViolation]),        // response 999 out of 100..600
            (Panic, &[NestedError, InvalidDigit, PanicSkipped]), // response `abc`
            (StOk, &[ExtraDataBeforeEor, ExtraDataBeforeEor]),  // trailing ` tail`
            (Panic, &[NestedError, LitMismatch, PanicSkipped]), // missing opening quote
            (Partial, &[NestedError, LitMismatch]),             // record ends after req_uri
            (Panic, &[NestedError, UnexpectedEor, PanicSkipped]), // response truncated to `2`
        ],
        &mut seen,
    );

    // Sirius provisioning feed (Figure 3): entry records only.
    assert_records(
        "sirius",
        &descriptions::sirius(),
        SIRIUS,
        "entry_t",
        &[
            (Partial, &[NestedError, LitMismatch]),             // summary header is not an entry
            (StOk, &[Good]),                                    // clean (Figure 3)
            (StOk, &[NestedError, ForallViolation]),            // event timestamps out of order
            (Panic, &[NestedError, InvalidDigit, PanicSkipped]), // order number `x154`
            (Panic, &[NestedError, LitMismatch, PanicSkipped]), // zip `xx` derails the opt field
            (Partial, &[NestedError, InvalidDigit]),            // trailing `|` with no timestamp
        ],
        &mut seen,
    );

    // The mixed/adversarial description: switched unions, bit fields,
    // size-bound arrays.
    assert_records(
        "mixed",
        &descriptions::mixed(),
        MIXED,
        "rec_t",
        &[
            (StOk, &[Good]),                                    // clean, kind 0 (uint body)
            (Panic, &[NestedError, InvalidDigit, PanicSkipped]), // code `abcd`
            (StOk, &[NestedError, ConstraintViolation]),        // code 0999 < 1000
            (Panic, &[NestedError, EnumNoMatch, PanicSkipped]), // severity XXX
            (StOk, &[NestedError, ConstraintViolation]),        // kind 5 > 2
            (Panic, &[NestedError, ArraySepMismatch, PanicSkipped]), // `;` for `,` separator
            (Partial, &[NestedError, ArraySepMismatch]),        // nvals 5 but only 3 values
            (StOk, &[WhereViolation, WhereViolation]),          // nvals 12 > 9 (Pwhere)
            (StOk, &[NestedError, ConstraintViolation]),        // tag8 0x1f below printable range
            (StOk, &[Good]),                                    // clean, kind 1 (string body)
            (Panic, &[NestedError, RangeError, PanicSkipped]),  // body 9999999999 overflows u32
            (StOk, &[Good]),                                    // clean, with optional pair
        ],
        &mut seen,
    );

    // Driver-level codes the corpora cannot reach on their own.

    // An exhausted error budget with `SkipRecord` stamps the remaining
    // records `BudgetExhausted` instead of parsing them.
    let registry = Registry::standard();
    let schema = descriptions::clf();
    let policy =
        RecoveryPolicy::unlimited().with_max_errs(2).with_on_exhausted(OnExhausted::SkipRecord);
    let parser = PadsParser::new(&schema, &registry)
        .with_options(ParseOptions { policy, ..Default::default() });
    let budget_codes: BTreeSet<ErrorCode> = parser
        .records(CLF, "entry_t", &mask())
        .flat_map(|(_, pd)| codes(&pd))
        .collect();
    assert!(
        budget_codes.contains(&BudgetExhausted),
        "SkipRecord must stamp skipped records: {budget_codes:?}"
    );
    seen.insert(BudgetExhausted);

    // An unknown entry point is API misuse recorded as data, never a panic.
    let parser = PadsParser::new(&schema, &registry);
    let items: Vec<_> = parser.records(CLF, "no_such_type_t", &mask()).collect();
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].1.err_code, InternalError);
    seen.insert(InternalError);

    // Outside any record boundary, truncation is end-of-*source*: parsing
    // clf's fixed-width response_t against two of its three bytes reports
    // UnexpectedEof (inside a newline record the same truncation is
    // UnexpectedEor, covered by the corpus above).
    let mut cur = parser.open(b"20");
    let (_, pd) = parser.parse_named(&mut cur, "response_t", &[], &mask());
    assert!(
        codes(&pd).contains(&UnexpectedEof),
        "EOF mid-field outside a record: {:?}",
        codes(&pd)
    );
    seen.insert(UnexpectedEof);

    seen.remove(&Good);
    assert!(
        seen.len() >= 15,
        "torture corpus must exercise at least 15 distinct error codes, got {}: {seen:?}",
        seen.len()
    );
}

/// The clf torture corpus under `OnExhausted::Stop` halts the run early
/// instead of skipping: the iterator ends before all 12 records.
#[test]
fn torture_corpus_respects_stop_budget() {
    let registry = Registry::standard();
    let schema = descriptions::clf();
    let policy = RecoveryPolicy::unlimited().with_max_errs(2).with_on_exhausted(OnExhausted::Stop);
    let parser = PadsParser::new(&schema, &registry)
        .with_options(ParseOptions { policy, ..Default::default() });
    let n = parser.records(CLF, "entry_t", &mask()).count();
    assert!(n < 12, "Stop must end the run early, parsed {n} records");
}
