//! E2: the Common Log Format description (Figure 4) against the exact
//! bytes of Figure 2, plus write-back and accumulator checks.

use pads::{descriptions, BaseMask, Mask, PadsParser, Prim, Registry, Value, Writer};

const FIGURE_2: &[u8] = b"207.136.97.49 - - [15/Oct/1997:18:46:51 -0700] \"GET /tk/p.txt HTTP/1.0\" 200 30\ntj62.aol.com - - [16/Oct/1997:14:32:22 -0700] \"POST /scpt/dd@grp.org/confirm HTTP/1.0\" 200 941\n";

fn setup() -> (pads::Schema, Registry) {
    (descriptions::clf(), Registry::standard())
}

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

#[test]
fn parses_figure_2_verbatim() {
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let (v, pd) = parser.parse_source(FIGURE_2, &mask());
    assert!(pd.is_ok(), "figure 2 must be clean: {:?}", pd.errors());
    assert_eq!(v.len(), Some(2));

    let e1 = v.index(0).unwrap();
    assert_eq!(e1.at_path("client.ip"), Some(&Value::Prim(Prim::Ip([207, 136, 97, 49]))));
    assert_eq!(e1.at_path("remoteID.unauthorized"), Some(&Value::Prim(Prim::Char(b'-'))));
    assert_eq!(e1.at_path("auth.unauthorized"), Some(&Value::Prim(Prim::Char(b'-'))));
    assert_eq!(e1.at_path("request.meth").and_then(Value::as_str), None); // enum, not string
    assert!(matches!(
        e1.at_path("request.meth"),
        Some(Value::Enum { variant, .. }) if variant == "GET"
    ));
    assert_eq!(e1.at_path("request.req_uri").and_then(Value::as_str), Some("/tk/p.txt"));
    assert_eq!(e1.at_path("request.version.major").and_then(Value::as_u64), Some(1));
    assert_eq!(e1.at_path("request.version.minor").and_then(Value::as_u64), Some(0));
    assert_eq!(e1.at_path("response").and_then(Value::as_u64), Some(200));
    assert_eq!(e1.at_path("length").and_then(Value::as_u64), Some(30));
    // The date is 18:46:51 -0700 = 01:46:51 UTC next day.
    match e1.at_path("date") {
        Some(Value::Prim(Prim::Date(d))) => {
            assert_eq!(d.tz_minutes, -420);
            assert_eq!(d.format("%D:%T"), "10/16/97:01:46:51");
        }
        other => panic!("expected a date, got {other:?}"),
    }

    let e2 = v.index(1).unwrap();
    assert_eq!(e2.at_path("client.host").and_then(Value::as_str), Some("tj62.aol.com"));
    assert!(matches!(
        e2.at_path("request.meth"),
        Some(Value::Enum { variant, .. }) if variant == "POST"
    ));
    assert_eq!(e2.at_path("length").and_then(Value::as_u64), Some(941));
}

#[test]
fn write_back_reproduces_figure_2_bytes() {
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let writer = Writer::new(&schema, &registry);
    let (v, pd) = parser.parse_source(FIGURE_2, &mask());
    assert!(pd.is_ok());
    let out = writer.write_source(&v).expect("clean values write back");
    assert_eq!(out.as_slice(), FIGURE_2);
}

#[test]
fn dash_length_is_the_section_5_2_error() {
    // §5.2: servers occasionally store '-' instead of the byte count, making
    // the length field fail as a Puint32.
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let bad = b"207.136.97.49 - - [15/Oct/1997:18:46:51 -0700] \"GET /x HTTP/1.0\" 200 -\n";
    let (_, pd) = parser.parse_source(bad, &mask());
    assert!(!pd.is_ok());
    let errors = pd.errors();
    assert!(
        errors.iter().any(|(p, _, _)| p.contains("length")),
        "the length field is the culprit: {errors:?}"
    );
}

#[test]
fn obsolete_methods_require_http_1_1() {
    // chkVersion (Figure 4): LINK/UNLINK are only legal under HTTP/1.1.
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let bad = b"1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] \"LINK /x HTTP/1.0\" 200 5\n";
    let (_, pd) = parser.parse_source(bad, &mask());
    assert!(pd.errors().iter().any(|(_, c, _)| c.is_semantic()), "{:?}", pd.errors());
    let ok = b"1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] \"LINK /x HTTP/1.1\" 200 5\n";
    let (_, pd) = parser.parse_source(ok, &mask());
    assert!(pd.is_ok(), "{:?}", pd.errors());
}

#[test]
fn response_code_range_is_enforced() {
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let bad = b"1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] \"GET /x HTTP/1.0\" 999 5\n";
    let (_, pd) = parser.parse_source(bad, &mask());
    assert!(pd.errors().iter().any(|(p, c, _)| p.contains("response") && c.is_semantic()));
}

#[test]
fn authenticated_users_take_the_id_branch() {
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let data = b"1.2.3.4 kfisher gruber [15/Oct/1997:18:46:51 -0700] \"GET /x HTTP/1.0\" 200 5\n";
    let (v, pd) = parser.parse_source(data, &mask());
    assert!(pd.is_ok(), "{:?}", pd.errors());
    assert_eq!(v.at_path("[0].remoteID.id").and_then(Value::as_str), Some("kfisher"));
    assert_eq!(v.at_path("[0].auth.id").and_then(Value::as_str), Some("gruber"));
}

#[test]
fn accumulator_profile_of_generated_clf_matches_injection() {
    use pads_tools::Accumulator;
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let config = pads_gen::ClfConfig { records: 3_000, ..pads_gen::ClfConfig::default() };
    let (data, stats) = pads_gen::clf::generate(&config);
    let m = mask();
    let mut acc = Accumulator::new(&schema, "entry_t");
    for (v, pd) in parser.records(&data, "entry_t", &m) {
        acc.add(&v, &pd);
    }
    assert_eq!(acc.records, 3_000);
    let len = acc.stats_at("length").expect("length stats");
    assert_eq!(len.bad as usize, stats.dash_lengths);
    assert_eq!(len.good as usize, 3_000 - stats.dash_lengths);
    let report = acc.report("<top>");
    assert!(report.contains("<top>.length : uint32"), "{report}");
}
