//! Figure 1's Regulus row: IP-backbone monitoring data whose headline
//! problem is *multiple missing-value representations* — §5.2 reports the
//! project using accumulator programs to find them all ("typical examples
//! include 0, a blank, NONE, and Nothing").

use pads::{compile, BaseMask, Mask, PadsParser, Registry, Value};
use pads_tools::Accumulator;

/// A Regulus-style measurement record: a router id, a link utilisation
/// that may be missing in four different ways, and a packet count.
const REGULUS: &str = r#"
    Punion util_t {
        Pstring_ME(:"NONE":) none;
        Pstring_ME(:"Nothing":) nothing;
        Pchar blank : blank == ' ';
        Pfloat64 value;
    };
    Precord Pstruct meas_t {
        Pstring(:',':) router;
        ','; util_t util;
        ','; Puint32 packets;
    };
    Psource Parray meass_t { meas_t[]; };
"#;

const DATA: &[u8] = b"edge1,0.73,1500\n\
edge2,NONE,200\n\
core1,0,0\n\
edge3,Nothing,75\n\
core2, ,90\n\
edge1,0.41,1250\n";

#[test]
fn all_four_missing_value_representations_parse() {
    let registry = Registry::standard();
    let schema = compile(REGULUS, &registry).unwrap();
    let parser = PadsParser::new(&schema, &registry);
    let (v, pd) = parser.parse_source(DATA, &Mask::all(BaseMask::CheckAndSet));
    assert!(pd.is_ok(), "{:?}", pd.errors());
    assert_eq!(v.len(), Some(6));
    let branch = |i: usize| match v.index(i).and_then(|r| r.field("util")) {
        Some(Value::Union { branch, .. }) => branch.clone(),
        other => panic!("expected union, got {other:?}"),
    };
    assert_eq!(branch(0), "value");
    assert_eq!(branch(1), "none");
    // `0` parses as the float 0.0 — the numeric missing-value encoding the
    // Sirius example also used; distinguishing it is the analyst's job.
    assert_eq!(branch(2), "value");
    assert_eq!(branch(3), "nothing");
    assert_eq!(branch(4), "blank");
}

#[test]
fn accumulator_reveals_the_representations() {
    // The §5.2 workflow: run the accumulator, read the union-tag
    // distribution, discover how many ways "no data" is spelled.
    let registry = Registry::standard();
    let schema = compile(REGULUS, &registry).unwrap();
    let parser = PadsParser::new(&schema, &registry);
    let mask = Mask::all(BaseMask::CheckAndSet);
    let mut acc = Accumulator::new(&schema, "meas_t");
    for (v, pd) in parser.records(DATA, "meas_t", &mask) {
        acc.add(&v, &pd);
    }
    let report = acc.report("<top>");
    // The union tag section lists every representation that occurred.
    let tag_section = report
        .split("<top>.util.<tag>")
        .nth(1)
        .expect("tag section present");
    let tag_section = &tag_section[..tag_section.find("<top>.").unwrap_or(tag_section.len())];
    for repr in ["none", "nothing", "blank", "value"] {
        assert!(tag_section.contains(repr), "missing {repr} in:\n{tag_section}");
    }
    // And the value distribution shows `0` hiding among real measurements.
    let vals = acc.stats_at("util.value").expect("value stats");
    assert!(vals.top(5).iter().any(|(v, _)| *v == "0"), "{:?}", vals.top(5));
}

#[test]
fn normalising_pass_unifies_them() {
    // The Figure 7 pattern applied to Regulus: rewrite every missing-value
    // spelling to the canonical NONE branch, verify, re-emit.
    let registry = Registry::standard();
    let schema = compile(REGULUS, &registry).unwrap();
    let parser = PadsParser::new(&schema, &registry);
    let writer = pads::Writer::new(&schema, &registry);
    let mask = Mask::all(BaseMask::CheckAndSet);
    let mut out = Vec::new();
    for (mut rec, pd) in parser.records(DATA, "meas_t", &mask) {
        assert!(pd.is_ok());
        let util = rec.field_mut("util").expect("util");
        let missing = matches!(
            util,
            Value::Union { branch, .. } if branch == "nothing" || branch == "blank"
        ) || matches!(
            util,
            Value::Union { branch, value, .. }
                if branch == "value" && value.as_prim() == Some(&pads::Prim::Float(0.0))
        );
        if missing {
            *util = Value::Union {
                branch: "none".into(),
                index: 0,
                value: Box::new(Value::Prim(pads::Prim::String("NONE".into()))),
            };
        }
        writer.write_named(&mut out, "meas_t", &rec).unwrap();
    }
    let text = String::from_utf8(out).unwrap();
    assert!(!text.contains("Nothing"));
    assert!(!text.contains(", ,"));
    assert_eq!(text.matches("NONE").count(), 4, "{text}");
    // The normalised output still parses cleanly.
    let (_, pd) = parser.parse_source(text.as_bytes(), &mask);
    assert!(pd.is_ok());
}
