//! The columnar accumulator fold must be invisible: folding a
//! [`RecordBatch`] column-at-a-time produces a report byte-identical to
//! the row-wise walk over the same records — on clean batches (where
//! the vectorised path engages) and on dirty batches (where
//! `add_batch` falls back to row-wise).

use pads::{descriptions, BaseMask, Mask, PadsParser, RecordBatch, Registry, Schema};
use pads_tools::Accumulator;

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

/// Report + counters from `add_batch` (columnar when eligible).
fn via_batch(schema: &Schema, name: &str, batch: &RecordBatch) -> (String, u64, u64) {
    let mut acc = Accumulator::new(schema, name);
    acc.add_batch(batch);
    (acc.report("<top>"), acc.records, acc.bad_records)
}

/// Report + counters from the per-record path the batch must match.
fn via_rows(schema: &Schema, name: &str, batch: &RecordBatch) -> (String, u64, u64) {
    let mut acc = Accumulator::new(schema, name);
    for (v, pd) in batch.rows() {
        acc.add(&v, &pd);
    }
    (acc.report("<top>"), acc.records, acc.bad_records)
}

fn sirius_batch(records: usize, syntax_errors: usize) -> (Schema, RecordBatch) {
    let schema = descriptions::sirius();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let (data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
        records,
        syntax_errors,
        sort_violations: 0,
        ..Default::default()
    });
    let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
    let (batch, _) = parser.records_batched(&data[body_start..], "entry_t", &mask());
    (schema, batch)
}

#[test]
fn columnar_fold_matches_rowwise_on_clean_sirius() {
    // Unions, enums-of-strings, optionals, and variable-length arrays —
    // the full dense-children geometry of the column tree.
    let (schema, batch) = sirius_batch(400, 0);
    assert_eq!(batch.error_rows(), 0, "corpus must be clean for the columnar path");
    let (col_report, col_records, col_bad) = via_batch(&schema, "entry_t", &batch);
    let (row_report, row_records, row_bad) = via_rows(&schema, "entry_t", &batch);
    assert_eq!(col_records, row_records);
    assert_eq!(col_bad, row_bad);
    assert_eq!(col_report, row_report);
}

#[test]
fn columnar_fold_matches_rowwise_on_clean_clf() {
    // IPs, dates, fixed-width ints, string leaves.
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let (data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
        records: 300,
        dash_length_rate: 0.0,
        ..Default::default()
    });
    let (batch, _) = parser.records_batched(&data, "entry_t", &mask());
    assert_eq!(batch.error_rows(), 0, "corpus must be clean for the columnar path");
    let (col_report, ..) = via_batch(&schema, "entry_t", &batch);
    let (row_report, ..) = via_rows(&schema, "entry_t", &batch);
    assert_eq!(col_report, row_report);
}

#[test]
fn dirty_batch_falls_back_and_still_matches_rowwise() {
    let (schema, batch) = sirius_batch(300, 20);
    assert!(batch.error_rows() > 0, "corpus must carry errors to exercise the fallback");
    let (col_report, col_records, col_bad) = via_batch(&schema, "entry_t", &batch);
    let (row_report, row_records, row_bad) = via_rows(&schema, "entry_t", &batch);
    assert!(col_bad > 0);
    assert_eq!(col_records, row_records);
    assert_eq!(col_bad, row_bad);
    assert_eq!(col_report, row_report);
}

#[test]
fn repeated_batches_accumulate_identically() {
    // Several add_batch calls against one accumulator must equal one
    // long row-wise stream — the tracked-map admission order and float
    // summation order survive batch boundaries.
    let (schema, batch) = sirius_batch(120, 0);
    let mut col_acc = Accumulator::new(&schema, "entry_t");
    col_acc.add_batch(&batch);
    col_acc.add_batch(&batch);
    let mut row_acc = Accumulator::new(&schema, "entry_t");
    for _ in 0..2 {
        for (v, pd) in batch.rows() {
            row_acc.add(&v, &pd);
        }
    }
    assert_eq!(col_acc.records, row_acc.records);
    assert_eq!(col_acc.report("<top>"), row_acc.report("<top>"));
    // Spot-check a leaf through the typed API too.
    let c = col_acc.stats_at("header.service_tn").unwrap();
    let r = row_acc.stats_at("header.service_tn").unwrap();
    assert_eq!(c.good, r.good);
    assert_eq!(c.num, r.num);
    assert_eq!(c.top(10), r.top(10));
}

#[test]
fn tracked_limit_admits_same_values_in_columnar_order() {
    // With a tiny tracked limit, *which* distinct values are admitted
    // depends on arrival order — the columnar fold must admit exactly
    // the ones the row-wise walk would.
    let (schema, batch) = sirius_batch(200, 0);
    let mut col_acc = Accumulator::with_limits(&schema, "entry_t", 3, 3);
    col_acc.add_batch(&batch);
    let mut row_acc = Accumulator::with_limits(&schema, "entry_t", 3, 3);
    for (v, pd) in batch.rows() {
        row_acc.add(&v, &pd);
    }
    assert_eq!(col_acc.report("<top>"), row_acc.report("<top>"));
}
