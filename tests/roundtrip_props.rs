//! Property-based tests on system-level invariants:
//!
//! * parse ∘ write ≡ identity on clean data (for every generator seed);
//! * the interpreter and the generated parsers agree on arbitrary inputs
//!   (clean or dirty);
//! * parsing is total: arbitrary byte soup never panics and always yields
//!   a structurally complete value.

use pads::{descriptions, BaseMask, Cursor, Mask, PadsParser, Registry, Writer};
use proptest::prelude::*;

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sirius_write_back_is_identity_on_clean_data(seed in 0u64..1_000_000) {
        let config = pads_gen::SiriusConfig {
            records: 20,
            seed,
            syntax_errors: 0,
            sort_violations: 0,
            ..pads_gen::SiriusConfig::default()
        };
        let (data, _) = pads_gen::sirius::generate(&config);
        let schema = descriptions::sirius();
        let registry = Registry::standard();
        let parser = PadsParser::new(&schema, &registry);
        let writer = Writer::new(&schema, &registry);
        let (v, pd) = parser.parse_source(&data, &mask());
        prop_assert!(pd.is_ok(), "{:?}", pd.errors().first());
        let out = writer.write_source(&v).expect("clean data writes back");
        prop_assert_eq!(out, data);
    }

    #[test]
    fn clf_write_back_is_identity_on_clean_data(seed in 0u64..1_000_000) {
        let config = pads_gen::ClfConfig {
            records: 20,
            seed,
            dash_length_rate: 0.0,
            ..pads_gen::ClfConfig::default()
        };
        let (data, _) = pads_gen::clf::generate(&config);
        let schema = descriptions::clf();
        let registry = Registry::standard();
        let parser = PadsParser::new(&schema, &registry);
        let writer = Writer::new(&schema, &registry);
        let (v, pd) = parser.parse_source(&data, &mask());
        prop_assert!(pd.is_ok(), "{:?}", pd.errors().first());
        let out = writer.write_source(&v).expect("clean data writes back");
        prop_assert_eq!(out, data);
    }

    #[test]
    fn interpreter_and_generated_parser_agree_on_dirty_sirius(
        seed in 0u64..1_000_000,
        syntax_errors in 0usize..6,
        sort_violations in 0usize..3,
    ) {
        let config = pads_gen::SiriusConfig {
            records: 30,
            seed,
            syntax_errors,
            sort_violations,
            ..pads_gen::SiriusConfig::default()
        };
        let (data, _) = pads_gen::sirius::generate(&config);
        let schema = descriptions::sirius();
        let registry = Registry::standard();
        let parser = PadsParser::new(&schema, &registry);
        let (iv, ipd) = parser.parse_source(&data, &mask());
        let mut cur = Cursor::new(&data);
        let (gv, gpd) = pads::generated::sirius::parse_source(&mut cur, &mask());
        prop_assert_eq!(ipd.is_ok(), gpd.is_ok());
        prop_assert_eq!(iv.at_path("es").unwrap().len(), Some(gv.es.0.len()));
        // Clean records carry identical order numbers in order.
        let n = gv.es.0.len();
        for i in 0..n {
            let ie = iv.at_path(&format!("es.[{i}].header.order_num"))
                .and_then(pads::Value::as_u64);
            prop_assert_eq!(ie, Some(gv.es.0[i].header.order_num as u64));
        }
    }

    #[test]
    fn parsing_arbitrary_bytes_is_total(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        // No panic, and the representation always has the declared shape.
        let schema = descriptions::sirius();
        let registry = Registry::standard();
        let parser = PadsParser::new(&schema, &registry);
        let (v, _) = parser.parse_source(&data, &mask());
        prop_assert!(v.at_path("h").is_some());
        prop_assert!(v.at_path("es").is_some());
        let mut cur = Cursor::new(&data);
        let (gv, _) = pads::generated::sirius::parse_source(&mut cur, &mask());
        let _ = gv.es.0.len();
    }

    #[test]
    fn parsing_ascii_lines_is_total_for_clf(
        lines in proptest::collection::vec("[ -~]{0,60}", 0..8),
    ) {
        let data = lines.join("\n").into_bytes();
        let schema = descriptions::clf();
        let registry = Registry::standard();
        let parser = PadsParser::new(&schema, &registry);
        let (_, pd) = parser.parse_source(&data, &mask());
        // Error count is bounded by input size (no runaway duplication).
        prop_assert!(pd.nerr as usize <= data.len() + lines.len() + 1);
    }

    #[test]
    fn generic_generator_output_always_parses(seed in 0u64..1_000_000) {
        let registry = Registry::standard();
        let schema = pads::compile(
            r#"
            Penum tag_t { AA, BB, CC };
            Punion v_t { Puint32 num; Pstring(:';':) word; };
            Precord Pstruct r_t {
                tag_t tag;
                ';'; Popt Puint16 opt;
                ';'; v_t v;
                ';'; Pip ip;
            };
            Psource Parray rs_t { r_t[]; };
            "#,
            &registry,
        ).unwrap();
        let config = pads_gen::GenConfig { seed, ..pads_gen::GenConfig::default() };
        let mut g = pads_gen::Generator::new(&schema, config);
        let data = g.generate_records("r_t", 25);
        let parser = PadsParser::new(&schema, &registry);
        let (v, pd) = parser.parse_source(&data, &mask());
        prop_assert!(pd.is_ok(), "{:?}", pd.errors().first());
        prop_assert_eq!(v.len(), Some(25));
    }
}
