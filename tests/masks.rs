//! Mask semantics across the system: the application-specific-cost knob of
//! §3/§4 (motivated by the Hancock call-detail streams in §5.1.2).

use pads::{descriptions, BaseMask, Mask, PadsParser, Registry};

fn sirius_with_violations() -> Vec<u8> {
    let config = pads_gen::SiriusConfig {
        records: 100,
        syntax_errors: 0,
        sort_violations: 10,
        ..pads_gen::SiriusConfig::default()
    };
    pads_gen::sirius::generate(&config).0
}

#[test]
fn check_and_set_catches_all_injected_violations() {
    let schema = descriptions::sirius();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let data = sirius_with_violations();
    let (_, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
    let forall = pd
        .errors()
        .iter()
        .filter(|(_, c, _)| *c == pads::ErrorCode::ForallViolation)
        .count();
    assert_eq!(forall, 10);
}

#[test]
fn set_mask_skips_semantic_checks_but_not_syntax() {
    let schema = descriptions::sirius();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let data = sirius_with_violations();
    // All constraint checking off: the sort violations vanish.
    let (_, pd) = parser.parse_source(&data, &Mask::all(BaseMask::Set));
    assert!(pd.is_ok(), "{:?}", pd.errors());
    // But syntax errors still surface.
    let config = pads_gen::SiriusConfig {
        records: 50,
        syntax_errors: 5,
        sort_violations: 0,
        ..pads_gen::SiriusConfig::default()
    };
    let (dirty, _) = pads_gen::sirius::generate(&config);
    let (_, pd) = parser.parse_source(&dirty, &Mask::all(BaseMask::Set));
    assert!(!pd.is_ok());
    assert!(pd.errors().iter().all(|(_, c, _)| !c.is_semantic()));
}

#[test]
fn targeted_mask_disables_one_constraint_only() {
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    // Two semantic problems: response out of range AND obsolete method
    // under HTTP/1.0.
    let data = b"1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] \"LINK /x HTTP/1.0\" 999 5\n";
    let all = Mask::all(BaseMask::CheckAndSet);
    let (_, pd) = parser.parse_source(data, &all);
    assert_eq!(pd.errors().len(), 2, "{:?}", pd.errors());
    // Turn off only the response-range constraint.
    let mut m = all.clone();
    m.child_mut(pads_runtime::mask::ELT).set_at("response", BaseMask::Set);
    let (_, pd) = parser.parse_source(data, &m);
    let errors = pd.errors();
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(errors[0].0.contains("request"));
}

#[test]
fn generated_parser_honours_masks_identically() {
    use pads::generated::sirius as gen_sirius;
    let data = sirius_with_violations();
    let mut cur = pads::Cursor::new(&data);
    let (_, pd) = gen_sirius::parse_source(&mut cur, &Mask::all(BaseMask::Set));
    assert!(pd.is_ok(), "compiled parser under Set mask: {:?}", pd.errors());
    let mut cur = pads::Cursor::new(&data);
    let (_, pd) = gen_sirius::parse_source(&mut cur, &Mask::all(BaseMask::CheckAndSet));
    assert!(!pd.is_ok());
}

#[test]
fn ignore_mask_still_consumes_input() {
    // Ignore means "don't check, don't promise a representation" — the
    // physical parse must still advance so later fields line up.
    let registry = Registry::standard();
    let schema = pads::compile(
        "Precord Pstruct r_t { Puint32 a; '|'; Puint32 b; }; Psource Parray rs_t { r_t[]; };",
        &registry,
    )
    .unwrap();
    let parser = PadsParser::new(&schema, &registry);
    let mut m = Mask::all(BaseMask::CheckAndSet);
    m.child_mut(pads_runtime::mask::ELT).set_at("a", BaseMask::Ignore);
    let (v, pd) = parser.parse_source(b"1|2\n3|4\n", &m);
    assert!(pd.is_ok());
    assert_eq!(v.at_path("[1].b").and_then(pads::Value::as_u64), Some(4));
}
