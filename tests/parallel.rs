//! Parallel/sequential equivalence: the record-sharded engine must be
//! byte-identical to the sequential record loop — same values, same parse
//! descriptors (with global coordinates), same error-budget counters, same
//! observer counter snapshots — at every job count, for every recovery
//! policy, on both the curated torture corpora and a fault-injected sweep.
//!
//! Also home to the `Popt` backtracking regression test: a failed optional
//! must leave the cursor offset, record coordinates, and error budget
//! exactly as its single checkpoint saw them.

use std::cell::RefCell;
use std::rc::Rc;

use pads::generated::clf as gen_clf;
use pads::{
    compile, descriptions, BaseMask, ErrorBudget, Mask, OnExhausted, PadsParser, ParseDesc,
    ParseOptions, RecoveryPolicy, Registry, Schema, Value,
};
use pads_observe::MetricsSink;
use pads_runtime::{Cursor, FaultPlan, MetricsCore, ObsHandle, WorkerObs};

const CLF: &[u8] = include_bytes!("data/torture_clf.log");
const SIRIUS: &[u8] = include_bytes!("data/torture_sirius.txt");
const MIXED: &[u8] = include_bytes!("data/torture_mixed.txt");

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

/// The policy matrix every equivalence check runs under: unlimited, plus
/// each `OnExhausted` mode with a budget small enough to trip on the
/// torture corpora, plus the orthogonal per-record and panic-skip limits.
fn policies() -> Vec<RecoveryPolicy> {
    vec![
        RecoveryPolicy::unlimited(),
        RecoveryPolicy::unlimited().with_max_errs(2).with_on_exhausted(OnExhausted::Stop),
        RecoveryPolicy::unlimited().with_max_errs(2).with_on_exhausted(OnExhausted::SkipRecord),
        RecoveryPolicy::unlimited().with_max_errs(3).with_on_exhausted(OnExhausted::BestEffort),
        RecoveryPolicy::unlimited().with_max_record_errs(0),
        RecoveryPolicy::unlimited().with_max_panic_skip(0).with_on_exhausted(OnExhausted::SkipRecord),
    ]
}

/// Sequential ground truth: drain `records()` and read back the budget.
fn sequential(
    schema: &Schema,
    registry: &Registry,
    policy: RecoveryPolicy,
    data: &[u8],
    record: &str,
) -> (Vec<(Value, ParseDesc)>, ErrorBudget) {
    let parser = PadsParser::new(schema, registry)
        .with_options(ParseOptions { policy, ..Default::default() });
    let mask = mask();
    let mut it = parser.records(data, record, &mask);
    let items: Vec<_> = it.by_ref().collect();
    (items, it.budget())
}

fn assert_equivalent(label: &str, schema: &Schema, data: &[u8], record: &str) {
    let registry = Registry::standard();
    for policy in policies() {
        let (seq_items, seq_budget) = sequential(schema, &registry, policy, data, record);
        for jobs in [1, 2, 4] {
            let parser = PadsParser::new(schema, &registry)
                .with_options(ParseOptions { policy, ..Default::default() });
            let (par_items, par_budget) = parser.records_par(data, record, &mask(), jobs);
            assert_eq!(
                par_items.len(),
                seq_items.len(),
                "{label} jobs={jobs} policy={policy:?}: record count"
            );
            for (i, (par, seq)) in par_items.iter().zip(&seq_items).enumerate() {
                assert_eq!(par.0, seq.0, "{label} jobs={jobs} policy={policy:?}: value [{i}]");
                assert_eq!(
                    par.1, seq.1,
                    "{label} jobs={jobs} policy={policy:?}: descriptor [{i}]"
                );
            }
            assert_eq!(
                par_budget, seq_budget,
                "{label} jobs={jobs} policy={policy:?}: budget"
            );
        }
        // The columnar close path: folding the sharded stream into a
        // RecordBatch must reconstruct every record byte-identically,
        // error records included. Clean rows share one canonical OK
        // descriptor (kind `None`), so descriptors are compared exactly
        // on error rows and on state elsewhere.
        for jobs in [1, 4] {
            let parser = PadsParser::new(schema, &registry)
                .with_options(ParseOptions { policy, ..Default::default() });
            let (batch, batch_budget) =
                parser.records_par_batched(data, record, &mask(), jobs);
            assert_eq!(
                batch.len(),
                seq_items.len(),
                "{label} jobs={jobs} policy={policy:?}: batch row count"
            );
            for (i, (v, pd)) in seq_items.iter().enumerate() {
                assert_eq!(
                    batch.row(i),
                    *v,
                    "{label} jobs={jobs} policy={policy:?}: batch row [{i}]"
                );
                let bpd = batch.pd(i);
                assert_eq!(
                    bpd.is_ok(),
                    pd.is_ok(),
                    "{label} jobs={jobs} policy={policy:?}: batch pd state [{i}]"
                );
                if !pd.is_ok() {
                    assert_eq!(
                        bpd, *pd,
                        "{label} jobs={jobs} policy={policy:?}: batch error pd [{i}]"
                    );
                }
            }
            assert_eq!(
                batch_budget, seq_budget,
                "{label} jobs={jobs} policy={policy:?}: batch budget"
            );
        }
    }
}

#[test]
fn torture_clf_parallel_matches_sequential() {
    assert_equivalent("clf", &descriptions::clf(), CLF, "entry_t");
}

#[test]
fn torture_sirius_parallel_matches_sequential() {
    assert_equivalent("sirius", &descriptions::sirius(), SIRIUS, "entry_t");
}

#[test]
fn torture_mixed_parallel_matches_sequential() {
    assert_equivalent("mixed", &descriptions::mixed(), MIXED, "rec_t");
}

/// 1000-seed fault sweep: every deterministic mutation of a clean corpus
/// parses identically at `--jobs {1,2,4}`, cycling through the recovery
/// policies so shard budget-replay runs against injected faults too.
#[test]
fn fault_harness_parallel_matches_sequential() {
    const SEEDS: u64 = 1000;
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let clean =
        pads_gen::clf::generate(&pads_gen::ClfConfig { records: 12, ..Default::default() }).0;
    let policies = policies();
    for seed in 0..SEEDS {
        let data = FaultPlan::for_seed(seed).apply(&clean);
        let policy = policies[(seed as usize) % policies.len()];
        let (seq_items, seq_budget) = sequential(&schema, &registry, policy, &data, "entry_t");
        for jobs in [2, 4] {
            let parser = PadsParser::new(&schema, &registry)
                .with_options(ParseOptions { policy, ..Default::default() });
            let (par_items, par_budget) = parser.records_par(&data, "entry_t", &mask(), jobs);
            assert_eq!(
                par_items, seq_items,
                "seed {seed} jobs={jobs} policy={policy:?}: items diverge"
            );
            assert_eq!(
                par_budget, seq_budget,
                "seed {seed} jobs={jobs} policy={policy:?}: budget diverges"
            );
        }
        // Columnar round trip on the same faulted corpus: every record —
        // including the ones the recovery policy patched up — must come
        // back out of the batch byte-identical.
        let mut batch = pads::RecordBatch::new();
        for (v, pd) in &seq_items {
            batch.push(v, pd);
        }
        for (i, (v, pd)) in seq_items.iter().enumerate() {
            assert_eq!(batch.row(i), *v, "seed {seed}: batch row [{i}] diverges");
            assert_eq!(
                batch.pd(i).is_ok(),
                pd.is_ok(),
                "seed {seed}: batch pd state [{i}] diverges"
            );
            if !pd.is_ok() {
                assert_eq!(batch.pd(i), *pd, "seed {seed}: batch error pd [{i}] diverges");
            }
        }
    }
}

/// Observer equivalence: per-worker `MetricsSink`s merged in shard order
/// produce the same deterministic counter snapshot as one sink fed by the
/// sequential record loop.
#[test]
fn parallel_metrics_merge_matches_sequential_snapshot() {
    let schema = descriptions::clf();
    let registry = Registry::standard();

    let seq_sink = Rc::new(RefCell::new(MetricsSink::new()));
    let parser = PadsParser::new(&schema, &registry)
        .with_observer(ObsHandle::from_rc(seq_sink.clone()));
    let _ = parser.records(CLF, "entry_t", &mask()).count();
    let seq_json = seq_sink.borrow().counts_json();

    for jobs in [1, 2, 4] {
        let parser = PadsParser::new(&schema, &registry);
        let (_, _, sinks) = parser.records_par_observed(CLF, "entry_t", &mask(), jobs, || {
            let m = Rc::new(RefCell::new(MetricsSink::new()));
            let handle = ObsHandle::from_rc(m.clone());
            // Per-record harvest: drain the sink's accumulation since the
            // previous call, leaving it fresh for the next record.
            let harvest: Box<dyn FnMut() -> MetricsSink> =
                Box::new(move || std::mem::take(&mut *m.borrow_mut()));
            (WorkerObs::observer(handle), harvest)
        });
        let mut merged = MetricsSink::new();
        for sink in &sinks {
            merged.merge(sink);
        }
        assert_eq!(
            merged.counts_json(),
            seq_json,
            "jobs={jobs}: merged metrics snapshot diverges from sequential"
        );
    }
}

/// Dense-core equivalence: per-worker `MetricsCore` shards (the `Send`-able
/// counter slabs, attached without any `Observer`) drained per record and
/// merged in record order produce the same snapshot as both a sequential
/// dense-core run and the legacy observer feed above.
#[test]
fn parallel_dense_cores_merge_matches_sequential_snapshot() {
    let schema = descriptions::clf();
    let registry = Registry::standard();

    // Legacy observer ground truth.
    let obs_sink = Rc::new(RefCell::new(MetricsSink::new()));
    let parser =
        PadsParser::new(&schema, &registry).with_observer(ObsHandle::from_rc(obs_sink.clone()));
    let _ = parser.records(CLF, "entry_t", &mask()).count();
    let obs_json = obs_sink.borrow().counts_json();

    // Sequential dense core.
    let parser = PadsParser::new(&schema, &registry);
    let seq_core = parser.metrics_core().into_handle();
    let parser = parser.with_metrics(seq_core.clone());
    let _ = parser.records(CLF, "entry_t", &mask()).count();
    let seq_json = MetricsSink::from_core(seq_core.borrow_mut().drain()).counts_json();
    assert_eq!(seq_json, obs_json, "dense core diverges from legacy observer feed");

    for jobs in [1, 2, 4] {
        let parser = PadsParser::new(&schema, &registry);
        let (_, _, cores) = parser.records_par_observed(CLF, "entry_t", &mask(), jobs, || {
            let core = PadsParser::new(&schema, &registry).metrics_core().into_handle();
            let att = WorkerObs::metrics(core.clone());
            // drain() keeps the interning table with the live core, so the
            // worker's trusted dense ids stay valid across harvests.
            let harvest: Box<dyn FnMut() -> MetricsCore> =
                Box::new(move || core.borrow_mut().drain());
            (att, harvest)
        });
        let mut merged = MetricsCore::new();
        for core in &cores {
            merged.merge(core);
        }
        assert_eq!(
            MetricsSink::from_core(merged).counts_json(),
            seq_json,
            "jobs={jobs}: merged dense cores diverge from sequential"
        );
    }
}

/// The generated engine's `parse_records_par` agrees with a sequential
/// loop of the generated record reader, values, descriptors, and budget,
/// on the torture corpus and under a tripping budget.
#[test]
fn generated_parallel_matches_sequential_loop() {
    fn factory(policy: RecoveryPolicy) -> impl for<'a> Fn(&'a [u8]) -> Cursor<'a> + Sync {
        move |d| Cursor::new(d).with_policy(policy)
    }
    for policy in policies() {
        // Sequential ground truth over the same reader.
        let mut cur = factory(policy)(CLF);
        let mut seq = Vec::new();
        loop {
            if cur.at_eof() {
                break;
            }
            let before = cur.offset();
            let item = gen_clf::EntryT::read(&mut cur, &mask());
            seq.push(item);
            if cur.offset() == before {
                break;
            }
        }
        let seq_budget = cur.budget();
        for jobs in [1, 2, 4] {
            let (par, par_budget) =
                gen_clf::parse_records_par(CLF, &mask(), jobs, factory(policy));
            assert_eq!(par.len(), seq.len(), "jobs={jobs} policy={policy:?}: record count");
            for (i, ((pv, ppd), (sv, spd))) in par.iter().zip(&seq).enumerate() {
                assert_eq!(pv, sv, "jobs={jobs} policy={policy:?}: value [{i}]");
                // Sequential descriptors carry cursor-local coordinates that
                // are already global (the cursor starts at 0), so they must
                // match the rebased parallel ones exactly.
                assert_eq!(ppd, spd, "jobs={jobs} policy={policy:?}: descriptor [{i}]");
            }
            assert_eq!(par_budget, seq_budget, "jobs={jobs} policy={policy:?}: budget");
        }
    }
}

/// Regression (satellite): a failed `Popt` must restore from its single
/// checkpoint — cursor offset, record coordinates, and error budget all
/// exactly as before the attempt.
#[test]
fn failed_popt_leaves_cursor_and_budget_untouched() {
    let registry = Registry::standard();
    let schema = compile("Pstruct t { Popt Puint32 b; };", &registry).expect("compiles");
    let parser = PadsParser::new(&schema, &registry);
    let mut cur = parser.open(b"xyz");
    let before_pos = cur.position();
    let before_budget = cur.budget();
    let (v, pd) = parser.parse_named(&mut cur, "t", &[], &mask());
    assert_eq!(v.at_path("b"), Some(&Value::Opt(None)));
    assert!(pd.is_ok(), "a missing optional is not an error: {pd}");
    assert_eq!(cur.position(), before_pos, "failed Popt moved the cursor");
    assert_eq!(cur.budget(), before_budget, "failed Popt charged the budget");

    // Inside a record, the record coordinates survive too: the field after
    // the optional sees the exact bytes the optional declined.
    let schema = compile(
        r#"
        Precord Pstruct line_t { Popt Puint32 b; Pstring(:'|':) s; '|'; Puint32 n; };
        Psource Parray lines_t { line_t[]; };
        "#,
        &registry,
    )
    .expect("compiles");
    let parser = PadsParser::new(&schema, &registry);
    let items: Vec<_> = parser.records(b"abc|7\nxy|9\n", "line_t", &mask()).collect();
    assert_eq!(items.len(), 2);
    for (i, (v, pd)) in items.iter().enumerate() {
        assert!(pd.is_ok(), "[{i}]: {pd}");
        assert_eq!(v.at_path("b"), Some(&Value::Opt(None)), "[{i}]");
    }
    assert_eq!(items[0].0.at_path("s").and_then(Value::as_str), Some("abc"));
    assert_eq!(items[1].0.at_path("n").and_then(Value::as_u64), Some(9));
}
