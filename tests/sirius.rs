//! E3/E5: the Sirius provisioning description (Figure 5) against the exact
//! bytes of Figure 3, plus the Figure 7 clean-and-normalise flow.

use pads::{descriptions, BaseMask, Mask, PadsParser, Prim, Registry, Value, Verifier, Writer};

const FIGURE_3: &[u8] = b"0|1005022800\n9152|9152|1|9735551212|0||9085551212|07988|no_ii152272|EDTF_6|0|APRL1|DUO|10|1000295291\n9153|9153|1|0|0|0|0||152268|LOC_6|0|FRDW1|DUO|LOC_CRTE|1001476800|LOC_OS_10|1001649601\n";

fn setup() -> (pads::Schema, Registry) {
    (descriptions::sirius(), Registry::standard())
}

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

#[test]
fn parses_figure_3_verbatim() {
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let (v, pd) = parser.parse_source(FIGURE_3, &mask());
    assert!(pd.is_ok(), "figure 3 must be clean: {:?}", pd.errors());
    assert_eq!(v.at_path("h.tstamp").and_then(Value::as_u64), Some(1_005_022_800));
    assert_eq!(v.at_path("es").unwrap().len(), Some(2));

    let r1 = v.at_path("es.[0]").unwrap();
    assert_eq!(r1.at_path("header.order_num").and_then(Value::as_u64), Some(9152));
    assert_eq!(r1.at_path("header.service_tn").and_then(Value::as_u64), Some(9_735_551_212));
    assert_eq!(r1.at_path("header.billing_tn").and_then(Value::as_u64), Some(0));
    assert_eq!(r1.at_path("header.nlp_service_tn"), Some(&Value::Opt(None)));
    assert_eq!(r1.at_path("header.zip_code").and_then(Value::as_str), Some("07988"));
    // The billing id was generated: the "no_ii" branch of dib_ramp_t.
    assert_eq!(r1.at_path("header.ramp.genRamp.id").and_then(Value::as_u64), Some(152_272));
    assert_eq!(r1.at_path("header.order_type").and_then(Value::as_str), Some("EDTF_6"));
    assert_eq!(r1.at_path("header.stream").and_then(Value::as_str), Some("DUO"));
    assert_eq!(r1.at_path("events").unwrap().len(), Some(1));
    assert_eq!(r1.at_path("events.[0].state").and_then(Value::as_str), Some("10"));
    assert_eq!(r1.at_path("events.[0].tstamp").and_then(Value::as_u64), Some(1_000_295_291));

    let r2 = v.at_path("es.[1]").unwrap();
    assert_eq!(r2.at_path("header.zip_code"), Some(&Value::Opt(None)));
    assert_eq!(r2.at_path("header.ramp.ramp").and_then(Value::as_i64), Some(152_268));
    assert_eq!(r2.at_path("events").unwrap().len(), Some(2));
    assert_eq!(r2.at_path("events.[1].state").and_then(Value::as_str), Some("LOC_OS_10"));
}

#[test]
fn write_back_reproduces_figure_3_bytes() {
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let writer = Writer::new(&schema, &registry);
    let (v, pd) = parser.parse_source(FIGURE_3, &mask());
    assert!(pd.is_ok());
    let out = writer.write_source(&v).expect("clean values write back");
    assert_eq!(out.as_slice(), FIGURE_3);
}

#[test]
fn unsorted_timestamps_violate_the_pwhere_clause() {
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let data = b"0|1005022800\n9153|9153|1|0|0|0|0||152268|LOC_6|0|F|DUO|A|1001649601|B|1001476800\n";
    let (_, pd) = parser.parse_source(data, &mask());
    let errors = pd.errors();
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert_eq!(errors[0].1, pads::ErrorCode::ForallViolation);
    // Figure 7 turns exactly that check off.
    let mut m = mask();
    m.child_mut("es")
        .child_mut(pads_runtime::mask::ELT)
        .set_compound_at("events", BaseMask::Set);
    let (_, pd) = parser.parse_source(data, &m);
    assert!(pd.is_ok(), "{:?}", pd.errors());
}

/// The `cnvPhoneNumbers` transformation of Figure 7: unify the two
/// missing-value representations by turning literal `0` phone numbers into
/// `NONE`.
fn cnv_phone_numbers(entry: &mut Value) {
    let header = entry.field_mut("header").expect("entry has a header");
    for field in ["service_tn", "billing_tn", "nlp_service_tn", "nlp_billing_tn"] {
        let v = header.field_mut(field).expect("phone field exists");
        if let Value::Opt(Some(inner)) = v {
            if inner.as_u64() == Some(0) {
                *v = Value::Opt(None);
            }
        }
    }
}

#[test]
fn figure_7_clean_and_normalise_flow() {
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let writer = Writer::new(&schema, &registry);
    let verifier = Verifier::new(&schema);

    let config = pads_gen::SiriusConfig {
        records: 200,
        syntax_errors: 5,
        sort_violations: 1,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, stats) = pads_gen::sirius::generate(&config);

    // Figure 7 mask: check everything except the event-sort Pwhere clause.
    let mut m = mask();
    m.set_compound_at("events", BaseMask::Set);

    let mut clean_file = Vec::new();
    let mut err_records = 0usize;
    let mut cleaned = 0usize;
    // Skip the summary header record, then go record at a time.
    let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
    for (mut entry, pd) in parser.records(&data[body_start..], "entry_t", &m) {
        if !pd.is_ok() {
            err_records += 1;
            continue;
        }
        cnv_phone_numbers(&mut entry);
        // entry_t_verify equivalent (ignoring the masked sort check is not
        // possible here, so only genuinely sorted records pass; the one
        // injected violation is counted as clean by the mask but fails the
        // full verify).
        let violations = verifier.verify_named("entry_t", &entry);
        let only_sort = violations
            .iter()
            .all(|v| v.code == pads::ErrorCode::ForallViolation);
        assert!(violations.is_empty() || only_sort, "{violations:?}");
        writer
            .write_named(&mut clean_file, "entry_t", &entry)
            .expect("normalised record writes back");
        cleaned += 1;
    }
    assert_eq!(err_records, stats.syntax_error_records.len());
    assert_eq!(cleaned, 200 - err_records);
    // The cleaned file has no literal `0` phone numbers left.
    let reparsed = parser.records(&clean_file, "entry_t", &m);
    for (entry, pd) in reparsed {
        assert!(pd.is_ok());
        for field in ["service_tn", "billing_tn", "nlp_service_tn", "nlp_billing_tn"] {
            let v = entry.at_path(&format!("header.{field}"));
            assert_ne!(v.and_then(Value::as_u64), Some(0), "zeroes must be gone");
        }
    }
}

#[test]
fn streamed_and_bulk_parses_agree_on_figure_3() {
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let m = mask();
    let (bulk, _) = parser.parse_source(FIGURE_3, &m);
    let body_start = FIGURE_3.iter().position(|&b| b == b'\n').unwrap() + 1;
    let streamed: Vec<Value> = parser
        .records(&FIGURE_3[body_start..], "entry_t", &m)
        .map(|(v, _)| v)
        .collect();
    assert_eq!(bulk.at_path("es"), Some(&Value::Array(streamed)));
}

#[test]
fn accumulator_finds_both_missing_value_representations() {
    // §5.2: "An accumulator program revealed the two representations of
    // missing phone numbers in the Sirius data."
    use pads_tools::Accumulator;
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let config = pads_gen::SiriusConfig {
        records: 500,
        syntax_errors: 0,
        sort_violations: 0,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, _) = pads_gen::sirius::generate(&config);
    let m = mask();
    let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
    let mut acc = Accumulator::new(&schema, "entry_t");
    for (v, pd) in parser.records(&data[body_start..], "entry_t", &m) {
        acc.add(&v, &pd);
    }
    let report = acc.report("<top>");
    // The opt-presence distribution shows NONE (missing) ...
    assert!(report.contains("NONE"), "{report}");
    // ... and the value distribution shows the literal 0 representation.
    let tn = acc.stats_at("header.service_tn").expect("service_tn stats");
    assert!(tn.top(3).iter().any(|(v, _)| *v == "0"), "{:?}", tn.top(3));
}

#[test]
fn header_prim_types_match_figure_5() {
    let (schema, registry) = setup();
    let parser = PadsParser::new(&schema, &registry);
    let (v, _) = parser.parse_source(FIGURE_3, &mask());
    // ord_version is a Puint32 → Prim::Uint.
    assert!(matches!(
        v.at_path("es.[0].header.ord_version"),
        Some(Value::Prim(Prim::Uint(1)))
    ));
    // ramp (taken branch) is a Pint64 → Prim::Int.
    assert!(matches!(
        v.at_path("es.[1].header.ramp.ramp"),
        Some(Value::Prim(Prim::Int(152_268)))
    ));
}
