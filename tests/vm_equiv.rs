//! VM/interpreter equivalence: the bytecode tier (`Engine::Vm`) must be
//! byte-identical to the tree-walking interpreter — same values, same parse
//! descriptors, same error-budget counters, same observer counter
//! snapshots — on the curated torture corpora under every recovery policy,
//! across the sequential, record-sharded (`--jobs {1,4}`), columnar-batch,
//! and journaled kill-and-resume entry points, and across a 1000-seed
//! fault-injection sweep. The generated modules are cross-checked too
//! (values plus descriptor verdicts, the same contract the codegen
//! equivalence suite holds the interpreter to), and the per-schema program
//! cache and charset-mismatch interpreter fallback get direct coverage.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use pads::generated::clf as gen_clf;
use pads::{
    descriptions, BaseMask, Engine, ErrorBudget, Mask, OnExhausted, PadsParser, ParseDesc,
    ParseOptions, RecoveryPolicy, Registry, ResumePoint, Schema, Value,
};
use pads_observe::MetricsSink;
use pads_runtime::{Charset, Cursor, FaultPlan, KillPlan, ObsHandle};

const CLF: &[u8] = include_bytes!("data/torture_clf.log");
const SIRIUS: &[u8] = include_bytes!("data/torture_sirius.txt");
const MIXED: &[u8] = include_bytes!("data/torture_mixed.txt");

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

/// Same policy matrix as the parallel-equivalence harness: unlimited plus
/// each `OnExhausted` mode with a budget small enough to trip, plus the
/// orthogonal per-record and panic-skip limits.
fn policies() -> Vec<RecoveryPolicy> {
    vec![
        RecoveryPolicy::unlimited(),
        RecoveryPolicy::unlimited().with_max_errs(2).with_on_exhausted(OnExhausted::Stop),
        RecoveryPolicy::unlimited().with_max_errs(2).with_on_exhausted(OnExhausted::SkipRecord),
        RecoveryPolicy::unlimited().with_max_errs(3).with_on_exhausted(OnExhausted::BestEffort),
        RecoveryPolicy::unlimited().with_max_record_errs(0),
        RecoveryPolicy::unlimited().with_max_panic_skip(0).with_on_exhausted(OnExhausted::SkipRecord),
    ]
}

fn opts(policy: RecoveryPolicy, engine: Engine) -> ParseOptions {
    ParseOptions { policy, engine, ..Default::default() }
}

/// Drains `records()` under the given options and reads back the budget.
fn run(
    schema: &Schema,
    registry: &Registry,
    options: ParseOptions,
    data: &[u8],
    record: &str,
) -> (Vec<(Value, ParseDesc)>, ErrorBudget) {
    let parser = PadsParser::new(schema, registry).with_options(options);
    let m = mask();
    let mut it = parser.records(data, record, &m);
    let items: Vec<_> = it.by_ref().collect();
    (items, it.budget())
}

/// Every entry point of the VM engine against the interpreter ground
/// truth: sequential records, record-sharded records, columnar batches.
fn assert_engines_agree(label: &str, schema: &Schema, data: &[u8], record: &str) {
    let registry = Registry::standard();
    for policy in policies() {
        let (iv, ib) = run(schema, &registry, opts(policy, Engine::Interp), data, record);
        let (vv, vb) = run(schema, &registry, opts(policy, Engine::Vm), data, record);
        assert_eq!(vv.len(), iv.len(), "{label} policy={policy:?}: record count");
        for (i, (vm, interp)) in vv.iter().zip(&iv).enumerate() {
            assert_eq!(vm.0, interp.0, "{label} policy={policy:?}: value [{i}]");
            assert_eq!(vm.1, interp.1, "{label} policy={policy:?}: descriptor [{i}]");
        }
        assert_eq!(vb, ib, "{label} policy={policy:?}: budget");

        // Record-sharded: the VM runs inside each worker thread.
        for jobs in [1, 4] {
            let parser =
                PadsParser::new(schema, &registry).with_options(opts(policy, Engine::Vm));
            let (par, par_budget) = parser.records_par(data, record, &mask(), jobs);
            assert_eq!(
                par, iv,
                "{label} jobs={jobs} policy={policy:?}: sharded VM items diverge"
            );
            assert_eq!(
                par_budget, ib,
                "{label} jobs={jobs} policy={policy:?}: sharded VM budget diverges"
            );
        }

        // Columnar close path: VM-parsed rows must reconstruct
        // byte-identically, error rows with their exact descriptors.
        for jobs in [1, 4] {
            let parser =
                PadsParser::new(schema, &registry).with_options(opts(policy, Engine::Vm));
            let (batch, batch_budget) = parser.records_par_batched(data, record, &mask(), jobs);
            assert_eq!(
                batch.len(),
                iv.len(),
                "{label} jobs={jobs} policy={policy:?}: VM batch row count"
            );
            for (i, (v, pd)) in iv.iter().enumerate() {
                assert_eq!(
                    batch.row(i),
                    *v,
                    "{label} jobs={jobs} policy={policy:?}: VM batch row [{i}]"
                );
                let bpd = batch.pd(i);
                assert_eq!(
                    bpd.is_ok(),
                    pd.is_ok(),
                    "{label} jobs={jobs} policy={policy:?}: VM batch pd state [{i}]"
                );
                if !pd.is_ok() {
                    assert_eq!(
                        bpd, *pd,
                        "{label} jobs={jobs} policy={policy:?}: VM batch error pd [{i}]"
                    );
                }
            }
            assert_eq!(
                batch_budget, ib,
                "{label} jobs={jobs} policy={policy:?}: VM batch budget"
            );
        }
    }
}

#[test]
fn torture_clf_vm_matches_interpreter() {
    assert_engines_agree("clf", &descriptions::clf(), CLF, "entry_t");
}

#[test]
fn torture_sirius_vm_matches_interpreter() {
    assert_engines_agree("sirius", &descriptions::sirius(), SIRIUS, "entry_t");
}

#[test]
fn torture_mixed_vm_matches_interpreter() {
    assert_engines_agree("mixed", &descriptions::mixed(), MIXED, "rec_t");
}

/// 1000-seed fault sweep: every deterministic mutation of a clean corpus
/// parses identically under both engines, sequentially and record-sharded,
/// cycling through the recovery policies.
#[test]
fn fault_harness_vm_matches_interpreter() {
    const SEEDS: u64 = 1000;
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let clean =
        pads_gen::clf::generate(&pads_gen::ClfConfig { records: 12, ..Default::default() }).0;
    let policies = policies();
    for seed in 0..SEEDS {
        let data = FaultPlan::for_seed(seed).apply(&clean);
        let policy = policies[(seed as usize) % policies.len()];
        let (iv, ib) = run(&schema, &registry, opts(policy, Engine::Interp), &data, "entry_t");
        let (vv, vb) = run(&schema, &registry, opts(policy, Engine::Vm), &data, "entry_t");
        assert_eq!(vv, iv, "seed {seed} policy={policy:?}: VM items diverge");
        assert_eq!(vb, ib, "seed {seed} policy={policy:?}: VM budget diverges");
        for jobs in [1, 4] {
            let parser =
                PadsParser::new(&schema, &registry).with_options(opts(policy, Engine::Vm));
            let (par, par_budget) = parser.records_par(&data, "entry_t", &mask(), jobs);
            assert_eq!(par, iv, "seed {seed} jobs={jobs} policy={policy:?}: items diverge");
            assert_eq!(
                par_budget, ib,
                "seed {seed} jobs={jobs} policy={policy:?}: budget diverges"
            );
        }
    }
}

/// Observer equivalence: a `MetricsSink` fed by the VM engine snapshots to
/// exactly the same deterministic counters as one fed by the interpreter —
/// sequentially, and merged across per-worker sinks at `--jobs {1,4}`.
#[test]
fn vm_observer_stream_matches_interpreter() {
    for (label, schema, data, record) in [
        ("clf", descriptions::clf(), CLF, "entry_t"),
        ("sirius", descriptions::sirius(), SIRIUS, "entry_t"),
        ("mixed", descriptions::mixed(), MIXED, "rec_t"),
    ] {
        let registry = Registry::standard();

        let interp_sink = Rc::new(RefCell::new(MetricsSink::new()));
        let parser = PadsParser::new(&schema, &registry)
            .with_observer(ObsHandle::from_rc(interp_sink.clone()));
        let _ = parser.records(data, record, &mask()).count();
        let interp_json = interp_sink.borrow().counts_json();

        let vm_sink = Rc::new(RefCell::new(MetricsSink::new()));
        let parser = PadsParser::new(&schema, &registry)
            .with_options(opts(RecoveryPolicy::unlimited(), Engine::Vm))
            .with_observer(ObsHandle::from_rc(vm_sink.clone()));
        let _ = parser.records(data, record, &mask()).count();
        assert_eq!(
            vm_sink.borrow().counts_json(),
            interp_json,
            "{label}: VM observer stream diverges from interpreter"
        );

        for jobs in [1, 4] {
            let parser = PadsParser::new(&schema, &registry)
                .with_options(opts(RecoveryPolicy::unlimited(), Engine::Vm));
            let (_, _, sinks) =
                parser.records_par_observed(data, record, &mask(), jobs, || {
                    let m = Rc::new(RefCell::new(MetricsSink::new()));
                    let handle = ObsHandle::from_rc(m.clone());
                    let harvest: Box<dyn FnMut() -> MetricsSink> =
                        Box::new(move || std::mem::take(&mut *m.borrow_mut()));
                    (pads_runtime::WorkerObs::observer(handle), harvest)
                });
            let mut merged = MetricsSink::new();
            for sink in &sinks {
                merged.merge(sink);
            }
            assert_eq!(
                merged.counts_json(),
                interp_json,
                "{label} jobs={jobs}: merged VM metrics diverge from interpreter"
            );
        }
    }
}

/// The VM agrees with the generated modules under the same contract the
/// codegen equivalence suite holds the interpreter to: identical values
/// record by record and identical descriptor verdicts, plus an identical
/// error budget, over the torture CLF corpus and every recovery policy.
#[test]
fn vm_matches_generated_reader_on_torture_clf() {
    let schema = descriptions::clf();
    let registry = Registry::standard();
    for policy in policies() {
        // Generated sequential ground truth.
        let mut cur = Cursor::new(CLF).with_policy(policy);
        let mut gen_items = Vec::new();
        loop {
            if cur.at_eof() {
                break;
            }
            let before = cur.offset();
            gen_items.push(gen_clf::EntryT::read(&mut cur, &mask()));
            if cur.offset() == before {
                break;
            }
        }
        let gen_budget = cur.budget();

        let (vm_items, vm_budget) =
            run(&schema, &registry, opts(policy, Engine::Vm), CLF, "entry_t");
        assert_eq!(vm_items.len(), gen_items.len(), "policy={policy:?}: record count");
        for (i, ((vv, vpd), (gv, gpd))) in vm_items.iter().zip(&gen_items).enumerate() {
            assert_eq!(
                vv.at_path("length").and_then(Value::as_u64),
                Some(gv.length as u64),
                "policy={policy:?}: length [{i}]"
            );
            assert_eq!(vpd.is_ok(), gpd.is_ok(), "policy={policy:?}: pd verdict [{i}]");
            assert_eq!(vpd.nerr, gpd.nerr, "policy={policy:?}: pd nerr [{i}]");
        }
        assert_eq!(vm_budget, gen_budget, "policy={policy:?}: budget");
    }
}

/// Journaled kill-and-resume under the VM engine: checkpoints committed to
/// a real on-disk journal during a killed VM run, reopened and resumed with
/// the restored budget and observer state, must reproduce the uninterrupted
/// interpreter run exactly — values, budget, and metrics snapshot.
#[test]
fn vm_journal_kill_resume_matches_uninterrupted_interpreter() {
    const SEEDS: u64 = 50;
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let clean =
        pads_gen::clf::generate(&pads_gen::ClfConfig { records: 12, ..Default::default() }).0;
    let policies = policies();
    let dir = std::env::temp_dir().join(format!("pads-vm-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for seed in 0..SEEDS {
        let data = FaultPlan::for_seed(seed).apply(&clean);
        let policy = policies[(seed as usize) % policies.len()];

        // Uninterrupted *interpreter* run with metrics: the ground truth.
        let sink = Rc::new(RefCell::new(MetricsSink::new()));
        let parser = PadsParser::new(&schema, &registry)
            .with_options(opts(policy, Engine::Interp))
            .with_observer(ObsHandle::from_rc(sink.clone()));
        let m = mask();
        let mut it = parser.records(&data, "entry_t", &m);
        let full: Vec<_> = it.by_ref().collect();
        let full_budget = it.budget();
        drop(it);
        let full_json = sink.borrow().counts_json();

        // Killed VM run, committing (position, budget, metrics) to disk.
        let plan = KillPlan::for_seed(seed, full.len());
        let path = dir.join(format!("seed-{seed}.wal"));
        let mut journal = pads_journal::Journal::create(&path).expect("create journal");
        let sink = Rc::new(RefCell::new(MetricsSink::new()));
        let parser = PadsParser::new(&schema, &registry)
            .with_options(opts(policy, Engine::Vm))
            .with_observer(ObsHandle::from_rc(sink.clone()));
        let m = mask();
        let mut it = parser.records(&data, "entry_t", &m);
        let mut consumed = 0usize;
        loop {
            if consumed >= plan.kill_after {
                break;
            }
            let Some(_item) = it.next() else { break };
            consumed += 1;
            if consumed % plan.checkpoint_every == 0 {
                journal
                    .commit(pads_journal::Checkpoint {
                        source_id: seed,
                        offset: it.offset() as u64,
                        record: consumed as u64,
                        budget: it.budget(),
                        metrics: sink.borrow().snapshot(),
                    })
                    .expect("commit");
            }
        }
        drop(journal);

        // Reopen and resume — still on the VM engine.
        let (journal, repaired) = pads_journal::Journal::open(&path).expect("reopen journal");
        assert!(repaired.is_none(), "seed {seed}: clean journal reported a torn tail");
        let (cp, restored) = match journal.last() {
            Some(cp) => (
                ResumePoint {
                    offset: cp.offset as usize,
                    record: cp.record as usize,
                    budget: cp.budget,
                },
                MetricsSink::restore(&cp.metrics).expect("metrics snapshot restores"),
            ),
            None => (ResumePoint::default(), MetricsSink::new()),
        };
        let sink = Rc::new(RefCell::new(restored));
        let parser = PadsParser::new(&schema, &registry)
            .with_options(opts(policy, Engine::Vm))
            .with_observer(ObsHandle::from_rc(sink.clone()));
        let m = mask();
        let mut it = parser.records_resumed(&data, "entry_t", &m, cp);
        let resumed: Vec<_> = it.by_ref().collect();
        let resumed_budget = it.budget();
        drop(it);
        assert_eq!(
            resumed.as_slice(),
            &full[cp.record..],
            "seed {seed} plan={plan:?} policy={policy:?}: VM-resumed tail diverges"
        );
        assert_eq!(
            resumed_budget, full_budget,
            "seed {seed} plan={plan:?} policy={policy:?}: VM-resumed budget diverges"
        );
        assert_eq!(
            sink.borrow().counts_json(),
            full_json,
            "seed {seed} plan={plan:?} policy={policy:?}: VM-restored metrics diverge"
        );
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_dir(&dir);
}

/// The process-wide program cache hands back the same compiled program for
/// the same (schema, registry, charset) key and a distinct one when any
/// component of the key changes.
#[test]
fn program_cache_reuses_compiled_programs() {
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let a = pads::vm::get_or_compile(&schema, &registry, Charset::Ascii);
    let b = pads::vm::get_or_compile(&schema, &registry, Charset::Ascii);
    assert!(Arc::ptr_eq(&a, &b), "same key must hit the cache");
    let c = pads::vm::get_or_compile(&schema, &registry, Charset::Ebcdic);
    assert!(!Arc::ptr_eq(&a, &c), "charset is part of the cache key");
    let other = descriptions::sirius();
    let d = pads::vm::get_or_compile(&other, &registry, Charset::Ascii);
    assert!(!Arc::ptr_eq(&a, &d), "schema is part of the cache key");
    assert!(pads::vm::program_cache_len() >= 2, "cache retains distinct programs");
}

/// Engine-selection contract: a cursor whose charset disagrees with the
/// compiled program's falls back to the interpreter and still produces the
/// interpreter's exact result.
#[test]
fn vm_falls_back_to_interpreter_on_charset_mismatch() {
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let line = &CLF[..CLF.iter().position(|&b| b == b'\n').map_or(CLF.len(), |i| i + 1)];

    // The parser's program is compiled for ASCII; hand it an EBCDIC cursor.
    let interp = PadsParser::new(&schema, &registry);
    let mut cur = interp.open(line).with_charset(Charset::Ebcdic);
    let (iv, ipd) = interp.parse_named(&mut cur, "entry_t", &[], &mask());

    let vm = PadsParser::new(&schema, &registry)
        .with_options(opts(RecoveryPolicy::unlimited(), Engine::Vm));
    let mut cur = vm.open(line).with_charset(Charset::Ebcdic);
    let (vv, vpd) = vm.parse_named(&mut cur, "entry_t", &[], &mask());

    assert_eq!(vv, iv, "fallback value diverges");
    assert_eq!(vpd, ipd, "fallback descriptor diverges");
}
