//! Ambient-coding coverage: the same description parsing ASCII, EBCDIC,
//! and binary data (§3's coding-ambiguous base types), plus binary
//! call-detail-style fixed-width records (Figure 1).

use pads::{
    BaseMask, Charset, Endian, Mask, PadsParser, ParseOptions, RecordDiscipline, Registry, Value,
    Writer,
};

#[test]
fn same_description_reads_ascii_and_ebcdic() {
    // `Puint32`/`Pstring` use the *ambient* coding.
    let registry = Registry::standard();
    let schema = pads::compile(
        "Precord Pstruct r_t { Puint32 n; ','; Pstring(:',':) tag; }; Psource Parray rs_t { r_t[]; };",
        &registry,
    )
    .unwrap();
    let ascii = b"42,west\n7,east\n".to_vec();
    let ebcdic: Vec<u8> = ascii.iter().map(|&b| Charset::Ebcdic.encode(b)).collect();

    let p_ascii = PadsParser::new(&schema, &registry);
    let (va, pda) = p_ascii.parse_source(&ascii, &Mask::all(BaseMask::CheckAndSet));
    assert!(pda.is_ok());

    let p_ebcdic = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        charset: Charset::Ebcdic,
        ..Default::default()
    });
    let (ve, pde) = p_ebcdic.parse_source(&ebcdic, &Mask::all(BaseMask::CheckAndSet));
    assert!(pde.is_ok(), "{:?}", pde.errors());

    // Identical logical values from both codings.
    assert_eq!(va, ve);
    assert_eq!(va.at_path("[0].tag").and_then(Value::as_str), Some("west"));

    // And writing back in EBCDIC reproduces the EBCDIC bytes.
    let w = Writer::new(&schema, &registry).with_options(ParseOptions {
        charset: Charset::Ebcdic,
        ..Default::default()
    });
    assert_eq!(w.write_source(&ve).unwrap(), ebcdic);
}

#[test]
fn binary_call_detail_fixed_width_records() {
    // Figure 1: call detail is fixed-width binary records (~7 GB/day). A
    // minimal analogue: caller (4B), callee (4B), duration (2B), flags (1B).
    let registry = Registry::standard();
    let schema = pads::compile(
        r#"
        Precord Pstruct call_t {
            Pb_uint32 caller;
            Pb_uint32 callee;
            Pb_uint16 duration;
            Pb_uint8 flags : flags <= 3;
        };
        Psource Parray calls_t { call_t[]; };
        "#,
        &registry,
    )
    .unwrap();
    let mut data = Vec::new();
    for (a, b, d, f) in [(0x01020304u32, 0x0A0B0C0Du32, 65u16, 1u8), (7, 8, 9, 3)] {
        data.extend_from_slice(&a.to_be_bytes());
        data.extend_from_slice(&b.to_be_bytes());
        data.extend_from_slice(&d.to_be_bytes());
        data.push(f);
    }
    let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        discipline: RecordDiscipline::FixedWidth(11),
        endian: Endian::Big,
        ..Default::default()
    });
    let (v, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
    assert!(pd.is_ok(), "{:?}", pd.errors());
    assert_eq!(v.len(), Some(2));
    assert_eq!(v.at_path("[0].caller").and_then(Value::as_u64), Some(0x01020304));
    assert_eq!(v.at_path("[1].duration").and_then(Value::as_u64), Some(9));

    // Little-endian ambient order decodes differently, same description.
    let parser_le = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        discipline: RecordDiscipline::FixedWidth(11),
        endian: Endian::Little,
        ..Default::default()
    });
    let (vle, _) = parser_le.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
    assert_eq!(vle.at_path("[0].caller").and_then(Value::as_u64), Some(0x04030201));

    // Round trip.
    let w = Writer::new(&schema, &registry).with_options(ParseOptions {
        discipline: RecordDiscipline::FixedWidth(11),
        endian: Endian::Big,
        ..Default::default()
    });
    assert_eq!(w.write_source(&v).unwrap(), data);
}

#[test]
fn flags_constraint_fires_on_binary_data() {
    let registry = Registry::standard();
    let schema = pads::compile(
        r#"
        Precord Pstruct call_t { Pb_uint8 flags : flags <= 3; };
        Psource Parray calls_t { call_t[]; };
        "#,
        &registry,
    )
    .unwrap();
    let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        discipline: RecordDiscipline::FixedWidth(1),
        ..Default::default()
    });
    let (_, pd) = parser.parse_source(&[1u8, 9, 2], &Mask::all(BaseMask::CheckAndSet));
    let errors = pd.errors();
    assert_eq!(errors.len(), 1);
    assert!(errors[0].0.starts_with("[1]"));
    assert!(errors[0].1.is_semantic());
}

#[test]
fn mixed_text_and_binary_in_one_record() {
    // Figure 1 mentions mixed formats; a tag string followed by a binary
    // counter in the same record.
    let registry = Registry::standard();
    let schema = pads::compile(
        r#"
        Precord Pstruct mix_t { Pstring_FW(:3:) tag; Pb_uint16 count; };
        Psource Parray mixes_t { mix_t[]; };
        "#,
        &registry,
    )
    .unwrap();
    let data = [b'a', b'b', b'c', 0x01, 0x00];
    let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        discipline: RecordDiscipline::FixedWidth(5),
        ..Default::default()
    });
    let (v, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
    assert!(pd.is_ok());
    assert_eq!(v.at_path("[0].tag").and_then(Value::as_str), Some("abc"));
    assert_eq!(v.at_path("[0].count").and_then(Value::as_u64), Some(256));
}

#[test]
fn bit_fields_parse_packet_headers() {
    // §9 future work, delivered: an IPv4-style header start — version (4
    // bits), IHL (4 bits), DSCP (6 bits), ECN (2 bits), total length
    // (16 bits) — parsed straight from the description.
    let registry = Registry::standard();
    let schema = pads::compile(
        r#"
        Precord Pstruct iphdr_t {
            Pbits(:4:) version : version == 4;
            Pbits(:4:) ihl : ihl >= 5;
            Pbits(:6:) dscp;
            Pbits(:2:) ecn;
            Pbits(:16:) total_len;
        };
        Psource Parray hdrs_t { iphdr_t[]; };
        "#,
        &registry,
    )
    .unwrap();
    // 0x45 = version 4, IHL 5; 0x00 = dscp 0, ecn 0; 0x05DC = 1500.
    let data = [0x45u8, 0x00, 0x05, 0xDC, 0x46, 0x08, 0x00, 0x28];
    let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        discipline: RecordDiscipline::FixedWidth(4),
        ..Default::default()
    });
    let (v, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
    assert!(pd.is_ok(), "{:?}", pd.errors());
    assert_eq!(v.len(), Some(2));
    assert_eq!(v.at_path("[0].version").and_then(Value::as_u64), Some(4));
    assert_eq!(v.at_path("[0].ihl").and_then(Value::as_u64), Some(5));
    assert_eq!(v.at_path("[0].total_len").and_then(Value::as_u64), Some(1500));
    assert_eq!(v.at_path("[1].dscp").and_then(Value::as_u64), Some(0b000010));
    assert_eq!(v.at_path("[1].total_len").and_then(Value::as_u64), Some(40));
    // Constraints on bit fields work like any other.
    let bad = [0x65u8, 0x00, 0x00, 0x14]; // version 6
    let (_, pd) = parser.parse_source(&bad, &Mask::all(BaseMask::CheckAndSet));
    assert!(pd.errors().iter().any(|(p, c, _)| p.contains("version") && c.is_semantic()));
}
