//! E8: the formatting tool reproduces Figure 8 byte-for-byte from the
//! Figure 2 records — delimiter `"|"`, date format `"%D:%T"` (§5.3.1).

use pads::{descriptions, BaseMask, Mask, PadsParser, Registry};
use pads_tools::Formatter;

const FIGURE_2: &[u8] = b"207.136.97.49 - - [15/Oct/1997:18:46:51 -0700] \"GET /tk/p.txt HTTP/1.0\" 200 30\ntj62.aol.com - - [16/Oct/1997:14:32:22 -0700] \"POST /scpt/dd@grp.org/confirm HTTP/1.0\" 200 941\n";

const FIGURE_8: &[&str] = &[
    "207.136.97.49|-|-|10/16/97:01:46:51|GET|/tk/p.txt|1|0|200|30",
    "tj62.aol.com|-|-|10/16/97:21:32:22|POST|/scpt/dd@grp.org/confirm|1|0|200|941",
];

#[test]
fn formatter_reproduces_figure_8() {
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let mask = Mask::all(BaseMask::CheckAndSet);
    let fmt = Formatter::new(&["|"]).with_date_format("%D:%T");
    let lines: Vec<String> = parser
        .records(FIGURE_2, "entry_t", &mask)
        .map(|(v, pd)| {
            assert!(pd.is_ok());
            fmt.format(&v)
        })
        .collect();
    assert_eq!(lines, FIGURE_8);
}

#[test]
fn mask_suppression_drops_columns() {
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let mask = Mask::all(BaseMask::CheckAndSet);
    let mut fmt_mask = Mask::all(BaseMask::CheckAndSet);
    fmt_mask.set_at("date", BaseMask::Ignore);
    fmt_mask.set_at("remoteID", BaseMask::Ignore);
    fmt_mask.set_at("auth", BaseMask::Ignore);
    let fmt = Formatter::new(&["|"]).with_mask(fmt_mask);
    let (v, _) = parser.records(FIGURE_2, "entry_t", &mask).next().unwrap();
    assert_eq!(fmt.format(&v), "207.136.97.49|GET|/tk/p.txt|1|0|200|30");
}

#[test]
fn custom_date_formats() {
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let mask = Mask::all(BaseMask::CheckAndSet);
    let (v, _) = parser.records(FIGURE_2, "entry_t", &mask).next().unwrap();
    let fmt = Formatter::new(&["|"]).with_date_format("%Y-%m-%dT%H:%M:%S");
    assert!(fmt.format(&v).contains("1997-10-16T01:46:51"));
}
