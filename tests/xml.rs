//! E9: XML conversion and XML Schema generation (§5.3.2) on the Sirius
//! description — including the paper's choice of embedding parse
//! descriptors for buggy data.

use pads::{descriptions, BaseMask, Mask, PadsParser, Registry};
use pads_tools::{schema_to_xsd, value_to_xml};

const FIGURE_3: &[u8] = b"0|1005022800\n9152|9152|1|9735551212|0||9085551212|07988|no_ii152272|EDTF_6|0|APRL1|DUO|10|1000295291\n";

#[test]
fn sirius_xsd_contains_the_event_seq_embedding() {
    // Compare with the paper's §5.3.2 fragment: the array type maps to a
    // sequence of `elt` elements, a `length`, and an optional `pd` whose
    // type carries pstate/nerr/errCode/loc plus the array extras
    // neerr/firstError.
    let xsd = schema_to_xsd(&descriptions::sirius());
    assert!(xsd.contains("<xs:complexType name=\"eventSeq\">"), "{xsd}");
    assert!(xsd.contains(
        "<xs:element name=\"elt\" type=\"event_t\" minOccurs=\"0\" maxOccurs=\"unbounded\"/>"
    ));
    assert!(xsd.contains("<xs:element name=\"length\" type=\"xs:unsignedInt\"/>"));
    assert!(xsd.contains("<xs:element name=\"pd\" type=\"Ppd\" minOccurs=\"0\" maxOccurs=\"1\"/>"));
    for field in ["pstate", "nerr", "errCode", "loc", "neerr", "firstError"] {
        assert!(xsd.contains(&format!("<xs:element name=\"{field}\"")), "missing {field}");
    }
    // Optional fields from Popt map to minOccurs="0".
    assert!(xsd.contains("<xs:element name=\"zip_code\" type=\"xs:string\" minOccurs=\"0\"/>"));
    // The source element is declared.
    assert!(xsd.contains("<xs:element name=\"out_sum\" type=\"out_sum\"/>"));
}

#[test]
fn clean_sirius_value_converts_without_pds() {
    let schema = descriptions::sirius();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let (v, pd) = parser.parse_source(FIGURE_3, &Mask::all(BaseMask::CheckAndSet));
    assert!(pd.is_ok());
    let xml = value_to_xml(&v, Some(&pd), "out_sum", 0);
    assert!(xml.contains("<tstamp>1005022800</tstamp>"));
    assert!(xml.contains("<order_num>9152</order_num>"));
    assert!(xml.contains("<state>10</state>"));
    assert!(xml.contains("<length>1</length>"));
    // Popt NONE becomes a self-closing element.
    assert!(xml.contains("<nlp_service_tn/>"));
    // Union branch name wraps the value.
    assert!(xml.contains("<genRamp>"));
    assert!(!xml.contains("<pd>"));
}

#[test]
fn buggy_sirius_value_embeds_parse_descriptors() {
    let schema = descriptions::sirius();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    // Unsorted events: a semantic error, so the value exists AND carries pd.
    let data = b"0|1005022800\n9|9|1|0|0|0|0||1|T|0|||A|200|B|100\n";
    let (v, pd) = parser.parse_source(data, &Mask::all(BaseMask::CheckAndSet));
    assert!(!pd.is_ok());
    let xml = value_to_xml(&v, Some(&pd), "out_sum", 0);
    assert!(xml.contains("<pd>"), "{xml}");
    assert!(xml.contains("<errCode>"));
    assert!(xml.contains("ForallViolation"));
    // The data itself is still all there for exploration.
    assert!(xml.contains("<state>A</state>"));
}

#[test]
fn clf_xsd_uses_choice_for_unions_and_enumeration_for_enums() {
    let xsd = schema_to_xsd(&descriptions::clf());
    assert!(xsd.contains("<xs:choice>"));
    assert!(xsd.contains("<xs:enumeration value=\"GET\"/>"));
    assert!(xsd.contains("<xs:enumeration value=\"UNLINK\"/>"));
    assert!(xsd.contains("<xs:simpleType name=\"response_t\">"));
}
