//! Figure 1's last row: netflow — "data-dependent number of fixed-width
//! binary records" arriving at gigabit rates, with missed packets as the
//! common error. A NetFlow-v5-shaped description: a binary header carrying
//! the flow count, then exactly that many fixed-width flow records.

use pads::{
    compile, BaseMask, Mask, PadsParser, ParseOptions, RecordDiscipline, Registry, Value,
    Writer,
};

const NETFLOW: &str = r#"
    /* One export packet: header with count, then `count` flow records. */
    Pstruct flow_t {
        Pb_uint32 src_addr;
        Pb_uint32 dst_addr;
        Pb_uint16 src_port;
        Pb_uint16 dst_port;
        Pb_uint32 packets : packets > 0;
        Pb_uint32 octets  : octets >= packets;
        Pb_uint8  proto;
        Pb_uint8  tcp_flags;
    };
    Parray flows_t (:Puint32 n:) { flow_t[n]; };
    Pstruct packet_t {
        Pb_uint16 version : version == 5;
        Pb_uint16 count : count <= 30;
        Pb_uint32 sys_uptime;
        Pb_uint32 unix_secs;
        flows_t(:count:) flows;
    };
    Psource Parray export_t { packet_t[]; };
"#;

fn flow(src: u32, dst: u32, packets: u32, octets: u32) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&src.to_be_bytes());
    out.extend_from_slice(&dst.to_be_bytes());
    out.extend_from_slice(&4242u16.to_be_bytes());
    out.extend_from_slice(&80u16.to_be_bytes());
    out.extend_from_slice(&packets.to_be_bytes());
    out.extend_from_slice(&octets.to_be_bytes());
    out.push(6); // TCP
    out.push(0x18);
    out
}

fn packet(flows: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&5u16.to_be_bytes());
    out.extend_from_slice(&(flows.len() as u16).to_be_bytes());
    out.extend_from_slice(&123_456u32.to_be_bytes());
    out.extend_from_slice(&1_005_022_800u32.to_be_bytes());
    for f in flows {
        out.extend_from_slice(f);
    }
    out
}

#[test]
fn data_dependent_flow_counts_parse() {
    let registry = Registry::standard();
    let schema = compile(NETFLOW, &registry).unwrap();
    let mut data = packet(&[flow(0x0A000001, 0x0A000002, 3, 1800)]);
    data.extend(packet(&[
        flow(0x0A000003, 0x0A000004, 1, 40),
        flow(0x0A000005, 0x0A000006, 9, 9000),
    ]));
    let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        discipline: RecordDiscipline::None,
        ..Default::default()
    });
    let (v, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
    assert!(pd.is_ok(), "{:?}", pd.errors());
    assert_eq!(v.len(), Some(2));
    assert_eq!(v.at_path("[0].count").and_then(Value::as_u64), Some(1));
    assert_eq!(v.at_path("[0].flows").unwrap().len(), Some(1));
    assert_eq!(v.at_path("[1].flows").unwrap().len(), Some(2));
    assert_eq!(
        v.at_path("[1].flows.[1].octets").and_then(Value::as_u64),
        Some(9000)
    );
    // Write-back reproduces the binary stream.
    let writer = Writer::new(&schema, &registry).with_options(ParseOptions {
        discipline: RecordDiscipline::None,
        ..Default::default()
    });
    assert_eq!(writer.write_source(&v).unwrap(), data);
}

#[test]
fn truncated_packet_is_the_missed_packets_error() {
    // Figure 1 lists "missed packets" as netflow's common error: a packet
    // whose header promises more flows than arrive.
    let registry = Registry::standard();
    let schema = compile(NETFLOW, &registry).unwrap();
    let full = packet(&[flow(1, 2, 1, 40), flow(3, 4, 1, 40)]);
    let truncated = &full[..full.len() - 10];
    let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        discipline: RecordDiscipline::None,
        ..Default::default()
    });
    let (v, pd) = parser.parse_source(truncated, &Mask::all(BaseMask::CheckAndSet));
    assert!(!pd.is_ok());
    // The first flow parsed cleanly; the second is a flagged placeholder
    // (PADS keeps the declared shape and marks the error in the pd).
    let flows = v.at_path("[0].flows").unwrap();
    assert_eq!(flows.len(), Some(2));
    assert_eq!(flows.at_path("[0].packets").and_then(Value::as_u64), Some(1));
    let codes: Vec<_> = pd.errors().iter().map(|(_, c, _)| *c).collect();
    assert!(codes.contains(&pads::ErrorCode::UnexpectedEof), "{codes:?}");
}

#[test]
fn semantic_checks_reach_into_binary_flows() {
    let registry = Registry::standard();
    let schema = compile(NETFLOW, &registry).unwrap();
    // octets < packets violates the per-flow constraint.
    let data = packet(&[flow(1, 2, 100, 40)]);
    let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        discipline: RecordDiscipline::None,
        ..Default::default()
    });
    let (_, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
    let errors = pd.errors();
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(errors[0].0.contains("octets"));
    assert!(errors[0].1.is_semantic());
    // ... and masks can turn them off for line-rate processing (§1's
    // gigabit-per-second motivation).
    let (_, pd) = parser.parse_source(&data, &Mask::all(BaseMask::Set));
    assert!(pd.is_ok());
}
