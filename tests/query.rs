//! E10: the three Sirius queries of §5.4 over the real Sirius description,
//! via the Galax-substitute query engine.

use pads::{descriptions, BaseMask, Mask, PadsParser, Registry};
use pads_query::{Node, Query};

/// Orders: #1 starts at 1000, passes CRTE→SHIP; #2 starts at 2000, CRTE
/// only; #3 starts at 500, SHIP→DONE.
const DATA: &[u8] = b"0|1005022800\n\
1|1|1|0|0|0|0||1|T|0||DUO|CRTE|1000|SHIP|1500\n\
2|2|1|0|0|0|0||2|T|0||DUO|CRTE|2000\n\
3|3|1|0|0|0|0||3|T|0||DUO|SHIP|500|DONE|800\n";

fn parsed() -> (pads::Value, pads::ParseDesc) {
    let schema = descriptions::sirius();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let out = parser.parse_source(DATA, &Mask::all(BaseMask::CheckAndSet));
    assert!(out.1.is_ok(), "{:?}", out.1.errors());
    out
}

#[test]
fn query_1_orders_starting_within_a_time_window() {
    // The paper's XQuery: orders whose first event's timestamp lies in a
    // window. In our canonical element naming:
    let (v, pd) = parsed();
    let root = Node::root("out_sum", &v, Some(&pd));
    let q = Query::parse(
        "/es/elt[events/elt[1]/tstamp >= 900 and events/elt[1]/tstamp <= 2100]",
    )
    .unwrap();
    let hits = q.select(&root);
    let ids: Vec<u64> = hits
        .iter()
        .map(|n| n.named("header")[0].named("order_num")[0].value().as_u64().unwrap())
        .collect();
    assert_eq!(ids, vec![1, 2]);
}

#[test]
fn query_2_count_orders_through_a_state() {
    let (v, pd) = parsed();
    let root = Node::root("out_sum", &v, Some(&pd));
    let count = |state: &str| {
        Query::parse(&format!("/es/elt[events/elt/state = \"{state}\"]"))
            .unwrap()
            .count(&root)
    };
    assert_eq!(count("CRTE"), 2);
    assert_eq!(count("SHIP"), 2);
    assert_eq!(count("DONE"), 1);
    assert_eq!(count("NONE_SUCH"), 0);
}

#[test]
fn query_3_average_state_to_state_latency() {
    // "What is the average time required to go from a particular state to
    // another particular state" — selection via the engine, arithmetic via
    // the node API (the FLWOR part of the paper's XQuery).
    let (v, pd) = parsed();
    let root = Node::root("out_sum", &v, Some(&pd));
    let q = Query::parse("/es/elt[events/elt/state = \"CRTE\"]").unwrap();
    let mut deltas = Vec::new();
    for order in q.select(&root) {
        let events: Vec<_> =
            order.named("events").into_iter().flat_map(|e| e.named("elt")).collect();
        let crte = events
            .iter()
            .position(|e| e.named("state")[0].value().as_str() == Some("CRTE"));
        let ship = events
            .iter()
            .position(|e| e.named("state")[0].value().as_str() == Some("SHIP"));
        if let (Some(a), Some(b)) = (crte, ship) {
            if b > a {
                let ta = events[a].named("tstamp")[0].value().as_u64().unwrap();
                let tb = events[b].named("tstamp")[0].value().as_u64().unwrap();
                deltas.push(tb - ta);
            }
        }
    }
    assert_eq!(deltas, vec![500]);
    let avg = deltas.iter().sum::<u64>() as f64 / deltas.len() as f64;
    assert_eq!(avg, 500.0);
}

#[test]
fn queries_scale_to_generated_data() {
    let schema = descriptions::sirius();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry);
    let config = pads_gen::SiriusConfig {
        records: 1_000,
        syntax_errors: 0,
        sort_violations: 0,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, _) = pads_gen::sirius::generate(&config);
    let (v, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
    assert!(pd.is_ok());
    let root = Node::root("out_sum", &v, Some(&pd));
    // Every generated order has at least one event.
    let q = Query::parse("/es/elt[count(events/elt) >= 1]").unwrap();
    assert_eq!(q.count(&root), 1_000);
    // The LOC_CRTE state (the Figure 9 example) appears in some orders.
    let q = Query::parse("/es/elt[events/elt/state = \"LOC_CRTE\"]").unwrap();
    let with_state = q.count(&root);
    assert!(with_state > 0, "expect some LOC_CRTE orders in 1000 records");
    assert!(with_state < 1_000);
    // Cross-check against the baseline regex selector (Figure 9).
    let selector = pads_baseline::Selector::new("LOC_CRTE");
    let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
    assert_eq!(selector.select_all(&data[body_start..]).len(), with_state);
}
