//! Kill-and-resume equivalence: for every seeded corpus, killing a parse
//! at an arbitrary record boundary and resuming from the last committed
//! checkpoint must reproduce the uninterrupted run exactly — byte-identical
//! values, parse descriptors (global coordinates), and error-budget
//! counters — for the interpreter (sequential and record-sharded at
//! `--jobs {1,4}`) and for the generated parsers, under every recovery
//! policy. A subset of seeds additionally round-trips the checkpoints
//! through a real on-disk [`pads_journal::Journal`] and checks the
//! metrics-snapshot restore path.

use std::cell::RefCell;
use std::rc::Rc;

use pads::generated::clf as gen_clf;
use pads::{
    descriptions, BaseMask, ErrorBudget, Mask, OnExhausted, PadsParser, ParseDesc, ParseOptions,
    RecoveryPolicy, Registry, ResumePoint, Schema, Value,
};
use pads_observe::MetricsSink;
use pads_runtime::{Cursor, FaultPlan, KillPlan, ObsHandle};

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

/// Same policy matrix as the parallel-equivalence harness: unlimited plus
/// each `OnExhausted` mode with a budget small enough to trip.
fn policies() -> Vec<RecoveryPolicy> {
    vec![
        RecoveryPolicy::unlimited(),
        RecoveryPolicy::unlimited().with_max_errs(2).with_on_exhausted(OnExhausted::Stop),
        RecoveryPolicy::unlimited().with_max_errs(2).with_on_exhausted(OnExhausted::SkipRecord),
        RecoveryPolicy::unlimited().with_max_errs(3).with_on_exhausted(OnExhausted::BestEffort),
        RecoveryPolicy::unlimited().with_max_record_errs(0),
        RecoveryPolicy::unlimited().with_max_panic_skip(0).with_on_exhausted(OnExhausted::SkipRecord),
    ]
}

fn parser_for<'s>(
    schema: &'s Schema,
    registry: &'s Registry,
    policy: RecoveryPolicy,
) -> PadsParser<'s> {
    PadsParser::new(schema, registry).with_options(ParseOptions { policy, ..Default::default() })
}

/// Uninterrupted sequential ground truth.
fn full_run(
    schema: &Schema,
    registry: &Registry,
    policy: RecoveryPolicy,
    data: &[u8],
) -> (Vec<(Value, ParseDesc)>, ErrorBudget) {
    let parser = parser_for(schema, registry, policy);
    let m = mask();
    let mut it = parser.records(data, "entry_t", &m);
    let items: Vec<_> = it.by_ref().collect();
    (items, it.budget())
}

/// Runs until the kill point, checkpointing every `checkpoint_every`
/// records, and returns (records consumed before the kill, the last
/// committed checkpoint).
fn killed_run(
    schema: &Schema,
    registry: &Registry,
    policy: RecoveryPolicy,
    data: &[u8],
    plan: KillPlan,
) -> (Vec<(Value, ParseDesc)>, ResumePoint) {
    let parser = parser_for(schema, registry, policy);
    let m = mask();
    let mut it = parser.records(data, "entry_t", &m);
    let mut consumed = Vec::new();
    let mut committed = ResumePoint::default();
    loop {
        if consumed.len() >= plan.kill_after {
            break;
        }
        let Some(item) = it.next() else { break };
        consumed.push(item);
        if consumed.len() % plan.checkpoint_every == 0 {
            committed = ResumePoint {
                offset: it.offset(),
                record: consumed.len(),
                budget: it.budget(),
            };
        }
    }
    (consumed, committed)
}

/// 1000-seed interpreter sweep: kill at a seeded record boundary, resume
/// from the last committed checkpoint sequentially and record-sharded at
/// `jobs {1,4}` — the committed prefix plus the resumed tail must equal
/// the uninterrupted run, budget included.
#[test]
fn kill_resume_matches_uninterrupted_run() {
    const SEEDS: u64 = 1000;
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let clean =
        pads_gen::clf::generate(&pads_gen::ClfConfig { records: 12, ..Default::default() }).0;
    let policies = policies();
    for seed in 0..SEEDS {
        let data = FaultPlan::for_seed(seed).apply(&clean);
        let policy = policies[(seed as usize) % policies.len()];
        let (full, full_budget) = full_run(&schema, &registry, policy, &data);
        let plan = KillPlan::for_seed(seed, full.len());
        let (consumed, cp) = killed_run(&schema, &registry, policy, &data, plan);

        // Exactly-once accounting: only checkpointed records count as
        // externalised; the uncommitted suffix is discarded on resume.
        let mut prefix = consumed;
        prefix.truncate(cp.record);
        assert_eq!(
            prefix.as_slice(),
            &full[..cp.record],
            "seed {seed} plan={plan:?} policy={policy:?}: committed prefix diverges"
        );

        // Sequential resume.
        let parser = parser_for(&schema, &registry, policy);
        let m = mask();
        let mut it = parser.records_resumed(&data, "entry_t", &m, cp);
        let resumed: Vec<_> = it.by_ref().collect();
        assert_eq!(
            resumed.as_slice(),
            &full[cp.record..],
            "seed {seed} plan={plan:?} policy={policy:?}: resumed tail diverges"
        );
        assert_eq!(
            it.budget(),
            full_budget,
            "seed {seed} plan={plan:?} policy={policy:?}: resumed budget diverges"
        );

        // Record-sharded resume.
        for jobs in [1, 4] {
            let parser = parser_for(&schema, &registry, policy);
            let (par, par_budget) =
                parser.records_par_resumed(&data, "entry_t", &mask(), jobs, cp);
            assert_eq!(
                par.as_slice(),
                &full[cp.record..],
                "seed {seed} jobs={jobs} plan={plan:?} policy={policy:?}: parallel tail diverges"
            );
            assert_eq!(
                par_budget, full_budget,
                "seed {seed} jobs={jobs} plan={plan:?} policy={policy:?}: parallel budget diverges"
            );
        }
    }
}

/// The generated engine honours the same contract: `Cursor::with_start`
/// plus a restored budget continues a killed generated parse exactly, and
/// `parse_records_resumed` does the same record-sharded.
#[test]
fn generated_kill_resume_matches_uninterrupted_run() {
    const SEEDS: u64 = 1000;
    fn factory(policy: RecoveryPolicy) -> impl for<'a> Fn(&'a [u8]) -> Cursor<'a> + Sync {
        move |d| Cursor::new(d).with_policy(policy)
    }
    let clean =
        pads_gen::clf::generate(&pads_gen::ClfConfig { records: 12, ..Default::default() }).0;
    let policies = policies();
    for seed in 0..SEEDS {
        let data = FaultPlan::for_seed(seed).apply(&clean);
        let policy = policies[(seed as usize) % policies.len()];

        // Uninterrupted generated ground truth.
        let mut cur = factory(policy)(&data);
        let mut full = Vec::new();
        loop {
            if cur.at_eof() {
                break;
            }
            let before = cur.offset();
            full.push(gen_clf::EntryT::read(&mut cur, &mask()));
            if cur.offset() == before {
                break;
            }
        }
        let full_budget = cur.budget();

        // Kill at a seeded boundary, checkpointing along the way.
        let plan = KillPlan::for_seed(seed, full.len());
        let mut cur = factory(policy)(&data);
        let mut consumed = 0usize;
        let mut cp = ResumePoint::default();
        loop {
            if consumed >= plan.kill_after || cur.at_eof() {
                break;
            }
            let before = cur.offset();
            let _ = gen_clf::EntryT::read(&mut cur, &mask());
            if cur.offset() == before {
                break;
            }
            consumed += 1;
            if consumed % plan.checkpoint_every == 0 {
                cp = ResumePoint { offset: cur.offset(), record: consumed, budget: cur.budget() };
            }
        }

        // Sequential resume over the generated reader.
        let mut cur = factory(policy)(&data).with_start(cp.offset, cp.record);
        cur.set_budget(cp.budget);
        let mut resumed = Vec::new();
        loop {
            if cur.at_eof() {
                break;
            }
            let before = cur.offset();
            resumed.push(gen_clf::EntryT::read(&mut cur, &mask()));
            if cur.offset() == before {
                break;
            }
        }
        assert_eq!(
            resumed.as_slice(),
            &full[cp.record..],
            "seed {seed} plan={plan:?} policy={policy:?}: generated resumed tail diverges"
        );
        assert_eq!(
            cur.budget(),
            full_budget,
            "seed {seed} plan={plan:?} policy={policy:?}: generated resumed budget diverges"
        );

        // Record-sharded generated resume.
        for jobs in [1, 4] {
            let (par, par_budget) =
                gen_clf::parse_records_resumed(&data, &mask(), cp, jobs, factory(policy));
            assert_eq!(
                par.as_slice(),
                &full[cp.record..],
                "seed {seed} jobs={jobs} plan={plan:?}: generated parallel tail diverges"
            );
            assert_eq!(
                par_budget, full_budget,
                "seed {seed} jobs={jobs} plan={plan:?}: generated parallel budget diverges"
            );
        }
    }
}

/// A seed subset drives the real on-disk journal end to end: commit
/// checkpoints (budget + metrics snapshot) during the killed run, reopen
/// the file, resume from its last checkpoint with the restored observer
/// state — final metrics must equal an uninterrupted observed run.
#[test]
fn journal_roundtrip_restores_budget_and_metrics() {
    const SEEDS: u64 = 50;
    let schema = descriptions::clf();
    let registry = Registry::standard();
    let clean =
        pads_gen::clf::generate(&pads_gen::ClfConfig { records: 12, ..Default::default() }).0;
    let policies = policies();
    let dir = std::env::temp_dir().join(format!("pads-crash-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for seed in 0..SEEDS {
        let data = FaultPlan::for_seed(seed).apply(&clean);
        let policy = policies[(seed as usize) % policies.len()];

        // Uninterrupted observed run: the metrics ground truth.
        let sink = Rc::new(RefCell::new(MetricsSink::new()));
        let parser = parser_for(&schema, &registry, policy)
            .with_observer(ObsHandle::from_rc(sink.clone()));
        let m = mask();
        let mut it = parser.records(&data, "entry_t", &m);
        let full: Vec<_> = it.by_ref().collect();
        let full_budget = it.budget();
        drop(it);
        let full_json = sink.borrow().counts_json();

        // Killed run, committing (position, budget, metrics) to disk.
        let plan = KillPlan::for_seed(seed, full.len());
        let path = dir.join(format!("seed-{seed}.wal"));
        let mut journal = pads_journal::Journal::create(&path).expect("create journal");
        let sink = Rc::new(RefCell::new(MetricsSink::new()));
        let parser = parser_for(&schema, &registry, policy)
            .with_observer(ObsHandle::from_rc(sink.clone()));
        let m = mask();
        let mut it = parser.records(&data, "entry_t", &m);
        let mut consumed = 0usize;
        loop {
            if consumed >= plan.kill_after {
                break;
            }
            let Some(_item) = it.next() else { break };
            consumed += 1;
            if consumed % plan.checkpoint_every == 0 {
                journal
                    .commit(pads_journal::Checkpoint {
                        source_id: seed,
                        offset: it.offset() as u64,
                        record: consumed as u64,
                        budget: it.budget(),
                        metrics: sink.borrow().snapshot(),
                    })
                    .expect("commit");
            }
        }
        drop(journal);

        // Reopen and resume with the restored budget and observer state.
        let (journal, repaired) = pads_journal::Journal::open(&path).expect("reopen journal");
        assert!(repaired.is_none(), "seed {seed}: clean journal reported a torn tail");
        let (cp_resume, restored) = match journal.last() {
            Some(cp) => (
                ResumePoint {
                    offset: cp.offset as usize,
                    record: cp.record as usize,
                    budget: cp.budget,
                },
                MetricsSink::restore(&cp.metrics).expect("metrics snapshot restores"),
            ),
            None => (ResumePoint::default(), MetricsSink::new()),
        };
        let sink = Rc::new(RefCell::new(restored));
        let parser = parser_for(&schema, &registry, policy)
            .with_observer(ObsHandle::from_rc(sink.clone()));
        let m = mask();
        let mut it = parser.records_resumed(&data, "entry_t", &m, cp_resume);
        let resumed: Vec<_> = it.by_ref().collect();
        let resumed_budget = it.budget();
        drop(it);
        assert_eq!(
            resumed.as_slice(),
            &full[cp_resume.record..],
            "seed {seed} plan={plan:?} policy={policy:?}: journal-resumed tail diverges"
        );
        assert_eq!(resumed_budget, full_budget, "seed {seed}: journal-resumed budget diverges");
        assert_eq!(
            sink.borrow().counts_json(),
            full_json,
            "seed {seed} plan={plan:?} policy={policy:?}: restored metrics diverge"
        );
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_dir(&dir);
}
